//! # arl — Access Region Locality
//!
//! A from-scratch Rust reproduction of *"Access Region Locality for
//! High-Bandwidth Processor Memory System Design"* (Cho, Yew, Lee,
//! MICRO-32, 1999): the access-region predictor (ARPT), the data-decoupled
//! memory pipeline it drives, and the full simulation stack the paper's
//! evaluation needs — ISA, assembler, functional simulator, profilers,
//! cycle-level out-of-order timing model, and twelve SPEC95-analog
//! workloads.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `arl-isa` | registers, instructions, encoding |
//! | [`mem`] | `arl-mem` | layout, regions, memory image, allocator, TLB |
//! | [`asm`] | `arl-asm` | program builder & linker |
//! | [`sim`] | `arl-sim` | functional simulator & profilers |
//! | [`trace`] | `arl-trace` | binary trace capture & replay |
//! | [`core`] | `arl-core` | static heuristics, ARPT, hints, evaluator |
//! | [`timing`] | `arl-timing` | cycle-level data-decoupled pipeline |
//! | [`workloads`] | `arl-workloads` | the 12 synthetic SPEC95 analogs |
//! | [`stats`] | `arl-stats` | moments, tables, charts |
//!
//! ## Quickstart
//!
//! ```
//! use arl::sim::Machine;
//! use arl::core::{Arpt, Capacity, Context, CounterScheme};
//! use arl::workloads::{workload, Scale};
//!
//! // Build a workload, run it, and measure ARPT accuracy on the fly.
//! let program = workload("li").unwrap().build(Scale::tiny());
//! let mut machine = Machine::new(&program);
//! let mut arpt = Arpt::new(CounterScheme::OneBit, Context::None, Capacity::Entries(1 << 15));
//! let (mut correct, mut total) = (0u64, 0u64);
//! machine.run_with(10_000_000, |entry| {
//!     if let Some(mem) = entry.mem {
//!         let predicted = arpt.predict(entry.pc, entry.ghr, entry.ra);
//!         arpt.update(entry.pc, entry.ghr, entry.ra, mem.is_stack());
//!         total += 1;
//!         correct += (predicted == mem.is_stack()) as u64;
//!     }
//! })?;
//! assert!(correct as f64 / total as f64 > 0.9);
//! # Ok::<(), arl::sim::ExecError>(())
//! ```

pub use arl_asm as asm;
pub use arl_core as core;
pub use arl_isa as isa;
pub use arl_mem as mem;
pub use arl_sim as sim;
pub use arl_stats as stats;
pub use arl_timing as timing;
pub use arl_trace as trace;
pub use arl_workloads as workloads;
