//! Data decoupling end to end: run one workload on the (2+0) baseline, the
//! (3+3) data-decoupled machine, and the (16+0) bandwidth upper bound, and
//! compare.
//!
//! ```text
//! cargo run --release --example decoupled_pipeline -- gcc
//! ```

use arl::stats::TableBuilder;
use arl::timing::{MachineConfig, TimingSim};
use arl::workloads::{workload, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let spec = workload(&name)
        .ok_or_else(|| format!("unknown workload `{name}` (try: go, gcc, li, vortex, ...)"))?;
    let program = spec.build(Scale::default());

    let configs = [
        MachineConfig::baseline_2_0(),
        MachineConfig::decoupled(3, 3),
        MachineConfig::conventional(16, 2),
    ];
    let mut t = TableBuilder::new(&[
        "config",
        "cycles",
        "IPC",
        "speedup",
        "L1 hit%",
        "LVC hit%",
        "LVAQ refs",
        "region acc%",
    ]);
    let mut base_cycles = 0;
    for config in &configs {
        let stats = TimingSim::run_program(&program, config);
        if base_cycles == 0 {
            base_cycles = stats.cycles;
        }
        t.row(&[
            stats.config_name.clone(),
            stats.cycles.to_string(),
            format!("{:.2}", stats.ipc()),
            format!("{:.3}", base_cycles as f64 / stats.cycles as f64),
            format!("{:.1}", 100.0 * stats.dcache.hit_rate()),
            stats
                .lvc
                .map(|l| format!("{:.1}", 100.0 * l.hit_rate()))
                .unwrap_or_else(|| "-".into()),
            stats.lvaq_refs.to_string(),
            format!("{:.2}", 100.0 * stats.region_accuracy()),
        ]);
    }
    println!(
        "{} ({}) on three memory systems:\n\n{}",
        spec.name,
        spec.spec_name,
        t.render()
    );
    println!(
        "A (3+3) split memory system should recover most of the gap between\n\
         the port-starved (2+0) baseline and the idealized (16+0) machine."
    );
    Ok(())
}
