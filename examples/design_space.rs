//! Design-space exploration with the extended memory-system knobs: port
//! implementations (ideal ports, interleaved banks, line buffer), recovery
//! policy, MSHR budget, and write buffering — the cost/complexity
//! investigation the paper's conclusion calls for.
//!
//! ```text
//! cargo run --release --example design_space -- vortex
//! ```

use arl::stats::TableBuilder;
use arl::timing::{MachineConfig, RecoveryMode, TimingSim};
use arl::workloads::{workload, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vortex".to_string());
    let spec = workload(&name)
        .ok_or_else(|| format!("unknown workload `{name}` (try: go, gcc, li, vortex, ...)"))?;
    let program = spec.build(Scale::default());

    let mut configs: Vec<MachineConfig> = Vec::new();

    // Bandwidth implementations around a 4-wide budget.
    configs.push(MachineConfig::conventional(1, 2));
    let mut lb = MachineConfig::conventional(1, 2);
    lb.dcache = lb.dcache.with_line_buffer();
    lb.name = "(1-port+linebuf)".into();
    configs.push(lb);
    let mut banked = MachineConfig::conventional(4, 2);
    banked.dcache = banked.dcache.with_banks(4);
    banked.name = "(4-bank)".into();
    configs.push(banked);
    configs.push(MachineConfig::conventional(4, 2));

    // The decoupled design, ideal and with realistic trimmings.
    configs.push(MachineConfig::decoupled(3, 3));
    let mut trimmed = MachineConfig::decoupled(3, 3);
    trimmed.dcache = trimmed.dcache.with_banks(4);
    trimmed.mshrs = 8;
    trimmed.write_buffer = 8;
    trimmed.recovery = RecoveryMode::Squash;
    trimmed.name = "(3b+3) realistic".into();
    configs.push(trimmed);

    let mut t = TableBuilder::new(&["config", "cycles", "IPC", "vs 1-port", "L1 hit%"]);
    let mut base = 0u64;
    for config in &configs {
        let stats = TimingSim::run_program(&program, config);
        if base == 0 {
            base = stats.cycles;
        }
        t.row(&[
            stats.config_name.clone(),
            stats.cycles.to_string(),
            format!("{:.2}", stats.ipc()),
            format!("{:.3}", base as f64 / stats.cycles as f64),
            format!("{:.1}", 100.0 * stats.dcache.hit_rate()),
        ]);
    }
    println!(
        "{} ({}) across bandwidth implementations:\n\n{}",
        spec.name,
        spec.spec_name,
        t.render()
    );
    println!(
        "The \"realistic\" row swaps every idealization at once: 4 single-ported\n\
         banks instead of 3 ideal ports, 8 MSHRs, an 8-entry write buffer, and\n\
         squash recovery. That it keeps pace with the idealized (3+3) is the\n\
         cost argument the paper's conclusion asks for: the decoupled design\n\
         survives realistic bandwidth implementations."
    );
    Ok(())
}
