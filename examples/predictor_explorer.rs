//! Predictor design-space exploration on one workload: counter schemes ×
//! context schemes × table sizes, with and without compiler hints.
//!
//! ```text
//! cargo run --release --example predictor_explorer -- perl
//! ```

use arl::core::{Capacity, Context, EvalConfig, Evaluator, HintTable, PredictorKind};
use arl::sim::Machine;
use arl::stats::TableBuilder;
use arl::workloads::{workload, Scale};

fn run(program: &arl::asm::Program, config: EvalConfig) -> (f64, Option<usize>) {
    let mut machine = Machine::new(program);
    let mut evaluator = Evaluator::new(config);
    machine
        .run_with(2_000_000_000, |e| evaluator.observe(e))
        .expect("workload executes");
    (evaluator.stats().accuracy(), evaluator.arpt_occupied())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "perl".to_string());
    let spec = workload(&name)
        .ok_or_else(|| format!("unknown workload `{name}` (try: go, gcc, li, vortex, ...)"))?;
    let program = spec.build(Scale::default());
    let hints = HintTable::from_program(&program);

    println!(
        "{} ({}) — predictor design space\n",
        spec.name, spec.spec_name
    );

    let contexts: [(&str, Context); 4] = [
        ("none", Context::None),
        ("gbh8", Context::Gbh { bits: 8 }),
        ("cid24", Context::Cid { bits: 24 }),
        ("hybrid", Context::HYBRID_8_24),
    ];
    let mut t = TableBuilder::new(&["scheme", "context", "capacity", "accuracy", "entries"]);
    for kind in [PredictorKind::OneBit, PredictorKind::TwoBit] {
        for (cname, context) in contexts {
            for (capname, capacity) in [
                ("unlimited", Capacity::Unlimited),
                ("32K", Capacity::Entries(1 << 15)),
                ("8K", Capacity::Entries(1 << 13)),
            ] {
                let (acc, occupied) = run(
                    &program,
                    EvalConfig {
                        kind,
                        context,
                        capacity,
                        hints: None,
                    },
                );
                t.row(&[
                    format!("{kind:?}"),
                    cname.to_string(),
                    capname.to_string(),
                    format!("{:.3}%", 100.0 * acc),
                    occupied.map(|n| n.to_string()).unwrap_or_default(),
                ]);
            }
        }
    }
    println!("{}", t.render());

    // The compiler-hint effect (Figure 6 analysis over builder knowledge).
    let (without, _) = run(
        &program,
        EvalConfig {
            kind: PredictorKind::OneBit,
            context: Context::HYBRID_8_24,
            capacity: Capacity::Entries(1 << 13),
            hints: None,
        },
    );
    let (with, _) = run(
        &program,
        EvalConfig {
            kind: PredictorKind::OneBit,
            context: Context::HYBRID_8_24,
            capacity: Capacity::Entries(1 << 13),
            hints: Some(hints.clone()),
        },
    );
    println!(
        "8K hybrid without hints: {:.3}%   with Figure 6 compiler hints: {:.3}%  ({} definite tags)",
        100.0 * without,
        100.0 * with,
        hints.definite_count()
    );
    Ok(())
}
