//! Quickstart: build a tiny program with the assembler, run it on the
//! functional simulator, and predict the access region of every memory
//! reference with the paper's pipeline (static heuristics + ARPT).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use arl::asm::{FunctionBuilder, ProgramBuilder, Provenance};
use arl::core::{Capacity, Context, EvalConfig, Evaluator, PredictorKind, Source};
use arl::isa::Gpr;
use arl::sim::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little program: sum a global array through a computed pointer
    // (data region), with a running total spilled to the frame (stack
    // region), and a scratch heap block (heap region).
    let mut pb = ProgramBuilder::new();
    let table = pb.global_words("table", &(0..64).map(|i| i * 3).collect::<Vec<_>>());

    let mut f = FunctionBuilder::new("main");
    let total = f.local(8);
    f.store_local(Gpr::ZERO, total, 0);
    f.malloc_imm(64);
    f.mov(Gpr::S1, Gpr::V0); // heap scratch
    f.li(Gpr::S0, 0);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.li(Gpr::T0, 64);
    f.br(arl::isa::BranchCond::Ge, Gpr::S0, Gpr::T0, done);
    // t2 = table[i] — the base register is computed, so the static rules
    // cannot classify this load; the ARPT learns it.
    f.la_global(Gpr::T1, table);
    f.slli(Gpr::T2, Gpr::S0, 3);
    f.add(Gpr::T1, Gpr::T1, Gpr::T2);
    f.load_ptr(Gpr::T3, Gpr::T1, 0, Provenance::StaticVar);
    // total += t2 (stack RMW through $fp — statically revealed).
    f.load_local(Gpr::T4, total, 0);
    f.add(Gpr::T4, Gpr::T4, Gpr::T3);
    f.store_local(Gpr::T4, total, 0);
    // Heap scratch write through the malloc'd pointer.
    f.andi(Gpr::T5, Gpr::S0, 7);
    f.slli(Gpr::T5, Gpr::T5, 3);
    f.add(Gpr::T5, Gpr::S1, Gpr::T5);
    f.store_ptr(Gpr::T4, Gpr::T5, 0, Provenance::HeapBlock);
    f.addi(Gpr::S0, Gpr::S0, 1);
    f.j(top);
    f.bind(done);
    f.load_local(Gpr::A0, total, 0);
    f.print_int(Gpr::A0);
    pb.add_function(f);
    let program = pb.link("main")?;

    println!("--- disassembly (first lines) ---");
    for line in program.disassemble().lines().take(12) {
        println!("{line}");
    }

    // Run it, feeding the paper's prediction pipeline.
    let mut machine = Machine::new(&program);
    let mut evaluator = Evaluator::new(EvalConfig {
        kind: PredictorKind::OneBit,
        context: Context::HYBRID_8_24,
        capacity: Capacity::Entries(1 << 15),
        hints: None,
    });
    let outcome = machine.run_with(1_000_000, |entry| evaluator.observe(entry))?;
    assert!(outcome.exited);

    println!("\nprogram output: {:?}", machine.output());
    let stats = evaluator.stats();
    println!("memory references: {}", stats.total);
    println!(
        "region prediction accuracy: {:.2}%",
        100.0 * stats.accuracy()
    );
    for source in Source::ALL {
        let s = stats.source(source);
        if s.total > 0 {
            println!(
                "  {source:?}: {} refs, {:.2}% correct",
                s.total,
                100.0 * s.correct as f64 / s.total as f64
            );
        }
    }
    Ok(())
}
