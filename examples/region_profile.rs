//! Region profiling: run one workload (default `li`, or pass a name) and
//! print its Figure 2-style static breakdown and Table 2-style window
//! statistics.
//!
//! ```text
//! cargo run --release --example region_profile -- vortex
//! ```

use arl::mem::{Region, RegionSet};
use arl::sim::{Machine, RegionProfiler, SlidingWindowProfiler, WorkloadCharacter};
use arl::stats::TableBuilder;
use arl::workloads::{workload, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "li".to_string());
    let spec = workload(&name)
        .ok_or_else(|| format!("unknown workload `{name}` (try: go, gcc, li, vortex, ...)"))?;
    let program = spec.build(Scale::default());

    let mut machine = Machine::new(&program);
    let mut regions = RegionProfiler::new();
    let mut windows = SlidingWindowProfiler::new();
    let mut character = WorkloadCharacter::default();
    machine.run_with(2_000_000_000, |e| {
        regions.observe(e);
        windows.observe(e);
        character.observe(e);
    })?;

    println!(
        "{} ({}): {} instructions, {:.0}% loads, {:.0}% stores",
        spec.name,
        spec.spec_name,
        character.instructions,
        character.load_pct(),
        character.store_pct()
    );

    let b = regions.breakdown();
    let mut t = TableBuilder::new(&["class", "static", "static %", "dynamic refs"]);
    for (i, label) in RegionSet::CLASS_LABELS.iter().enumerate() {
        if b.static_counts[i] > 0 {
            t.row(&[
                label.to_string(),
                b.static_counts[i].to_string(),
                format!(
                    "{:.1}",
                    100.0 * b.static_counts[i] as f64 / b.static_total() as f64
                ),
                b.dynamic_counts[i].to_string(),
            ]);
        }
    }
    println!("\nAccess-region classes (Figure 2 style):\n{}", t.render());
    println!(
        "multi-region: {:.2}% of static instructions, {:.2}% of dynamic references",
        100.0 * b.static_multi_region_fraction(),
        100.0 * b.dynamic_multi_region_fraction()
    );

    println!("\nSliding-window bandwidth (Table 2 style):");
    for w in windows.stats() {
        print!("  window {:>2}:", w.window);
        for r in Region::DATA_REGIONS {
            print!("  {} {:.2} ({:.2})", r.letter(), w.mean(r), w.stddev(r));
        }
        println!();
    }
    Ok(())
}
