#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> figure8_stalls smoke gate (ARL_SCALE=1)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
ARL_SCALE=1 ARL_PROBE=1 ARL_JSON="$smoke_dir" \
    cargo run --quiet --release -p arl-bench --bin figure8_stalls
test -s "$smoke_dir/BENCH_figure8_stalls.json"
test -s "$smoke_dir/BENCH_figure8_stalls_probe.json"

echo "CI OK"
