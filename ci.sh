#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> figure8_stalls smoke gate (ARL_SCALE=1)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
ARL_SCALE=1 ARL_PROBE=1 ARL_JSON="$smoke_dir" \
    cargo run --quiet --release -p arl-bench --bin figure8_stalls
test -s "$smoke_dir/BENCH_figure8_stalls.json"
test -s "$smoke_dir/BENCH_figure8_stalls_probe.json"

echo "==> fault-campaign smoke gate (ARL_SCALE=tiny, fixed seed)"
# Fixed seed, every layer: the campaign must classify every fault and
# must never observe a silent corruption or a fatal (uncaught) fault.
mkdir -p "$smoke_dir/full" "$smoke_dir/first" "$smoke_dir/resumed"
ARL_SCALE=tiny ARL_FAULT=all:42:2 ARL_JSON="$smoke_dir/full" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign
test -s "$smoke_dir/full/BENCH_faults.json"
grep -q '"fault_silent":0' "$smoke_dir/full/BENCH_faults.json"
grep -q '"fault_fatal":0' "$smoke_dir/full/BENCH_faults.json"

echo "==> fault-campaign kill-resume gate"
# "Interrupt" after the first job (ARL_MAX_JOBS=1 against a checkpoint),
# then resume the full sweep: the merged JSON must be byte-identical to
# the uninterrupted run above.
ARL_SCALE=tiny ARL_FAULT=all:42:2 ARL_MAX_JOBS=1 \
    ARL_CHECKPOINT="$smoke_dir/campaign.ckpt" ARL_JSON="$smoke_dir/first" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign > /dev/null
ARL_SCALE=tiny ARL_FAULT=all:42:2 \
    ARL_CHECKPOINT="$smoke_dir/campaign.ckpt" ARL_JSON="$smoke_dir/resumed" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign > /dev/null
diff "$smoke_dir/full/BENCH_faults.json" "$smoke_dir/resumed/BENCH_faults.json"

echo "==> replay-speed regression gate (subset vs committed BENCH_speed.json)"
# Re-time a fixed three-workload subset on the event core only and fail
# if any falls below ARL_SPEED_MIN_RATIO (default 0.8) of the committed
# baseline throughput. Absolute wall-clock gates are noisy; the 20%
# slack plus best-of-2 reps keeps this stable on shared machines while
# still catching order-of-magnitude regressions in the hot loop.
ARL_SPEED_WORKLOADS=compress,go,tomcatv ARL_SPEED_LEGACY=0 \
    ARL_SPEED_BASELINE=BENCH_speed.json ARL_JSON="$smoke_dir" \
    cargo run --quiet --release -p arl-bench --bin bench_speed

echo "CI OK"
