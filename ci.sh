#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> figure8_stalls smoke gate (ARL_SCALE=1)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
ARL_SCALE=1 ARL_PROBE=1 ARL_JSON="$smoke_dir" \
    cargo run --quiet --release -p arl-bench --bin figure8_stalls
test -s "$smoke_dir/BENCH_figure8_stalls.json"
test -s "$smoke_dir/BENCH_figure8_stalls_probe.json"

echo "==> fault-campaign smoke gate (ARL_SCALE=tiny, fixed seed)"
# Fixed seed, every layer: the campaign must classify every fault and
# must never observe a silent corruption or a fatal (uncaught) fault.
mkdir -p "$smoke_dir/full" "$smoke_dir/first" "$smoke_dir/resumed"
ARL_SCALE=tiny ARL_FAULT=all:42:2 ARL_JSON="$smoke_dir/full" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign
test -s "$smoke_dir/full/BENCH_faults.json"
grep -q '"fault_silent":0' "$smoke_dir/full/BENCH_faults.json"
grep -q '"fault_fatal":0' "$smoke_dir/full/BENCH_faults.json"

echo "==> fault-campaign kill-resume gate"
# "Interrupt" after the first job (ARL_MAX_JOBS=1 against a checkpoint),
# then resume the full sweep: the merged JSON must be byte-identical to
# the uninterrupted run above.
ARL_SCALE=tiny ARL_FAULT=all:42:2 ARL_MAX_JOBS=1 \
    ARL_CHECKPOINT="$smoke_dir/campaign.ckpt" ARL_JSON="$smoke_dir/first" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign > /dev/null
ARL_SCALE=tiny ARL_FAULT=all:42:2 \
    ARL_CHECKPOINT="$smoke_dir/campaign.ckpt" ARL_JSON="$smoke_dir/resumed" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign > /dev/null
diff "$smoke_dir/full/BENCH_faults.json" "$smoke_dir/resumed/BENCH_faults.json"

echo "==> fault-campaign kill-resume gate under sharding (ARL_SHARD=2)"
# The same interrupt/resume cycle with sharded baseline replays: the
# shard knob must be identity-neutral — the merged document must still
# be byte-identical to the *unsharded* uninterrupted run.
mkdir -p "$smoke_dir/shfirst" "$smoke_dir/shresumed"
ARL_SCALE=tiny ARL_FAULT=all:42:2 ARL_MAX_JOBS=1 ARL_SHARD=2 \
    ARL_CHECKPOINT="$smoke_dir/sharded.ckpt" ARL_JSON="$smoke_dir/shfirst" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign > /dev/null
ARL_SCALE=tiny ARL_FAULT=all:42:2 ARL_SHARD=2 \
    ARL_CHECKPOINT="$smoke_dir/sharded.ckpt" ARL_JSON="$smoke_dir/shresumed" \
    cargo run --quiet --release -p arl-bench --bin fault_campaign > /dev/null
diff "$smoke_dir/full/BENCH_faults.json" "$smoke_dir/shresumed/BENCH_faults.json"

echo "==> chaos smoke gate (2 seeded points: one SIGKILL, one torn write)"
# Two points of the seeded rotation — point 0 SIGKILLs the child at a
# durable op, point 1 tears a write short — then the harness proves loud
# recovery and byte-identical merged output, and the fingerprint guard
# refuses a mismatched resume naming both identities.
mkdir -p "$smoke_dir/chaos"
ARL_CHAOS_POINTS=2 ARL_CHAOS_DIR="$smoke_dir/chaos/work" \
    ARL_JSON="$smoke_dir/chaos" \
    cargo run --quiet --release -p arl-bench --bin bench_chaos
test -s "$smoke_dir/chaos/BENCH_chaos.json"
grep -q '"schema":"arl-chaos/v1"' "$smoke_dir/chaos/BENCH_chaos.json"
grep -q '"silent":0' "$smoke_dir/chaos/BENCH_chaos.json"
grep -q '"fatal":0' "$smoke_dir/chaos/BENCH_chaos.json"
grep -q '"recovered":1' "$smoke_dir/chaos/BENCH_chaos.json"
grep -q '"all_identical":true' "$smoke_dir/chaos/BENCH_chaos.json"

echo "==> snapshot-shard smoke gate (ARL_SHARD=3, stitched vs serial)"
# One workload, three chained shard jobs over trace snapshots, plus an
# interrupt/resume cycle against a ledger: the stitched stats must be
# bit-identical to the serial replay (the binary exits non-zero and the
# JSON records identical:false on any divergence).
ARL_SCALE=tiny ARL_SHARD=3 ARL_SNAPSHOT_INTERVAL=5000 \
    ARL_SHARD_WORKLOAD=gcc ARL_CHECKPOINT="$smoke_dir/shard.ckpt" \
    ARL_JSON="$smoke_dir" \
    cargo run --quiet --release -p arl-bench --bin bench_shard
test -s "$smoke_dir/BENCH_shard.json"
grep -q '"identical":true' "$smoke_dir/BENCH_shard.json"

echo "==> memory-backend smoke gate (all backends, stall conservation)"
# Tiny-scale sweep of every backend on both machines with the probe
# attached: every cell must satisfy useful + Σstalls == cycles (the
# binary exits non-zero and records conserved:false on any violation).
ARL_SCALE=tiny ARL_JSON="$smoke_dir" \
    cargo run --quiet --release -p arl-bench --bin bench_backends
test -s "$smoke_dir/BENCH_backends.json"
grep -q '"schema":"arl-backends/v1"' "$smoke_dir/BENCH_backends.json"
! grep -q '"conserved":false' "$smoke_dir/BENCH_backends.json"

echo "==> replay-speed regression gate (subset vs committed BENCH_speed.json)"
# Re-time a fixed three-workload subset across the full lever matrix
# ({event, legacy} core x {compiled, plain} trace) and fail if any
# headline speedup falls below ARL_SPEED_MIN_RATIO of the committed
# baseline's. Absolute throughput on a shared machine swings ±30% with
# background load, so the gate compares the same-run speedup ratio
# (both cores see the same load and it cancels); a retry absorbs a load
# spike landing inside one core's timing window but not the other's.
# The ratio floor is 0.85: the compiled-replay PR tightened it from the
# 0.8 default now that the lever matrix pins per-lever attribution.
speed_ok=0
for attempt in 1 2 3; do
    if ARL_SPEED_WORKLOADS=compress,go,tomcatv ARL_SPEED_MIN_RATIO=0.85 \
        ARL_SPEED_BASELINE=BENCH_speed.json ARL_JSON="$smoke_dir" \
        cargo run --quiet --release -p arl-bench --bin bench_speed; then
        speed_ok=1
        break
    fi
    echo "speed gate attempt $attempt failed; retrying" >&2
done
test "$speed_ok" = 1

echo "==> compiled-replay differential smoke gate"
# The smoke run above exercised all four lever cells per workload and
# asserted their SimStats equal before timing anything; the JSON must
# say so — schema v2, every row identical:true, none identical:false.
test -s "$smoke_dir/BENCH_speed.json"
grep -q '"schema":"arl-speed/v2"' "$smoke_dir/BENCH_speed.json"
grep -q '"identical":true' "$smoke_dir/BENCH_speed.json"
! grep -q '"identical":false' "$smoke_dir/BENCH_speed.json"

echo "CI OK"
