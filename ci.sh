#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "CI OK"
