//! Binary encoding of instructions into 64-bit words.
//!
//! The encoding is a fixed-field format:
//!
//! ```text
//!  63      56 55     48 47     40 39     32 31                      0
//! +----------+---------+---------+---------+-------------------------+
//! |  opcode  |    a    |    b    |    c    |          imm            |
//! +----------+---------+---------+---------+-------------------------+
//! ```
//!
//! `a`/`b`/`c` carry register numbers or small sub-op selectors; `imm`
//! carries 16-bit displacements (in its low half) or 32-bit absolute branch
//! targets. Every [`Inst`] round-trips losslessly through
//! [`encode`]/[`decode`], which the property tests verify.

use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, BranchCond, FAluOp, FCmpOp, Inst, Syscall, Width};
use crate::reg::{Fpr, Gpr};

mod op {
    pub const NOP: u8 = 0;
    pub const ALU: u8 = 1;
    pub const ALUI: u8 = 2;
    pub const LUI: u8 = 3;
    pub const LOAD: u8 = 4;
    pub const STORE: u8 = 5;
    pub const FLOAD: u8 = 6;
    pub const FSTORE: u8 = 7;
    pub const FALU: u8 = 8;
    pub const FCMP: u8 = 9;
    pub const CVT_IF: u8 = 10;
    pub const CVT_FI: u8 = 11;
    pub const BRANCH: u8 = 12;
    pub const JUMP: u8 = 13;
    pub const JAL: u8 = 14;
    pub const JR: u8 = 15;
    pub const JALR: u8 = 16;
    pub const SYS: u8 = 17;
}

/// An instruction word that could not be decoded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    word: u64,
    reason: &'static str,
}

impl DecodeError {
    /// The undecodable word.
    pub fn word(&self) -> u64 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#018x}: {}", self.word, self.reason)
    }
}

impl Error for DecodeError {}

fn pack(opcode: u8, a: u8, b: u8, c: u8, imm: u32) -> u64 {
    (opcode as u64) << 56 | (a as u64) << 48 | (b as u64) << 40 | (c as u64) << 32 | imm as u64
}

fn imm_i16(imm: i16) -> u32 {
    imm as u16 as u32
}

/// Encodes an instruction into its 64-bit word.
///
/// # Panics
///
/// Panics if a branch/jump target does not fit in 32 bits (the linker in
/// `arl-asm` never produces such a target).
pub fn encode(inst: &Inst) -> u64 {
    let target32 =
        |t: u64| -> u32 { u32::try_from(t).expect("branch/jump target must fit in 32 bits") };
    match *inst {
        Inst::Nop => pack(op::NOP, 0, 0, 0, 0),
        Inst::Alu { op, rd, rs, rt } => pack(
            op::ALU,
            rd.index() as u8,
            rs.index() as u8,
            rt.index() as u8,
            alu_code(op) as u32,
        ),
        Inst::AluI { op, rd, rs, imm } => pack(
            op::ALUI,
            rd.index() as u8,
            rs.index() as u8,
            alu_code(op),
            imm_i16(imm),
        ),
        Inst::Lui { rd, imm } => pack(op::LUI, rd.index() as u8, 0, 0, imm as u32),
        Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => pack(
            op::LOAD,
            rd.index() as u8,
            base.index() as u8,
            width_code(width) << 1 | signed as u8,
            imm_i16(offset),
        ),
        Inst::Store {
            width,
            rs,
            base,
            offset,
        } => pack(
            op::STORE,
            rs.index() as u8,
            base.index() as u8,
            width_code(width),
            imm_i16(offset),
        ),
        Inst::FLoad { fd, base, offset } => pack(
            op::FLOAD,
            fd.index() as u8,
            base.index() as u8,
            0,
            imm_i16(offset),
        ),
        Inst::FStore { fs, base, offset } => pack(
            op::FSTORE,
            fs.index() as u8,
            base.index() as u8,
            0,
            imm_i16(offset),
        ),
        Inst::FAlu { op, fd, fs, ft } => pack(
            op::FALU,
            fd.index() as u8,
            fs.index() as u8,
            ft.index() as u8,
            falu_code(op) as u32,
        ),
        Inst::FCmp { op, rd, fs, ft } => pack(
            op::FCMP,
            rd.index() as u8,
            fs.index() as u8,
            ft.index() as u8,
            fcmp_code(op) as u32,
        ),
        Inst::CvtIf { fd, rs } => pack(op::CVT_IF, fd.index() as u8, rs.index() as u8, 0, 0),
        Inst::CvtFi { rd, fs } => pack(op::CVT_FI, rd.index() as u8, fs.index() as u8, 0, 0),
        Inst::Branch {
            cond,
            rs,
            rt,
            target,
        } => pack(
            op::BRANCH,
            cond_code(cond),
            rs.index() as u8,
            rt.index() as u8,
            target32(target),
        ),
        Inst::Jump { target } => pack(op::JUMP, 0, 0, 0, target32(target)),
        Inst::Jal { target } => pack(op::JAL, 0, 0, 0, target32(target)),
        Inst::Jr { rs } => pack(op::JR, 0, rs.index() as u8, 0, 0),
        Inst::Jalr { rd, rs } => pack(op::JALR, rd.index() as u8, rs.index() as u8, 0, 0),
        Inst::Sys { call } => pack(op::SYS, sys_code(call), 0, 0, 0),
    }
}

/// Decodes a 64-bit word back into an instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode or any sub-field is not a valid
/// encoding.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let opcode = (word >> 56) as u8;
    let a = (word >> 48) as u8;
    let b = (word >> 40) as u8;
    let c = (word >> 32) as u8;
    let imm = word as u32;
    let err = |reason| DecodeError { word, reason };
    let gpr = |idx: u8| {
        if idx < 32 {
            Ok(Gpr::new(idx))
        } else {
            Err(err("GPR index out of range"))
        }
    };
    let fpr = |idx: u8| {
        if idx < 32 {
            Ok(Fpr::new(idx))
        } else {
            Err(err("FPR index out of range"))
        }
    };
    let off = imm as u16 as i16;
    Ok(match opcode {
        op::NOP => Inst::Nop,
        op::ALU => Inst::Alu {
            op: alu_from(imm as u8).ok_or_else(|| err("bad ALU sub-op"))?,
            rd: gpr(a)?,
            rs: gpr(b)?,
            rt: gpr(c)?,
        },
        op::ALUI => Inst::AluI {
            op: alu_from(c).ok_or_else(|| err("bad ALU sub-op"))?,
            rd: gpr(a)?,
            rs: gpr(b)?,
            imm: off,
        },
        op::LUI => Inst::Lui {
            rd: gpr(a)?,
            imm: imm as u16,
        },
        op::LOAD => Inst::Load {
            width: width_from(c >> 1).ok_or_else(|| err("bad width"))?,
            signed: c & 1 != 0,
            rd: gpr(a)?,
            base: gpr(b)?,
            offset: off,
        },
        op::STORE => Inst::Store {
            width: width_from(c).ok_or_else(|| err("bad width"))?,
            rs: gpr(a)?,
            base: gpr(b)?,
            offset: off,
        },
        op::FLOAD => Inst::FLoad {
            fd: fpr(a)?,
            base: gpr(b)?,
            offset: off,
        },
        op::FSTORE => Inst::FStore {
            fs: fpr(a)?,
            base: gpr(b)?,
            offset: off,
        },
        op::FALU => Inst::FAlu {
            op: falu_from(imm as u8).ok_or_else(|| err("bad FP sub-op"))?,
            fd: fpr(a)?,
            fs: fpr(b)?,
            ft: fpr(c)?,
        },
        op::FCMP => Inst::FCmp {
            op: fcmp_from(imm as u8).ok_or_else(|| err("bad FP compare"))?,
            rd: gpr(a)?,
            fs: fpr(b)?,
            ft: fpr(c)?,
        },
        op::CVT_IF => Inst::CvtIf {
            fd: fpr(a)?,
            rs: gpr(b)?,
        },
        op::CVT_FI => Inst::CvtFi {
            rd: gpr(a)?,
            fs: fpr(b)?,
        },
        op::BRANCH => Inst::Branch {
            cond: cond_from(a).ok_or_else(|| err("bad branch condition"))?,
            rs: gpr(b)?,
            rt: gpr(c)?,
            target: imm as u64,
        },
        op::JUMP => Inst::Jump { target: imm as u64 },
        op::JAL => Inst::Jal { target: imm as u64 },
        op::JR => Inst::Jr { rs: gpr(b)? },
        op::JALR => Inst::Jalr {
            rd: gpr(a)?,
            rs: gpr(b)?,
        },
        op::SYS => Inst::Sys {
            call: sys_from(a).ok_or_else(|| err("bad syscall number"))?,
        },
        _ => return Err(err("unknown opcode")),
    })
}

fn alu_code(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn alu_from(code: u8) -> Option<AluOp> {
    AluOp::ALL.get(code as usize).copied()
}

fn falu_code(op: FAluOp) -> u8 {
    FAluOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn falu_from(code: u8) -> Option<FAluOp> {
    FAluOp::ALL.get(code as usize).copied()
}

fn fcmp_code(op: FCmpOp) -> u8 {
    FCmpOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn fcmp_from(code: u8) -> Option<FCmpOp> {
    FCmpOp::ALL.get(code as usize).copied()
}

fn cond_code(cond: BranchCond) -> u8 {
    BranchCond::ALL.iter().position(|&c| c == cond).unwrap() as u8
}

fn cond_from(code: u8) -> Option<BranchCond> {
    BranchCond::ALL.get(code as usize).copied()
}

fn width_code(width: Width) -> u8 {
    Width::ALL.iter().position(|&w| w == width).unwrap() as u8
}

fn width_from(code: u8) -> Option<Width> {
    Width::ALL.get(code as usize).copied()
}

fn sys_code(call: Syscall) -> u8 {
    Syscall::ALL.iter().position(|&s| s == call).unwrap() as u8
}

fn sys_from(code: u8) -> Option<Syscall> {
    Syscall::ALL.get(code as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_representative_instructions() {
        let insts = [
            Inst::Nop,
            Inst::Alu {
                op: AluOp::Xor,
                rd: Gpr::T3,
                rs: Gpr::S0,
                rt: Gpr::A2,
            },
            Inst::AluI {
                op: AluOp::Add,
                rd: Gpr::SP,
                rs: Gpr::SP,
                imm: -64,
            },
            Inst::Lui {
                rd: Gpr::GP,
                imm: 0x1000,
            },
            Inst::Load {
                width: Width::Byte,
                signed: false,
                rd: Gpr::T0,
                base: Gpr::GP,
                offset: 0x7fff,
            },
            Inst::Store {
                width: Width::Double,
                rs: Gpr::RA,
                base: Gpr::SP,
                offset: -32768,
            },
            Inst::FLoad {
                fd: Fpr::F4,
                base: Gpr::T1,
                offset: 8,
            },
            Inst::FStore {
                fs: Fpr::F5,
                base: Gpr::T2,
                offset: -8,
            },
            Inst::FAlu {
                op: FAluOp::Mul,
                fd: Fpr::F0,
                fs: Fpr::F1,
                ft: Fpr::F2,
            },
            Inst::FCmp {
                op: FCmpOp::Le,
                rd: Gpr::T4,
                fs: Fpr::F6,
                ft: Fpr::F7,
            },
            Inst::CvtIf {
                fd: Fpr::F8,
                rs: Gpr::T5,
            },
            Inst::CvtFi {
                rd: Gpr::T6,
                fs: Fpr::F9,
            },
            Inst::Branch {
                cond: BranchCond::Ge,
                rs: Gpr::T0,
                rt: Gpr::T1,
                target: 0x0040_1238,
            },
            Inst::Jump {
                target: 0x0040_0000,
            },
            Inst::Jal {
                target: 0xffff_fff8,
            },
            Inst::Jr { rs: Gpr::RA },
            Inst::Jalr {
                rd: Gpr::RA,
                rs: Gpr::T9,
            },
            Inst::Sys {
                call: Syscall::Malloc,
            },
        ];
        for inst in insts {
            let word = encode(&inst);
            assert_eq!(decode(word), Ok(inst), "round trip failed for {inst}");
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let err = decode(0xff00_0000_0000_0000).unwrap_err();
        assert!(err.to_string().contains("unknown opcode"));
        assert_eq!(err.word(), 0xff00_0000_0000_0000);
    }

    #[test]
    fn bad_register_index_is_rejected() {
        // ALU with rd = 40.
        let word = pack(op::ALU, 40, 0, 0, 0);
        assert!(decode(word).is_err());
    }

    #[test]
    fn bad_sub_op_is_rejected() {
        let word = pack(op::ALU, 1, 2, 3, 200);
        assert!(decode(word).is_err());
        let word = pack(op::SYS, 99, 0, 0, 0);
        assert!(decode(word).is_err());
    }

    #[test]
    #[should_panic(expected = "target must fit in 32 bits")]
    fn oversized_target_panics() {
        let _ = encode(&Inst::Jump {
            target: 0x1_0000_0000,
        });
    }
}
