//! Instruction definitions.

use std::fmt;

use crate::reg::{Fpr, Gpr};

/// Size of one instruction word in bytes.
///
/// PISA uses 8-byte instructions; the paper's ARPT indexing ("15 bits of PC
/// above least-significant zeros") assumes this.
pub const INST_BYTES: u64 = 8;

/// Integer ALU operations (register-register and register-immediate forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (quotient); division by zero yields 0, as a trap-free model.
    Div,
    /// Remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (by low 6 bits of the second operand).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set-less-than, signed: `rd = (rs < rt) as i64`.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    pub(crate) const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Mnemonic stem (`"add"`, `"slt"`, ...).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }

    /// Whether the operation uses the long-latency multiply/divide unit.
    pub const fn is_long_latency(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

/// Floating-point ALU operations (double precision).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FAluOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `fd = -fs` (ft ignored).
    Neg,
    /// `fd = |fs|` (ft ignored).
    Abs,
    /// `fd = sqrt(fs)` (ft ignored).
    Sqrt,
}

impl FAluOp {
    pub(crate) const ALL: [FAluOp; 7] = [
        FAluOp::Add,
        FAluOp::Sub,
        FAluOp::Mul,
        FAluOp::Div,
        FAluOp::Neg,
        FAluOp::Abs,
        FAluOp::Sqrt,
    ];

    /// Mnemonic stem.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FAluOp::Add => "add.d",
            FAluOp::Sub => "sub.d",
            FAluOp::Mul => "mul.d",
            FAluOp::Div => "div.d",
            FAluOp::Neg => "neg.d",
            FAluOp::Abs => "abs.d",
            FAluOp::Sqrt => "sqrt.d",
        }
    }

    /// Whether the operation uses the long-latency FP multiply/divide unit.
    pub const fn is_long_latency(self) -> bool {
        matches!(self, FAluOp::Mul | FAluOp::Div | FAluOp::Sqrt)
    }
}

/// Floating-point comparisons producing a 0/1 integer result.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FCmpOp {
    Lt,
    Le,
    Eq,
}

impl FCmpOp {
    pub(crate) const ALL: [FCmpOp; 3] = [FCmpOp::Lt, FCmpOp::Le, FCmpOp::Eq];

    /// Mnemonic stem.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FCmpOp::Lt => "c.lt.d",
            FCmpOp::Le => "c.le.d",
            FCmpOp::Eq => "c.eq.d",
        }
    }
}

/// Branch conditions comparing two integer registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Le,
    Gt,
}

impl BranchCond {
    pub(crate) const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Le,
        BranchCond::Gt,
    ];

    /// Mnemonic (`"beq"`, ...).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
        }
    }

    /// Evaluates the condition on two signed operands.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }
}

/// Memory access widths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 1 byte.
    Byte,
    /// 2 bytes.
    Half,
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Double,
}

impl Width {
    pub(crate) const ALL: [Width; 4] = [Width::Byte, Width::Half, Width::Word, Width::Double];

    /// The width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
            Width::Double => 8,
        }
    }
}

/// Run-time system calls.
///
/// Arguments are passed in `$a0`..; results return in `$v0`, following the
/// MIPS convention.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Syscall {
    /// Terminate the program; exit code in `$a0`.
    Exit,
    /// Allocate `$a0` bytes on the heap; pointer (or 0) returned in `$v0`.
    Malloc,
    /// Free the heap block at `$a0`.
    Free,
    /// Emit the integer in `$a0` to the simulated output stream.
    PrintInt,
    /// Emit the low byte of `$a0` as a character to the output stream.
    PrintChar,
}

impl Syscall {
    pub(crate) const ALL: [Syscall; 5] = [
        Syscall::Exit,
        Syscall::Malloc,
        Syscall::Free,
        Syscall::PrintInt,
        Syscall::PrintChar,
    ];
}

/// One decoded instruction.
///
/// Branch and jump targets are absolute byte addresses (resolved by the
/// linker in `arl-asm`); they must be `< 2^32` to encode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `rd = rs op rt`
    Alu {
        op: AluOp,
        rd: Gpr,
        rs: Gpr,
        rt: Gpr,
    },
    /// `rd = rs op imm` (imm is sign-extended from 16 bits)
    AluI {
        op: AluOp,
        rd: Gpr,
        rs: Gpr,
        imm: i16,
    },
    /// `rd = imm << 16`
    Lui { rd: Gpr, imm: u16 },
    /// `rd = mem[rs(base) + offset]`, zero- or sign-extended per `signed`.
    Load {
        width: Width,
        signed: bool,
        rd: Gpr,
        base: Gpr,
        offset: i16,
    },
    /// `mem[base + offset] = rs`
    Store {
        width: Width,
        rs: Gpr,
        base: Gpr,
        offset: i16,
    },
    /// `fd = mem[base + offset]` (8 bytes, f64)
    FLoad { fd: Fpr, base: Gpr, offset: i16 },
    /// `mem[base + offset] = fs` (8 bytes, f64)
    FStore { fs: Fpr, base: Gpr, offset: i16 },
    /// `fd = fs op ft`
    FAlu {
        op: FAluOp,
        fd: Fpr,
        fs: Fpr,
        ft: Fpr,
    },
    /// `rd = (fs cmp ft) as i64`
    FCmp {
        op: FCmpOp,
        rd: Gpr,
        fs: Fpr,
        ft: Fpr,
    },
    /// `fd = rs as f64`
    CvtIf { fd: Fpr, rs: Gpr },
    /// `rd = fs as i64` (truncating)
    CvtFi { rd: Gpr, fs: Fpr },
    /// Conditional branch to absolute `target`.
    Branch {
        cond: BranchCond,
        rs: Gpr,
        rt: Gpr,
        target: u64,
    },
    /// Unconditional jump to absolute `target`.
    Jump { target: u64 },
    /// Call: `$ra = pc + 8; pc = target`.
    Jal { target: u64 },
    /// Indirect jump (function return when `rs == $ra`).
    Jr { rs: Gpr },
    /// Indirect call: `rd = pc + 8; pc = rs`.
    Jalr { rd: Gpr, rs: Gpr },
    /// Run-time system call.
    Sys { call: Syscall },
    /// No operation.
    Nop,
}

/// Addressing information for a memory instruction, as visible to the
/// pre-decode logic (the static heuristics inspect exactly this).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemOpInfo {
    /// Base (index) register of the base+displacement addressing mode.
    pub base: Gpr,
    /// Signed displacement.
    pub offset: i16,
    /// Whether the instruction reads memory (`true`) or writes it (`false`).
    pub is_load: bool,
    /// Access width.
    pub width: Width,
}

impl Inst {
    /// Addressing-mode information if this is a memory instruction.
    pub fn mem_op(&self) -> Option<MemOpInfo> {
        match *self {
            Inst::Load {
                width,
                rd: _,
                base,
                offset,
                ..
            } => Some(MemOpInfo {
                base,
                offset,
                is_load: true,
                width,
            }),
            Inst::Store {
                width,
                base,
                offset,
                ..
            } => Some(MemOpInfo {
                base,
                offset,
                is_load: false,
                width,
            }),
            Inst::FLoad { base, offset, .. } => Some(MemOpInfo {
                base,
                offset,
                is_load: true,
                width: Width::Double,
            }),
            Inst::FStore { base, offset, .. } => Some(MemOpInfo {
                base,
                offset,
                is_load: false,
                width: Width::Double,
            }),
            _ => None,
        }
    }

    /// Whether this instruction is a load or a store.
    pub fn is_mem(&self) -> bool {
        self.mem_op().is_some()
    }

    /// Whether this instruction is a load.
    pub fn is_load(&self) -> bool {
        self.mem_op().map(|m| m.is_load).unwrap_or(false)
    }

    /// Whether this instruction is a store.
    pub fn is_store(&self) -> bool {
        self.mem_op().map(|m| !m.is_load).unwrap_or(false)
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::Jal { .. }
                | Inst::Jr { .. }
                | Inst::Jalr { .. }
        )
    }

    /// Whether this instruction is a call (writes the link register).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. })
    }

    /// General-purpose registers read by the instruction.
    pub fn gpr_sources(&self) -> Vec<Gpr> {
        let mut v = Vec::with_capacity(2);
        match *self {
            Inst::Alu { rs, rt, .. } => {
                v.push(rs);
                v.push(rt);
            }
            Inst::AluI { rs, .. } => v.push(rs),
            Inst::Lui { .. } => {}
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => v.push(base),
            Inst::Store { rs, base, .. } => {
                v.push(rs);
                v.push(base);
            }
            Inst::FStore { base, .. } => v.push(base),
            Inst::FAlu { .. } => {}
            Inst::FCmp { .. } => {}
            Inst::CvtIf { rs, .. } => v.push(rs),
            Inst::CvtFi { .. } => {}
            Inst::Branch { rs, rt, .. } => {
                v.push(rs);
                v.push(rt);
            }
            Inst::Jump { .. } | Inst::Jal { .. } => {}
            Inst::Jr { rs } | Inst::Jalr { rs, .. } => v.push(rs),
            Inst::Sys { call } => match call {
                Syscall::Exit
                | Syscall::Malloc
                | Syscall::Free
                | Syscall::PrintInt
                | Syscall::PrintChar => v.push(Gpr::A0),
            },
            Inst::Nop => {}
        }
        v.retain(|r| *r != Gpr::ZERO);
        v
    }

    /// [`Inst::gpr_sources`] without the heap allocation: writes the (at
    /// most two) source registers into `out` and returns how many, with
    /// `Gpr::ZERO` already filtered out.
    pub fn gpr_sources_into(&self, out: &mut [Gpr; 2]) -> usize {
        let mut n = 0;
        let mut push = |r: Gpr| {
            if r != Gpr::ZERO {
                out[n] = r;
                n += 1;
            }
        };
        match *self {
            Inst::Alu { rs, rt, .. } | Inst::Branch { rs, rt, .. } => {
                push(rs);
                push(rt);
            }
            Inst::AluI { rs, .. } | Inst::CvtIf { rs, .. } => push(rs),
            Inst::Load { base, .. } | Inst::FLoad { base, .. } | Inst::FStore { base, .. } => {
                push(base)
            }
            Inst::Store { rs, base, .. } => {
                push(rs);
                push(base);
            }
            Inst::Jr { rs } | Inst::Jalr { rs, .. } => push(rs),
            Inst::Sys { call } => match call {
                Syscall::Exit
                | Syscall::Malloc
                | Syscall::Free
                | Syscall::PrintInt
                | Syscall::PrintChar => push(Gpr::A0),
            },
            Inst::Lui { .. }
            | Inst::FAlu { .. }
            | Inst::FCmp { .. }
            | Inst::CvtFi { .. }
            | Inst::Jump { .. }
            | Inst::Jal { .. }
            | Inst::Nop => {}
        }
        n
    }

    /// General-purpose register written by the instruction, if any.
    pub fn gpr_dest(&self) -> Option<Gpr> {
        let rd = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluI { rd, .. }
            | Inst::Lui { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::CvtFi { rd, .. }
            | Inst::Jalr { rd, .. } => rd,
            Inst::Jal { .. } => Gpr::RA,
            Inst::Sys {
                call: Syscall::Malloc,
            } => Gpr::V0,
            _ => return None,
        };
        (rd != Gpr::ZERO).then_some(rd)
    }

    /// Floating-point registers read by the instruction.
    pub fn fpr_sources(&self) -> Vec<Fpr> {
        match *self {
            Inst::FStore { fs, .. } => vec![fs],
            Inst::FAlu { op, fs, ft, .. } => match op {
                FAluOp::Neg | FAluOp::Abs | FAluOp::Sqrt => vec![fs],
                _ => vec![fs, ft],
            },
            Inst::FCmp { fs, ft, .. } => vec![fs, ft],
            Inst::CvtFi { fs, .. } => vec![fs],
            _ => Vec::new(),
        }
    }

    /// [`Inst::fpr_sources`] without the heap allocation: writes the (at
    /// most two) source registers into `out` and returns how many.
    pub fn fpr_sources_into(&self, out: &mut [Fpr; 2]) -> usize {
        match *self {
            Inst::FStore { fs, .. } | Inst::CvtFi { fs, .. } => {
                out[0] = fs;
                1
            }
            Inst::FAlu { op, fs, ft, .. } => match op {
                FAluOp::Neg | FAluOp::Abs | FAluOp::Sqrt => {
                    out[0] = fs;
                    1
                }
                _ => {
                    out[0] = fs;
                    out[1] = ft;
                    2
                }
            },
            Inst::FCmp { fs, ft, .. } => {
                out[0] = fs;
                out[1] = ft;
                2
            }
            _ => 0,
        }
    }

    /// Floating-point register written by the instruction, if any.
    pub fn fpr_dest(&self) -> Option<Fpr> {
        match *self {
            Inst::FLoad { fd, .. } | Inst::FAlu { fd, .. } | Inst::CvtIf { fd, .. } => Some(fd),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs, rt } => {
                write!(f, "{} {rd}, {rs}, {rt}", op.mnemonic())
            }
            Inst::AluI { op, rd, rs, imm } => {
                write!(f, "{}i {rd}, {rs}, {imm}", op.mnemonic())
            }
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let m = match (width, signed) {
                    (Width::Byte, true) => "lb",
                    (Width::Byte, false) => "lbu",
                    (Width::Half, true) => "lh",
                    (Width::Half, false) => "lhu",
                    (Width::Word, true) => "lw",
                    (Width::Word, false) => "lwu",
                    (Width::Double, _) => "ld",
                };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Inst::Store {
                width,
                rs,
                base,
                offset,
            } => {
                let m = match width {
                    Width::Byte => "sb",
                    Width::Half => "sh",
                    Width::Word => "sw",
                    Width::Double => "sd",
                };
                write!(f, "{m} {rs}, {offset}({base})")
            }
            Inst::FLoad { fd, base, offset } => write!(f, "l.d {fd}, {offset}({base})"),
            Inst::FStore { fs, base, offset } => write!(f, "s.d {fs}, {offset}({base})"),
            Inst::FAlu { op, fd, fs, ft } => {
                write!(f, "{} {fd}, {fs}, {ft}", op.mnemonic())
            }
            Inst::FCmp { op, rd, fs, ft } => {
                write!(f, "{} {rd}, {fs}, {ft}", op.mnemonic())
            }
            Inst::CvtIf { fd, rs } => write!(f, "cvt.d.l {fd}, {rs}"),
            Inst::CvtFi { rd, fs } => write!(f, "cvt.l.d {rd}, {fs}"),
            Inst::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "{} {rs}, {rt}, {target:#x}", cond.mnemonic()),
            Inst::Jump { target } => write!(f, "j {target:#x}"),
            Inst::Jal { target } => write!(f, "jal {target:#x}"),
            Inst::Jr { rs } => write!(f, "jr {rs}"),
            Inst::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Inst::Sys { call } => write!(f, "syscall {call:?}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_op_extraction() {
        let lw = Inst::Load {
            width: Width::Word,
            signed: true,
            rd: Gpr::T0,
            base: Gpr::SP,
            offset: 16,
        };
        let info = lw.mem_op().expect("load has mem op");
        assert!(info.is_load);
        assert_eq!(info.base, Gpr::SP);
        assert_eq!(info.offset, 16);
        assert_eq!(info.width.bytes(), 4);
        assert!(lw.is_load() && !lw.is_store());

        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Gpr::T0,
            rs: Gpr::T1,
            rt: Gpr::T2,
        };
        assert!(add.mem_op().is_none());
        assert!(!add.is_mem());
    }

    #[test]
    fn sources_skip_zero_register() {
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: Gpr::T0,
            rs: Gpr::ZERO,
            rt: Gpr::T2,
        };
        assert_eq!(add.gpr_sources(), vec![Gpr::T2]);
    }

    #[test]
    fn dest_of_zero_register_is_none() {
        let add = Inst::AluI {
            op: AluOp::Add,
            rd: Gpr::ZERO,
            rs: Gpr::T1,
            imm: 1,
        };
        assert_eq!(add.gpr_dest(), None);
    }

    #[test]
    fn jal_writes_ra_and_malloc_writes_v0() {
        assert_eq!(Inst::Jal { target: 0x400000 }.gpr_dest(), Some(Gpr::RA));
        assert_eq!(
            Inst::Sys {
                call: Syscall::Malloc
            }
            .gpr_dest(),
            Some(Gpr::V0)
        );
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(!BranchCond::Gt.eval(-1, 0));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Ge.eval(4, 4));
        assert!(BranchCond::Le.eval(4, 4));
        assert!(BranchCond::Eq.eval(4, 4));
    }

    #[test]
    fn fp_unary_ops_read_one_source() {
        let neg = Inst::FAlu {
            op: FAluOp::Neg,
            fd: Fpr::F0,
            fs: Fpr::F1,
            ft: Fpr::F2,
        };
        assert_eq!(neg.fpr_sources(), vec![Fpr::F1]);
        let add = Inst::FAlu {
            op: FAluOp::Add,
            fd: Fpr::F0,
            fs: Fpr::F1,
            ft: Fpr::F2,
        };
        assert_eq!(add.fpr_sources(), vec![Fpr::F1, Fpr::F2]);
    }

    #[test]
    fn display_formats() {
        let lw = Inst::Load {
            width: Width::Word,
            signed: true,
            rd: Gpr::T0,
            base: Gpr::SP,
            offset: -8,
        };
        assert_eq!(lw.to_string(), "lw $t0, -8($sp)");
        assert_eq!(Inst::Nop.to_string(), "nop");
    }
}
