//! # arl-isa — the simulated instruction set
//!
//! A small load/store RISC ISA in the spirit of SimpleScalar's PISA (itself
//! MIPS-derived), which the reproduced paper targets. The properties the
//! paper's mechanisms rely on are all present:
//!
//! * 32 general-purpose registers with the MIPS software roles the static
//!   region heuristics inspect: `$zero`, `$gp` (global pointer), `$sp` (stack
//!   pointer), `$fp` (frame pointer), and `$ra` (link register, used as the
//!   caller-identification context in the ARPT).
//! * 32 double-precision floating-point registers.
//! * A single memory addressing mode, base register + signed 16-bit
//!   displacement; absolute ("constant") addressing is expressed with
//!   `$zero` as the base, exactly as on MIPS/PISA.
//! * 8-byte instruction words, matching PISA's "large instruction size"
//!   (the paper indexes its ARPT with "15 bits of PC above least-significant
//!   zeros", i.e. pc >> 3).
//!
//! Instructions are represented as the [`Inst`] enum and can be losslessly
//! encoded to / decoded from 64-bit words ([`encode`], [`decode`]).
//!
//! ```
//! use arl_isa::{Inst, AluOp, Gpr, encode, decode};
//!
//! let inst = Inst::AluI { op: AluOp::Add, rd: Gpr::T0, rs: Gpr::SP, imm: -16 };
//! let word = encode(&inst);
//! assert_eq!(decode(word).unwrap(), inst);
//! ```

mod encode;
mod inst;
mod reg;

pub use encode::{decode, encode, DecodeError};
pub use inst::{AluOp, BranchCond, FAluOp, FCmpOp, Inst, MemOpInfo, Syscall, Width, INST_BYTES};
pub use reg::{Fpr, Gpr};
