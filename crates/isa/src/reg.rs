//! Register names and software roles.

use std::fmt;

/// A general-purpose register, `r0`–`r31`.
///
/// The software roles mirror the MIPS o32 convention that SimpleScalar's PISA
/// inherits. The paper's static region heuristics key off [`Gpr::ZERO`]
/// (constant addressing), [`Gpr::SP`] / [`Gpr::FP`] (stack addressing) and
/// [`Gpr::GP`] (global/data addressing); the caller-identification context
/// reads [`Gpr::RA`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// Hard-wired zero register; doubles as the "constant addressing" base.
    pub const ZERO: Gpr = Gpr(0);
    /// Assembler temporary.
    pub const AT: Gpr = Gpr(1);
    /// Function result registers.
    pub const V0: Gpr = Gpr(2);
    pub const V1: Gpr = Gpr(3);
    /// Argument registers.
    pub const A0: Gpr = Gpr(4);
    pub const A1: Gpr = Gpr(5);
    pub const A2: Gpr = Gpr(6);
    pub const A3: Gpr = Gpr(7);
    /// Caller-saved temporaries.
    pub const T0: Gpr = Gpr(8);
    pub const T1: Gpr = Gpr(9);
    pub const T2: Gpr = Gpr(10);
    pub const T3: Gpr = Gpr(11);
    pub const T4: Gpr = Gpr(12);
    pub const T5: Gpr = Gpr(13);
    pub const T6: Gpr = Gpr(14);
    pub const T7: Gpr = Gpr(15);
    /// Callee-saved registers.
    pub const S0: Gpr = Gpr(16);
    pub const S1: Gpr = Gpr(17);
    pub const S2: Gpr = Gpr(18);
    pub const S3: Gpr = Gpr(19);
    pub const S4: Gpr = Gpr(20);
    pub const S5: Gpr = Gpr(21);
    pub const S6: Gpr = Gpr(22);
    pub const S7: Gpr = Gpr(23);
    /// More caller-saved temporaries.
    pub const T8: Gpr = Gpr(24);
    pub const T9: Gpr = Gpr(25);
    /// Reserved for the run-time system (unused by generated code).
    pub const K0: Gpr = Gpr(26);
    pub const K1: Gpr = Gpr(27);
    /// Global pointer: base register for data-segment accesses.
    pub const GP: Gpr = Gpr(28);
    /// Stack pointer.
    pub const SP: Gpr = Gpr(29);
    /// Frame pointer.
    pub const FP: Gpr = Gpr(30);
    /// Return address (link register).
    pub const RA: Gpr = Gpr(31);

    /// Number of general-purpose registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Gpr {
        assert!(index < 32, "GPR index out of range");
        Gpr(index)
    }

    /// The register's index, `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this register is one whose use as a base address reveals the
    /// access region statically (`$zero`, `$gp`, `$sp`, `$fp`).
    pub const fn reveals_region(self) -> bool {
        matches!(self, Gpr::ZERO | Gpr::GP | Gpr::SP | Gpr::FP)
    }

    /// Iterator over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Gpr> {
        (0..32).map(Gpr)
    }

    const NAMES: [&'static str; 32] = [
        "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
        "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
        "fp", "ra",
    ];

    /// The conventional assembler name (`"sp"`, `"t0"`, ...).
    pub const fn name(self) -> &'static str {
        Self::NAMES[self.0 as usize]
    }
}

impl fmt::Debug for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// A double-precision floating-point register, `f0`–`f31`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fpr(u8);

impl Fpr {
    /// FP result register.
    pub const F0: Fpr = Fpr(0);
    pub const F1: Fpr = Fpr(1);
    pub const F2: Fpr = Fpr(2);
    pub const F3: Fpr = Fpr(3);
    pub const F4: Fpr = Fpr(4);
    pub const F5: Fpr = Fpr(5);
    pub const F6: Fpr = Fpr(6);
    pub const F7: Fpr = Fpr(7);
    pub const F8: Fpr = Fpr(8);
    pub const F9: Fpr = Fpr(9);
    pub const F10: Fpr = Fpr(10);
    pub const F11: Fpr = Fpr(11);
    pub const F12: Fpr = Fpr(12);

    /// Number of floating-point registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Fpr {
        assert!(index < 32, "FPR index out of range");
        Fpr(index)
    }

    /// The register's index, `0..32`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Fpr> {
        (0..32).map(Fpr)
    }
}

impl fmt::Debug for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_have_expected_indices() {
        assert_eq!(Gpr::ZERO.index(), 0);
        assert_eq!(Gpr::GP.index(), 28);
        assert_eq!(Gpr::SP.index(), 29);
        assert_eq!(Gpr::FP.index(), 30);
        assert_eq!(Gpr::RA.index(), 31);
    }

    #[test]
    fn reveals_region_only_for_special_bases() {
        let revealing: Vec<Gpr> = Gpr::all().filter(|r| r.reveals_region()).collect();
        assert_eq!(revealing, vec![Gpr::ZERO, Gpr::GP, Gpr::SP, Gpr::FP]);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Gpr::all().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    #[should_panic(expected = "GPR index out of range")]
    fn new_rejects_out_of_range() {
        let _ = Gpr::new(32);
    }

    #[test]
    fn display_matches_convention() {
        assert_eq!(Gpr::SP.to_string(), "$sp");
        assert_eq!(Fpr::F3.to_string(), "$f3");
    }
}
