//! Property tests: every constructible instruction encodes/decodes losslessly,
//! and arbitrary words either decode to something that re-encodes to itself or
//! fail cleanly.

#![cfg(feature = "proptest-tests")]

use arl_isa::{decode, encode, AluOp, BranchCond, FAluOp, FCmpOp, Fpr, Gpr, Inst, Syscall, Width};
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr::new)
}

fn fpr() -> impl Strategy<Value = Fpr> {
    (0u8..32).prop_map(Fpr::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn falu_op() -> impl Strategy<Value = FAluOp> {
    prop_oneof![
        Just(FAluOp::Add),
        Just(FAluOp::Sub),
        Just(FAluOp::Mul),
        Just(FAluOp::Div),
        Just(FAluOp::Neg),
        Just(FAluOp::Abs),
        Just(FAluOp::Sqrt),
    ]
}

fn fcmp_op() -> impl Strategy<Value = FCmpOp> {
    prop_oneof![Just(FCmpOp::Lt), Just(FCmpOp::Le), Just(FCmpOp::Eq)]
}

fn cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Le),
        Just(BranchCond::Gt),
    ]
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::Byte),
        Just(Width::Half),
        Just(Width::Word),
        Just(Width::Double),
    ]
}

fn syscall() -> impl Strategy<Value = Syscall> {
    prop_oneof![
        Just(Syscall::Exit),
        Just(Syscall::Malloc),
        Just(Syscall::Free),
        Just(Syscall::PrintInt),
        Just(Syscall::PrintChar),
    ]
}

fn target() -> impl Strategy<Value = u64> {
    (0u64..=u32::MAX as u64).prop_map(|t| t & !7)
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        (alu_op(), gpr(), gpr(), gpr()).prop_map(|(op, rd, rs, rt)| Inst::Alu { op, rd, rs, rt }),
        (alu_op(), gpr(), gpr(), any::<i16>()).prop_map(|(op, rd, rs, imm)| Inst::AluI {
            op,
            rd,
            rs,
            imm
        }),
        (gpr(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (width(), any::<bool>(), gpr(), gpr(), any::<i16>()).prop_map(
            |(width, signed, rd, base, offset)| Inst::Load {
                width,
                signed,
                rd,
                base,
                offset
            }
        ),
        (width(), gpr(), gpr(), any::<i16>()).prop_map(|(width, rs, base, offset)| Inst::Store {
            width,
            rs,
            base,
            offset
        }),
        (fpr(), gpr(), any::<i16>()).prop_map(|(fd, base, offset)| Inst::FLoad {
            fd,
            base,
            offset
        }),
        (fpr(), gpr(), any::<i16>()).prop_map(|(fs, base, offset)| Inst::FStore {
            fs,
            base,
            offset
        }),
        (falu_op(), fpr(), fpr(), fpr()).prop_map(|(op, fd, fs, ft)| Inst::FAlu { op, fd, fs, ft }),
        (fcmp_op(), gpr(), fpr(), fpr()).prop_map(|(op, rd, fs, ft)| Inst::FCmp { op, rd, fs, ft }),
        (fpr(), gpr()).prop_map(|(fd, rs)| Inst::CvtIf { fd, rs }),
        (gpr(), fpr()).prop_map(|(rd, fs)| Inst::CvtFi { rd, fs }),
        (cond(), gpr(), gpr(), target()).prop_map(|(cond, rs, rt, target)| Inst::Branch {
            cond,
            rs,
            rt,
            target
        }),
        target().prop_map(|target| Inst::Jump { target }),
        target().prop_map(|target| Inst::Jal { target }),
        gpr().prop_map(|rs| Inst::Jr { rs }),
        (gpr(), gpr()).prop_map(|(rd, rs)| Inst::Jalr { rd, rs }),
        syscall().prop_map(|call| Inst::Sys { call }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(inst in inst()) {
        let word = encode(&inst);
        prop_assert_eq!(decode(word).expect("decode of encoded inst"), inst);
    }

    #[test]
    fn decode_is_a_partial_inverse(word in any::<u64>()) {
        // Arbitrary words need not decode, but when they do the decoded
        // instruction must re-encode to a word that decodes identically
        // (i.e. decode∘encode is idempotent).
        if let Ok(inst) = decode(word) {
            let reencoded = encode(&inst);
            prop_assert_eq!(decode(reencoded).expect("re-decode"), inst);
        }
    }

    #[test]
    fn display_never_panics(inst in inst()) {
        let _ = inst.to_string();
    }

    #[test]
    fn mem_op_consistency(inst in inst()) {
        // is_load/is_store are consistent with mem_op, and mutually exclusive.
        match inst.mem_op() {
            Some(info) => {
                prop_assert_eq!(inst.is_load(), info.is_load);
                prop_assert_eq!(inst.is_store(), !info.is_load);
            }
            None => {
                prop_assert!(!inst.is_load());
                prop_assert!(!inst.is_store());
            }
        }
    }
}
