//! Byte-level primitives for the trace format: LEB128 varints, zigzag
//! signed mapping, and the FNV-1a 64-bit checksum.
//!
//! The checksum choice matters for the integrity guarantee: FNV-1a folds
//! each byte in with `h = (h ^ b) * PRIME`. Both steps are injective in
//! `h` for a fixed byte (xor is an involution; the prime is odd, hence
//! invertible modulo 2^64), so two buffers differing in exactly one byte
//! can never collide — any single-byte corruption is detected with
//! certainty, not just with high probability.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `bytes` starting at `*pos`, advancing it.
///
/// Returns `None` on a truncated or overlong (more than 64 payload bits)
/// encoding.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let payload = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && payload > 1) {
            return None;
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta onto an unsigned varint-friendly value
/// (small magnitudes of either sign encode in few bytes).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes: more than 64 payload bits.
        let buf = [0x80u8; 10];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -54321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn fnv_distinguishes_single_byte_flips() {
        let base = b"hello, trace".to_vec();
        let h = fnv1a64(&base);
        for i in 0..base.len() {
            for flip in 1..=255u8 {
                let mut corrupt = base.clone();
                corrupt[i] ^= flip;
                assert_ne!(fnv1a64(&corrupt), h, "collision at byte {i}");
            }
        }
    }
}
