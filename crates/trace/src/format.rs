//! The `.arltrace` container: header, delta+varint event stream, optional
//! compiled-model section (v3), snapshot section (v2+), footer, trailing
//! FNV-1a checksum.
//!
//! # Layout (versions 2 and 3)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ARLT"
//! 4       1     format version (2 or 3; version-1 traces still decode)
//! 5       8     program entry pc, u64 LE
//! 13      …     event stream (one record per retired instruction)
//! …       10×N  compiled-model records (N = event count; v3 only)
//! …       8     FNV-1a 64 of the compiled-model records (v3 only)
//! …       64×S  snapshot records (S = snapshot count; absent in v1)
//! …       16    snapshot trailer: interval u64, count u64 (absent in v1)
//! len-33  8     event count, u64 LE
//! len-25  8     resident pages at end of run, u64 LE
//! len-17  8     values printed by the program, u64 LE
//! len-9   1     exited flag (0 or 1)
//! len-8   8     FNV-1a 64 checksum of bytes[0..len-8], u64 LE
//! ```
//!
//! # Compiled-model records (v3)
//!
//! A version-3 trace additionally embeds, per event, the pure-function-of-
//! the-entry model work both timing cores would otherwise recompute on
//! every replay: the static steering hint, the region classification, the
//! functional-unit class and latency, the unified operand indices, and the
//! ARPT context value. Each record is 10 bytes ([`CompiledRecord`]); the
//! section is sealed with its own FNV-1a checksum (mirroring snapshot
//! records) so it can be validated without trusting the rest of the
//! container, and every record is structurally validated again at decode.
//! The section's total size is a pure function of the footer's event
//! count, so no extra trailer is needed.
//!
//! The embedded context value bakes in [`arl_core::Context::HYBRID_8_7`] —
//! the Table 4 machine's context function, which is what both timing cores
//! hardwire. The *table fold* is not baked in: the record stores the raw
//! context value, and the consumer folds the derived key to its own
//! configured capacity, so one compiled capture still serves every ARPT
//! size.
//!
//! # Snapshot records
//!
//! A snapshot is the complete decoder-side state of a [`Replayer`]
//! (crate::Replayer) *about to deliver* event `inst_index`: the byte
//! cursor into the event stream, the three delta-predictor registers, and
//! the two replayed contexts (global history, link register). Each record
//! is 64 bytes, individually checksummed so a single record can be
//! validated in O(1) without hashing the container:
//!
//! ```text
//! offset  field
//! 0       inst_index u64   — events encoded before this snapshot
//! 8       body_pos u64     — byte offset into the event stream
//! 16      prev_next_pc u64 — delta state
//! 24      prev_addr u64    — delta state
//! 32      prev_value i64   — delta state
//! 40      ghr u64          — replayed branch history
//! 48      ra u64           — replayed link register
//! 56      FNV-1a 64 of bytes 0..56
//! ```
//!
//! Snapshot `i` always sits at `inst_index == (i+1) × interval`, which is
//! enforced structurally: a forged snapshot count, interval, or offset is
//! refused in O(1), matching the footer guarantees. Machine-model state
//! (ARPT, caches, in-flight pipeline) is deliberately *not* stored in the
//! trace: one capture serves every timing configuration, so config-
//! dependent state is exported/imported at run time by `arl-timing` and
//! handed between shards (see DESIGN.md).
//!
//! # Event records
//!
//! Each record is one flags byte followed by up to four zigzag varints.
//! Everything else a [`TraceEntry`](arl_sim::TraceEntry) carries — the
//! decoded instruction, access width/direction, region, branch history,
//! link register — is *re-derived* during replay from the program image
//! and the replayer's own running state, so it costs zero trace bytes.
//!
//! | bit | meaning                         | varint that follows        |
//! |-----|---------------------------------|----------------------------|
//! | 0   | has a memory access             | `addr - prev_addr`         |
//! | 1   | writes a GPR                    | `value - prev_value`       |
//! | 2   | conditional branch taken        | —                          |
//! | 3   | pc breaks from prior `next_pc`  | `pc - prev_next_pc`        |
//! | 4   | `next_pc != pc + INST_BYTES`    | `next_pc - (pc + 8)`       |
//!
//! Varints appear in bit order 3, 4, 0, 1 (control flow first, then data).
//! In straight-line code every record is a single zero byte.

use arl_isa::INST_BYTES;
use arl_mem::PAGE_SIZE;
use arl_sim::{Metrics, SourceError, TraceEntry};

use crate::codec::{fnv1a64, read_varint, unzigzag, write_varint, zigzag};

/// `"ARLT"`.
pub const MAGIC: [u8; 4] = *b"ARLT";
/// Default format version (snapshot section present, possibly empty).
pub const VERSION: u8 = 2;
/// The pre-snapshot format version; still decodable.
pub const VERSION_V1: u8 = 1;
/// The compiled-model format version (per-event model records embedded).
pub const VERSION_V3: u8 = 3;

pub(crate) const HEADER_LEN: usize = 13;
pub(crate) const FOOTER_LEN: usize = 25;
pub(crate) const CHECKSUM_LEN: usize = 8;
/// Snapshot trailer: interval u64 + snapshot count u64.
pub(crate) const SNAP_TRAILER_LEN: usize = 16;
/// FNV-1a seal over the compiled-model section (v3 only).
pub(crate) const COMPILED_CHECKSUM_LEN: usize = 8;
/// Smallest possible v1 container.
pub(crate) const MIN_LEN: usize = HEADER_LEN + FOOTER_LEN + CHECKSUM_LEN;
/// Smallest possible v2 container (empty body, zero snapshots).
pub(crate) const V2_MIN_LEN: usize = MIN_LEN + SNAP_TRAILER_LEN;
/// Smallest possible v3 container (empty compiled section, sealed).
pub(crate) const V3_MIN_LEN: usize = V2_MIN_LEN + COMPILED_CHECKSUM_LEN;

pub(crate) const FLAG_MEM: u8 = 1 << 0;
pub(crate) const FLAG_VALUE: u8 = 1 << 1;
pub(crate) const FLAG_TAKEN: u8 = 1 << 2;
pub(crate) const FLAG_PC_BREAK: u8 = 1 << 3;
pub(crate) const FLAG_NEXT_BREAK: u8 = 1 << 4;
pub(crate) const FLAG_RESERVED: u8 = !0x1f;

/// The codec-level view of one retired instruction: exactly the fields
/// that are *encoded* (everything else is derived at replay).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The instruction's address.
    pub pc: u64,
    /// Address of the next retired instruction.
    pub next_pc: u64,
    /// Conditional-branch outcome (`false` for everything else).
    pub taken: bool,
    /// Effective address of the memory access, if any.
    pub mem_addr: Option<u64>,
    /// Value written to the destination GPR, if any.
    pub value: Option<i64>,
}

impl TraceEvent {
    /// Projects a full [`TraceEntry`] down to its encoded fields.
    pub fn from_entry(e: &TraceEntry) -> TraceEvent {
        TraceEvent {
            pc: e.pc,
            next_pc: e.next_pc,
            taken: e.taken,
            mem_addr: e.mem.map(|m| m.addr),
            value: e.gpr_write.map(|(_, v)| v),
        }
    }
}

/// Delta state shared by the encoder and both decoders.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeltaState {
    pub prev_next_pc: u64,
    pub prev_addr: u64,
    pub prev_value: i64,
}

impl DeltaState {
    pub(crate) fn new(entry_pc: u64) -> DeltaState {
        DeltaState {
            prev_next_pc: entry_pc,
            prev_addr: 0,
            prev_value: 0,
        }
    }
}

/// One decoded snapshot record: the full replayer state at an event-stream
/// boundary (see the module docs for the 64-byte wire layout).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapshotRecord {
    /// Events encoded before this snapshot (`(i+1) × interval` for
    /// snapshot `i`).
    pub inst_index: u64,
    /// Byte offset into the event stream where decoding resumes.
    pub body_pos: u64,
    /// Delta predictor: next-pc register.
    pub prev_next_pc: u64,
    /// Delta predictor: address register.
    pub prev_addr: u64,
    /// Delta predictor: value register.
    pub prev_value: i64,
    /// Replayed global branch history at the boundary.
    pub ghr: u64,
    /// Replayed link register at the boundary.
    pub ra: u64,
}

impl SnapshotRecord {
    /// Wire size of one record, checksum included.
    pub const LEN: usize = 64;

    /// Serializes the record, sealing its own FNV-1a checksum.
    pub fn to_bytes(&self) -> [u8; SnapshotRecord::LEN] {
        let mut b = [0u8; SnapshotRecord::LEN];
        b[0..8].copy_from_slice(&self.inst_index.to_le_bytes());
        b[8..16].copy_from_slice(&self.body_pos.to_le_bytes());
        b[16..24].copy_from_slice(&self.prev_next_pc.to_le_bytes());
        b[24..32].copy_from_slice(&self.prev_addr.to_le_bytes());
        b[32..40].copy_from_slice(&self.prev_value.to_le_bytes());
        b[40..48].copy_from_slice(&self.ghr.to_le_bytes());
        b[48..56].copy_from_slice(&self.ra.to_le_bytes());
        let checksum = fnv1a64(&b[..56]);
        b[56..64].copy_from_slice(&checksum.to_le_bytes());
        b
    }

    /// Deserializes and checksum-verifies one record in O(1).
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the record checksum does not match.
    pub fn from_bytes(b: &[u8; SnapshotRecord::LEN]) -> Result<SnapshotRecord, SourceError> {
        let stored = read_u64_le(b, 56);
        let computed = fnv1a64(&b[..56]);
        if stored != computed {
            return Err(SourceError::Corrupt(format!(
                "snapshot record checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        Ok(SnapshotRecord {
            inst_index: read_u64_le(b, 0),
            body_pos: read_u64_le(b, 8),
            prev_next_pc: read_u64_le(b, 16),
            prev_addr: read_u64_le(b, 24),
            prev_value: read_u64_le(b, 32) as i64,
            ghr: read_u64_le(b, 40),
            ra: read_u64_le(b, 48),
        })
    }
}

/// One decoded compiled-model record (v3): the precomputed per-event
/// model facts both timing cores would otherwise re-derive every replay.
///
/// Wire layout (10 bytes):
///
/// ```text
/// offset  field
/// 0       bits 0-1 steering tag (ModelHints::STEER_*), bits 2-4 region
///         tag (0 none, 1 data, 2 heap, 3 stack), bits 5-6 FU class tag,
///         bit 7 reserved (0)
/// 1       issue latency in cycles (1..=20)
/// 2..4    ARPT context value, u16 LE (HYBRID_8_7; 0 unless dynamic)
/// 4..7    unified source operand indices (GPR 0-63, FPR 32+f; 255 none)
/// 7       store data operand index (255 none)
/// 8       unified FPR destination index (255 none)
/// 9       reserved (0)
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompiledRecord {
    /// Steering tag ([`ModelHints`](arl_sim::ModelHints) `STEER_*`).
    pub steer: u8,
    /// Region tag: 0 none, 1 data, 2 heap, 3 stack (text unrepresentable).
    pub region: u8,
    /// Functional-unit class tag ([`arl_core::FuClass`]).
    pub fu: u8,
    /// Issue latency in cycles.
    pub latency: u8,
    /// ARPT context value (`Context::HYBRID_8_7`, a 15-bit value); 0
    /// unless the steering tag is dynamic.
    pub ctx: u16,
    /// Unified source operand indices (255 = none).
    pub srcs: [u8; 3],
    /// Store data operand index (255 = none).
    pub data_src: u8,
    /// Unified FPR destination index (255 = none).
    pub fpr_dest: u8,
}

impl CompiledRecord {
    /// Wire size of one record.
    pub const LEN: usize = 10;

    /// Serializes the record.
    pub fn to_bytes(&self) -> [u8; CompiledRecord::LEN] {
        let mut b = [0u8; CompiledRecord::LEN];
        b[0] = (self.steer & 0x3) | ((self.region & 0x7) << 2) | ((self.fu & 0x3) << 5);
        b[1] = self.latency;
        b[2..4].copy_from_slice(&self.ctx.to_le_bytes());
        b[4] = self.srcs[0];
        b[5] = self.srcs[1];
        b[6] = self.srcs[2];
        b[7] = self.data_src;
        b[8] = self.fpr_dest;
        b
    }

    /// Deserializes and structurally validates one record in O(1):
    /// reserved bits zero, region tag in range, region present iff the
    /// instruction is steered, context value zero unless dynamic (and a
    /// 15-bit value when it is), latency positive.
    ///
    /// Returns `None` on any violation — callers wrap that into
    /// [`SourceError::Corrupt`](arl_sim::SourceError).
    pub fn from_bytes(b: &[u8; CompiledRecord::LEN]) -> Option<CompiledRecord> {
        if b[0] & 0x80 != 0 || b[9] != 0 {
            return None;
        }
        let steer = b[0] & 0x3;
        let region = (b[0] >> 2) & 0x7;
        let fu = (b[0] >> 5) & 0x3;
        if region > 3 || (steer == 0) != (region == 0) {
            return None;
        }
        let ctx = u16::from_le_bytes([b[2], b[3]]);
        if steer != arl_sim::ModelHints::STEER_DYNAMIC && ctx != 0 {
            return None;
        }
        if ctx >= 1 << 15 || b[1] == 0 {
            return None;
        }
        // Operand indices address the 64-entry unified register file
        // (FPR destinations only its upper half); anything else would send
        // the consuming dispatch stage out of bounds.
        if [b[4], b[5], b[6], b[7]]
            .iter()
            .any(|&s| s != 255 && s >= 64)
        {
            return None;
        }
        if b[8] != 255 && !(32..64).contains(&b[8]) {
            return None;
        }
        Some(CompiledRecord {
            steer,
            region,
            fu,
            latency: b[1],
            ctx,
            srcs: [b[4], b[5], b[6]],
            data_src: b[7],
            fpr_dest: b[8],
        })
    }

    /// Precomputes the record for one retired instruction — the exact
    /// model work the timing cores perform live when no compiled section
    /// is present, evaluated once at capture.
    pub fn compile(e: &TraceEntry) -> CompiledRecord {
        let (fu, latency) = arl_core::classify_fu(&e.inst);
        let (srcs, data_src) = arl_core::model_srcs(&e.inst);
        let fpr_dest = arl_core::fpr_dest_index(&e.inst);
        let (steer, region, ctx) = match (e.inst.mem_op(), e.mem) {
            (Some(info), Some(m)) => {
                let steer = match arl_core::static_hint(&info) {
                    arl_core::StaticHint::Stack => arl_sim::ModelHints::STEER_STACK,
                    arl_core::StaticHint::NonStack => arl_sim::ModelHints::STEER_NONSTACK,
                    arl_core::StaticHint::Dynamic => arl_sim::ModelHints::STEER_DYNAMIC,
                };
                let region = match m.region {
                    arl_mem::Region::Data => 1,
                    arl_mem::Region::Heap => 2,
                    arl_mem::Region::Stack => 3,
                    // A data access to text never retires from the
                    // functional executor; encode the impossible tag so a
                    // forged entry is refused at decode.
                    arl_mem::Region::Text => 0,
                };
                let ctx = if steer == arl_sim::ModelHints::STEER_DYNAMIC {
                    arl_core::Context::HYBRID_8_7.value(e.ghr, e.ra) as u16
                } else {
                    0
                };
                (steer, region, ctx)
            }
            _ => (0, 0, 0),
        };
        CompiledRecord {
            steer,
            region,
            fu: fu.tag(),
            latency: latency as u8,
            ctx,
            srcs,
            data_src,
            fpr_dest,
        }
    }
}

/// Decodes one event record, advancing `pos` and the delta state.
///
/// Returns `None` on malformed bytes (truncated/overlong varint, reserved
/// flag bits) — callers wrap that into [`SourceError::Corrupt`].
pub(crate) fn decode_event(
    bytes: &[u8],
    pos: &mut usize,
    state: &mut DeltaState,
) -> Option<TraceEvent> {
    let &flags = bytes.get(*pos)?;
    *pos += 1;
    if flags & FLAG_RESERVED != 0 {
        return None;
    }
    let pc = if flags & FLAG_PC_BREAK != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        state.prev_next_pc.wrapping_add(d as u64)
    } else {
        state.prev_next_pc
    };
    let fallthrough = pc.wrapping_add(INST_BYTES);
    let next_pc = if flags & FLAG_NEXT_BREAK != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        fallthrough.wrapping_add(d as u64)
    } else {
        fallthrough
    };
    let mem_addr = if flags & FLAG_MEM != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        let addr = state.prev_addr.wrapping_add(d as u64);
        state.prev_addr = addr;
        Some(addr)
    } else {
        None
    };
    let value = if flags & FLAG_VALUE != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        let v = state.prev_value.wrapping_add(d);
        state.prev_value = v;
        Some(v)
    } else {
        None
    };
    state.prev_next_pc = next_pc;
    Some(TraceEvent {
        pc,
        next_pc,
        taken: flags & FLAG_TAKEN != 0,
        mem_addr,
        value,
    })
}

/// Incremental trace encoder. Feed it every retired instruction in order,
/// then [`finish`](TraceWriter::finish) with the run's final [`Metrics`].
#[derive(Clone, Debug)]
pub struct TraceWriter {
    buf: Vec<u8>,
    state: DeltaState,
    count: u64,
    /// Snapshot every `interval` events (0 = never).
    interval: u64,
    /// Accumulated serialized snapshot records.
    snapshots: Vec<u8>,
    /// Accumulated compiled-model records (`Some` = emit a v3 container).
    compiled: Option<Vec<u8>>,
}

impl TraceWriter {
    /// Starts a trace for a program whose first retired pc is `entry_pc`.
    pub fn new(entry_pc: u64) -> TraceWriter {
        TraceWriter::with_snapshots(entry_pc, 0)
    }

    /// Like [`TraceWriter::new`], additionally emitting a snapshot record
    /// every `interval` events (0 disables snapshots). Snapshots are taken
    /// by [`record`](TraceWriter::record), which sees the replayed
    /// contexts; the raw [`push`](TraceWriter::push) path never snapshots.
    pub fn with_snapshots(entry_pc: u64, interval: u64) -> TraceWriter {
        TraceWriter::with_options(entry_pc, interval, false)
    }

    /// Like [`TraceWriter::with_snapshots`], optionally compiling the
    /// per-event model section into the container (a version-3 trace).
    /// Compiled records are produced by [`record`](TraceWriter::record),
    /// which sees the full entry; the raw [`push`](TraceWriter::push)
    /// path cannot compile (and [`finish`](TraceWriter::finish) enforces
    /// the one-record-per-event invariant).
    pub fn with_options(entry_pc: u64, interval: u64, compiled: bool) -> TraceWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.push(if compiled { VERSION_V3 } else { VERSION });
        buf.extend_from_slice(&entry_pc.to_le_bytes());
        TraceWriter {
            buf,
            state: DeltaState::new(entry_pc),
            count: 0,
            interval,
            snapshots: Vec::new(),
            compiled: compiled.then(Vec::new),
        }
    }

    /// Appends one event.
    pub fn push(&mut self, e: &TraceEvent) {
        let mut flags = 0u8;
        if e.mem_addr.is_some() {
            flags |= FLAG_MEM;
        }
        if e.value.is_some() {
            flags |= FLAG_VALUE;
        }
        if e.taken {
            flags |= FLAG_TAKEN;
        }
        let pc_break = e.pc != self.state.prev_next_pc;
        if pc_break {
            flags |= FLAG_PC_BREAK;
        }
        let fallthrough = e.pc.wrapping_add(INST_BYTES);
        let next_break = e.next_pc != fallthrough;
        if next_break {
            flags |= FLAG_NEXT_BREAK;
        }
        self.buf.push(flags);
        if pc_break {
            let d = e.pc.wrapping_sub(self.state.prev_next_pc) as i64;
            write_varint(&mut self.buf, zigzag(d));
        }
        if next_break {
            let d = e.next_pc.wrapping_sub(fallthrough) as i64;
            write_varint(&mut self.buf, zigzag(d));
        }
        if let Some(addr) = e.mem_addr {
            let d = addr.wrapping_sub(self.state.prev_addr) as i64;
            write_varint(&mut self.buf, zigzag(d));
            self.state.prev_addr = addr;
        }
        if let Some(v) = e.value {
            let d = v.wrapping_sub(self.state.prev_value);
            write_varint(&mut self.buf, zigzag(d));
            self.state.prev_value = v;
        }
        self.state.prev_next_pc = e.next_pc;
        self.count += 1;
    }

    /// Appends one retired instruction (convenience over
    /// [`TraceEvent::from_entry`] + [`push`](TraceWriter::push)),
    /// emitting a snapshot record first whenever the event index crosses
    /// the configured interval. The entry's sampled contexts (`ghr`,
    /// `ra`) *are* the replayer state about to deliver this event, so the
    /// snapshot is exactly what a segment replayer must resume with.
    pub fn record(&mut self, e: &TraceEntry) {
        if let Some(compiled) = &mut self.compiled {
            compiled.extend_from_slice(&CompiledRecord::compile(e).to_bytes());
        }
        if self.interval > 0 && self.count > 0 && self.count.is_multiple_of(self.interval) {
            let record = SnapshotRecord {
                inst_index: self.count,
                body_pos: (self.buf.len() - HEADER_LEN) as u64,
                prev_next_pc: self.state.prev_next_pc,
                prev_addr: self.state.prev_addr,
                prev_value: self.state.prev_value,
                ghr: e.ghr,
                ra: e.ra,
            };
            self.snapshots.extend_from_slice(&record.to_bytes());
        }
        self.push(&TraceEvent::from_entry(e));
    }

    /// Events pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Seals the trace: compiled section (v3), snapshot section, footer,
    /// checksum.
    ///
    /// # Panics
    ///
    /// Panics if the writer was opened in compiled mode but events were
    /// fed through the raw [`push`](TraceWriter::push) path, leaving the
    /// compiled section short of one record per event.
    pub fn finish(mut self, metrics: &Metrics) -> Trace {
        if let Some(compiled) = self.compiled.take() {
            assert_eq!(
                compiled.len() as u64,
                self.count * CompiledRecord::LEN as u64,
                "compiled writer requires record(), not raw push()"
            );
            let section_checksum = fnv1a64(&compiled);
            self.buf.extend_from_slice(&compiled);
            self.buf.extend_from_slice(&section_checksum.to_le_bytes());
        }
        let snapshot_count = (self.snapshots.len() / SnapshotRecord::LEN) as u64;
        self.buf.extend_from_slice(&self.snapshots);
        self.buf.extend_from_slice(&self.interval.to_le_bytes());
        self.buf.extend_from_slice(&snapshot_count.to_le_bytes());
        self.buf.extend_from_slice(&self.count.to_le_bytes());
        self.buf
            .extend_from_slice(&(metrics.resident_pages as u64).to_le_bytes());
        self.buf
            .extend_from_slice(&(metrics.output_values as u64).to_le_bytes());
        self.buf.push(metrics.exited as u8);
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        Trace { bytes: self.buf }
    }
}

fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// A validated captured trace: owns the raw container bytes.
///
/// Construction goes through [`Trace::from_bytes`] (which verifies the
/// checksum, so any single-byte corruption in transit or on disk is
/// rejected) or through capture/encoding, which seal a fresh checksum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    bytes: Vec<u8>,
}

impl Trace {
    /// Encodes an event sequence directly (tests and tools; workload
    /// capture goes through [`capture`](crate::capture)).
    pub fn from_events(entry_pc: u64, events: &[TraceEvent], metrics: &Metrics) -> Trace {
        let mut w = TraceWriter::new(entry_pc);
        for e in events {
            w.push(e);
        }
        w.finish(metrics)
    }

    /// Validates and adopts serialized trace bytes.
    ///
    /// Validation runs cheapest-first: length, magic/version, then the
    /// O(1) structural invariants of the footer and (v2) the snapshot
    /// trailer — the exited flag is a real boolean; the event count fits
    /// the body, since every event costs at least one byte; the snapshot
    /// section fits the container; a non-empty snapshot section implies a
    /// positive interval whose last boundary lies strictly inside the
    /// event stream — and only then the O(n) checksum. The order matters
    /// for robustness *and* speed: a truncated container lands its footer
    /// window on arbitrary event-stream bytes, which in practice always
    /// trips a structural check, so rejecting a truncation at **any**
    /// byte offset costs O(1) instead of a full re-hash — and a
    /// checksum-re-sealed forgery of a footer or trailer field is refused
    /// at adoption, before any decode loop can trust it.
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the container is too short, the
    /// magic/version are wrong, a footer or snapshot-trailer field is
    /// structurally invalid, or the checksum does not match.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Trace, SourceError> {
        if bytes.len() < MIN_LEN {
            return Err(SourceError::Corrupt(format!(
                "trace too short: {} bytes, need at least {MIN_LEN}",
                bytes.len()
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(SourceError::Corrupt("bad magic (not an ARLT trace)".into()));
        }
        let version = bytes[4];
        if version != VERSION && version != VERSION_V1 && version != VERSION_V3 {
            return Err(SourceError::Corrupt(format!(
                "unsupported trace version {version} (expected {VERSION_V1}, {VERSION}, or {VERSION_V3})"
            )));
        }
        let footer = bytes.len() - CHECKSUM_LEN - FOOTER_LEN;
        let exited = bytes[footer + 24];
        if exited > 1 {
            return Err(SourceError::Corrupt(format!(
                "exited flag is {exited}, not a boolean"
            )));
        }
        let count = read_u64_le(&bytes, footer);
        let mut body_end = footer;
        if version != VERSION_V1 {
            let min = if version == VERSION_V3 {
                V3_MIN_LEN
            } else {
                V2_MIN_LEN
            };
            if bytes.len() < min {
                return Err(SourceError::Corrupt(format!(
                    "v{version} trace too short: {} bytes, need at least {min}",
                    bytes.len()
                )));
            }
            let trailer = footer - SNAP_TRAILER_LEN;
            let interval = read_u64_le(&bytes, trailer);
            let snap_count = read_u64_le(&bytes, trailer + 8);
            let snap_bytes = snap_count
                .checked_mul(SnapshotRecord::LEN as u64)
                .filter(|&b| b <= (trailer - HEADER_LEN) as u64)
                .ok_or_else(|| {
                    SourceError::Corrupt(format!(
                        "snapshot count {snap_count} exceeds the container"
                    ))
                })?;
            if snap_count > 0 {
                // Snapshot i sits at inst_index (i+1)×interval, and a
                // snapshot is only emitted when a later event follows it,
                // so the last boundary is strictly below the event count.
                let last = snap_count.checked_mul(interval).ok_or_else(|| {
                    SourceError::Corrupt(format!(
                        "snapshot interval {interval} × count {snap_count} overflows"
                    ))
                })?;
                if interval == 0 || last >= count {
                    return Err(SourceError::Corrupt(format!(
                        "snapshot trailer inconsistent: interval {interval}, \
                         count {snap_count}, events {count}"
                    )));
                }
            }
            body_end = trailer - snap_bytes as usize;
            if version == VERSION_V3 {
                // One 10-byte record per event plus the section seal must
                // fit between the header and the snapshot section.
                let compiled_bytes = count
                    .checked_mul(CompiledRecord::LEN as u64)
                    .and_then(|b| b.checked_add(COMPILED_CHECKSUM_LEN as u64))
                    .filter(|&b| b <= (body_end - HEADER_LEN) as u64)
                    .ok_or_else(|| {
                        SourceError::Corrupt(format!(
                            "compiled section for {count} events exceeds the container"
                        ))
                    })?;
                body_end -= compiled_bytes as usize;
            }
        }
        let body_bytes = (body_end - HEADER_LEN) as u64;
        if count > body_bytes {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {body_bytes}-byte body"
            )));
        }
        let body_len = bytes.len() - CHECKSUM_LEN;
        let stored = read_u64_le(&bytes, body_len);
        let computed = fnv1a64(&bytes[..body_len]);
        if stored != computed {
            return Err(SourceError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        if version == VERSION_V3 {
            let section_len = count as usize * CompiledRecord::LEN;
            let stored = read_u64_le(&bytes, body_end + section_len);
            let computed = fnv1a64(&bytes[body_end..body_end + section_len]);
            if stored != computed {
                return Err(SourceError::Corrupt(format!(
                    "compiled section checksum mismatch: stored {stored:#018x}, \
                     computed {computed:#018x}"
                )));
            }
        }
        Ok(Trace { bytes })
    }

    /// The serialized container.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Durably publishes the container at `path` via the crash-consistent
    /// sink ([`arl_sink::durable_write`]): temp file + `sync_all` +
    /// rename, so a crash mid-write can never clobber a good capture
    /// with a torn one.
    ///
    /// # Errors
    ///
    /// I/O errors from the sink (including injected chaos faults).
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        arl_sink::durable_write(path, &self.bytes)
    }

    /// Reads and validates a serialized container from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file; a [`SourceError::Corrupt`] container
    /// is surfaced as [`std::io::ErrorKind::InvalidData`].
    pub fn read_from(path: &std::path::Path) -> std::io::Result<Trace> {
        let bytes = std::fs::read(path)?;
        Trace::from_bytes(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Consumes the trace, yielding the serialized container.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The pc of the first retired instruction.
    pub fn entry_pc(&self) -> u64 {
        read_u64_le(&self.bytes, 5)
    }

    /// Number of encoded events (= instructions retired during capture).
    pub fn event_count(&self) -> u64 {
        read_u64_le(&self.bytes, self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN)
    }

    /// The sealed FNV-1a checksum.
    pub fn checksum(&self) -> u64 {
        read_u64_le(&self.bytes, self.bytes.len() - CHECKSUM_LEN)
    }

    /// Reconstructs the functional [`Metrics`] the capture run ended with.
    pub fn metrics(&self) -> Metrics {
        let footer = self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN;
        let resident_pages = read_u64_le(&self.bytes, footer + 8) as usize;
        Metrics {
            instructions: self.event_count(),
            resident_pages,
            peak_rss_bytes: resident_pages as u64 * PAGE_SIZE,
            output_values: read_u64_le(&self.bytes, footer + 16) as usize,
            exited: self.bytes[footer + 24] != 0,
        }
    }

    /// The container format version (1, 2, or 3).
    pub fn version(&self) -> u8 {
        self.bytes[4]
    }

    /// Bytes occupied by the compiled-model section, seal included (0 for
    /// v1/v2 containers).
    fn compiled_len(&self) -> usize {
        if self.version() == VERSION_V3 {
            self.event_count() as usize * CompiledRecord::LEN + COMPILED_CHECKSUM_LEN
        } else {
            0
        }
    }

    /// Whether the container embeds a compiled-model section.
    pub fn has_model(&self) -> bool {
        self.version() == VERSION_V3
    }

    /// The raw compiled-model records (one 10-byte [`CompiledRecord`] per
    /// event), or `None` for v1/v2 containers. The section checksum was
    /// verified at adoption; records are structurally validated again as
    /// they are decoded.
    pub fn compiled_section(&self) -> Option<&[u8]> {
        if self.version() != VERSION_V3 {
            return None;
        }
        let start = self.body_end();
        let len = self.event_count() as usize * CompiledRecord::LEN;
        Some(&self.bytes[start..start + len])
    }

    /// Where the event stream ends (compiled/snapshot sections begin).
    fn body_end(&self) -> usize {
        let footer = self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN;
        if self.version() == VERSION_V1 {
            return footer;
        }
        let trailer = footer - SNAP_TRAILER_LEN;
        let snap_count = read_u64_le(&self.bytes, trailer + 8) as usize;
        trailer - snap_count * SnapshotRecord::LEN - self.compiled_len()
    }

    /// The snapshot interval the trace was captured with (0 = none; v1
    /// traces always report 0).
    pub fn snapshot_interval(&self) -> u64 {
        if self.version() == VERSION_V1 {
            return 0;
        }
        let trailer = self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN - SNAP_TRAILER_LEN;
        read_u64_le(&self.bytes, trailer)
    }

    /// Number of snapshot records in the container (0 for v1 traces).
    pub fn snapshot_count(&self) -> u64 {
        if self.version() == VERSION_V1 {
            return 0;
        }
        let trailer = self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN - SNAP_TRAILER_LEN;
        read_u64_le(&self.bytes, trailer + 8)
    }

    /// Decodes and validates snapshot record `i` in O(1): the record's
    /// own checksum, its expected boundary `(i+1) × interval`, and that
    /// its byte cursor lies within the event stream.
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when `i` is out of range or the record
    /// fails any of the O(1) checks.
    pub fn snapshot(&self, i: u64) -> Result<SnapshotRecord, SourceError> {
        let snap_count = self.snapshot_count();
        if i >= snap_count {
            return Err(SourceError::Corrupt(format!(
                "snapshot {i} out of range ({snap_count} records)"
            )));
        }
        let body_end = self.body_end();
        let at = body_end + self.compiled_len() + (i as usize) * SnapshotRecord::LEN;
        let mut raw = [0u8; SnapshotRecord::LEN];
        raw.copy_from_slice(&self.bytes[at..at + SnapshotRecord::LEN]);
        let record = SnapshotRecord::from_bytes(&raw)?;
        let expect = (i + 1).wrapping_mul(self.snapshot_interval());
        if record.inst_index != expect {
            return Err(SourceError::Corrupt(format!(
                "snapshot {i} claims inst_index {}, expected {expect}",
                record.inst_index
            )));
        }
        let body_len = (body_end - HEADER_LEN) as u64;
        if record.body_pos > body_len {
            return Err(SourceError::Corrupt(format!(
                "snapshot {i} cursor {} exceeds the {body_len}-byte body",
                record.body_pos
            )));
        }
        Ok(record)
    }

    /// The encoded event stream (between header and snapshots/footer).
    pub(crate) fn body(&self) -> &[u8] {
        &self.bytes[HEADER_LEN..self.body_end()]
    }

    /// Decodes the full event sequence (codec tests and tools; simulation
    /// replays incrementally via [`Replayer`](crate::Replayer) instead).
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the stream is malformed or its length
    /// disagrees with the footer's event count.
    pub fn events(&self) -> Result<Vec<TraceEvent>, SourceError> {
        let body = self.body();
        let mut state = DeltaState::new(self.entry_pc());
        let mut pos = 0;
        let count = self.event_count();
        // The count is a footer field under the container checksum, but a
        // re-sealed forgery could still carry an absurd value; every event
        // costs at least one body byte, so bound the decode loop (and the
        // preallocation) by the payload actually present.
        if count > body.len() as u64 {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {}-byte body",
                body.len()
            )));
        }
        let mut events = Vec::with_capacity(count.min(1 << 20) as usize);
        for i in 0..count {
            let event = decode_event(body, &mut pos, &mut state)
                .ok_or_else(|| SourceError::Corrupt(format!("malformed event {i}")))?;
            events.push(event);
        }
        if pos != body.len() {
            return Err(SourceError::Corrupt(format!(
                "{} trailing bytes after {count} events",
                body.len() - pos
            )));
        }
        Ok(events)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ev(pc: u64, next_pc: u64) -> TraceEvent {
        TraceEvent {
            pc,
            next_pc,
            taken: false,
            mem_addr: None,
            value: None,
        }
    }

    #[test]
    fn straight_line_events_cost_one_byte_each() {
        let events: Vec<TraceEvent> = (0..100).map(|i| ev(8 * i, 8 * (i + 1))).collect();
        let t = Trace::from_events(0, &events, &Metrics::default());
        assert_eq!(t.as_bytes().len(), V2_MIN_LEN + events.len());
        assert_eq!(t.events().unwrap(), events);
        assert_eq!(t.version(), VERSION);
        assert_eq!(t.snapshot_count(), 0);
        assert_eq!(t.snapshot_interval(), 0);
    }

    #[test]
    fn snapshot_record_round_trips_and_rejects_flips() {
        let record = SnapshotRecord {
            inst_index: 1 << 40,
            body_pos: 12_345,
            prev_next_pc: 0xdead_beef_0000,
            prev_addr: 0x7fff_1234,
            prev_value: -17,
            ghr: u64::MAX,
            ra: 0x4000_0008,
        };
        let bytes = record.to_bytes();
        assert_eq!(SnapshotRecord::from_bytes(&bytes).unwrap(), record);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes;
                bad[i] ^= 1 << bit;
                assert!(
                    SnapshotRecord::from_bytes(&bad).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn forged_snapshot_trailers_are_rejected_structurally() {
        let events: Vec<TraceEvent> = (0..32).map(|i| ev(8 * i, 8 * (i + 1))).collect();
        let t = Trace::from_events(0, &events, &Metrics::default());
        let good = t.as_bytes().to_vec();
        let trailer = good.len() - CHECKSUM_LEN - FOOTER_LEN - SNAP_TRAILER_LEN;
        let reseal = |mut bytes: Vec<u8>| {
            let body_len = bytes.len() - CHECKSUM_LEN;
            let checksum = fnv1a64(&bytes[..body_len]);
            bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
            bytes
        };
        // A snapshot count far beyond the container, re-sealed so only the
        // structural bound can catch it.
        let mut forged = good.clone();
        forged[trailer + 8..trailer + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Trace::from_bytes(reseal(forged)).is_err());
        // A non-zero count with a zero interval.
        let mut forged = good.clone();
        forged[trailer..trailer + 8].copy_from_slice(&0u64.to_le_bytes());
        forged[trailer + 8..trailer + 16].copy_from_slice(&1u64.to_le_bytes());
        assert!(Trace::from_bytes(reseal(forged)).is_err());
        // A boundary at or past the event count.
        let mut forged = good;
        forged[trailer..trailer + 8].copy_from_slice(&32u64.to_le_bytes());
        forged[trailer + 8..trailer + 16].copy_from_slice(&1u64.to_le_bytes());
        assert!(Trace::from_bytes(reseal(forged)).is_err());
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let events = vec![
            TraceEvent {
                pc: 0x10000,
                next_pc: 0x10008,
                taken: false,
                mem_addr: Some(0x7fff_0000),
                value: Some(-5),
            },
            TraceEvent {
                pc: 0x10008,
                next_pc: 0x10000,
                taken: true,
                mem_addr: None,
                value: None,
            },
            TraceEvent {
                pc: 0x10000,
                next_pc: 0x10008,
                taken: false,
                mem_addr: Some(0x7fff_0008),
                value: Some(i64::MIN),
            },
        ];
        let metrics = Metrics {
            instructions: 3,
            resident_pages: 7,
            peak_rss_bytes: 7 * PAGE_SIZE,
            output_values: 2,
            exited: true,
        };
        let t = Trace::from_events(0x10000, &events, &metrics);
        assert_eq!(t.events().unwrap(), events);
        assert_eq!(t.entry_pc(), 0x10000);
        assert_eq!(t.event_count(), 3);
        assert_eq!(t.metrics(), metrics);

        let reparsed = Trace::from_bytes(t.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let events: Vec<TraceEvent> = (0..8)
            .map(|i| TraceEvent {
                pc: 8 * i,
                next_pc: 8 * (i + 1),
                taken: i % 2 == 0,
                mem_addr: (i % 3 == 0).then_some(0x1000 + i),
                value: (i % 2 == 1).then_some(i as i64),
            })
            .collect();
        let t = Trace::from_events(0, &events, &Metrics::default());
        let good = t.as_bytes().to_vec();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x41;
            assert!(
                Trace::from_bytes(bad).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn short_buffers_are_rejected() {
        assert!(Trace::from_bytes(Vec::new()).is_err());
        assert!(Trace::from_bytes(vec![0u8; MIN_LEN - 1]).is_err());
    }

    fn model_entry(pc: u64, base: arl_isa::Gpr, addr: u64) -> TraceEntry {
        use arl_isa::{Gpr, Inst, Width};
        TraceEntry {
            pc,
            inst: Inst::Load {
                width: Width::Double,
                signed: true,
                rd: Gpr::T0,
                base,
                offset: 0,
            },
            mem: Some(arl_sim::MemAccess {
                addr,
                width: Width::Double,
                is_load: true,
                region: arl_mem::Region::Heap,
            }),
            taken: false,
            next_pc: pc + 8,
            gpr_write: Some((Gpr::T0, 1)),
            ghr: 0b1011,
            ra: 0x40_0100,
            model: arl_sim::ModelHints::NONE,
        }
    }

    #[test]
    fn compiled_record_round_trips_and_rejects_structural_damage() {
        let e = model_entry(0x40_0000, arl_isa::Gpr::T1, 0x2000_0000);
        let rec = CompiledRecord::compile(&e);
        assert_eq!(rec.steer, arl_sim::ModelHints::STEER_DYNAMIC);
        assert_eq!(rec.region, 2, "heap tag");
        assert_ne!(rec.ctx, 0, "dynamic access carries its context value");
        let bytes = rec.to_bytes();
        assert_eq!(CompiledRecord::from_bytes(&bytes).unwrap(), rec);

        // Reserved bits, bad region tags, and steer/region or steer/ctx
        // disagreements are all refused.
        let mut bad = bytes;
        bad[0] |= 0x80;
        assert!(CompiledRecord::from_bytes(&bad).is_none());
        let mut bad = bytes;
        bad[9] = 1;
        assert!(CompiledRecord::from_bytes(&bad).is_none());
        let mut bad = bytes;
        bad[0] = (bad[0] & !0x1c) | (7 << 2); // region tag 7
        assert!(CompiledRecord::from_bytes(&bad).is_none());
        let mut bad = bytes;
        bad[0] &= !0x3; // steered access with no steer tag
        assert!(CompiledRecord::from_bytes(&bad).is_none());
        let mut bad = bytes;
        bad[1] = 0; // zero latency
        assert!(CompiledRecord::from_bytes(&bad).is_none());
        let mut bad = bytes;
        bad[0] = (bad[0] & !0x3) | arl_sim::ModelHints::STEER_STACK;
        assert!(
            CompiledRecord::from_bytes(&bad).is_none(),
            "non-dynamic steer with a non-zero context value"
        );
    }

    #[test]
    fn compiled_writer_emits_a_valid_v3_container() {
        let mut w = TraceWriter::with_options(0x40_0000, 0, true);
        for i in 0..16u64 {
            w.record(&model_entry(
                0x40_0000 + 8 * i,
                arl_isa::Gpr::T1,
                0x2000_0000 + 8 * i,
            ));
        }
        let t = w.finish(&Metrics::default());
        assert_eq!(t.version(), VERSION_V3);
        assert!(t.has_model());
        let section = t.compiled_section().unwrap();
        assert_eq!(section.len(), 16 * CompiledRecord::LEN);
        // Adoption re-validates: structural bounds plus both checksums.
        let reparsed = Trace::from_bytes(t.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed, t);
        assert_eq!(reparsed.events().unwrap().len(), 16);
    }

    #[test]
    fn every_single_byte_corruption_in_a_v3_container_is_rejected() {
        let mut w = TraceWriter::with_options(0, 4, true);
        for i in 0..12u64 {
            w.record(&model_entry(8 * i, arl_isa::Gpr::SP, 0x7fff_0000 + 8 * i));
        }
        let good = w.finish(&Metrics::default()).into_bytes();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x41;
            assert!(
                Trace::from_bytes(bad).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn resealed_compiled_section_forgery_is_refused() {
        let mut w = TraceWriter::with_options(0, 0, true);
        for i in 0..8u64 {
            w.record(&model_entry(8 * i, arl_isa::Gpr::T1, 0x2000_0000));
        }
        let t = w.finish(&Metrics::default());
        let mut bytes = t.as_bytes().to_vec();
        // Flip a compiled-section byte and re-seal the *container*
        // checksum; the independent section seal must still refuse it.
        let start = t.body_end();
        bytes[start + 4] ^= 0x1;
        let body_len = bytes.len() - CHECKSUM_LEN;
        let checksum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert!(Trace::from_bytes(bytes).is_err());
    }
}
