//! The `.arltrace` container: header, delta+varint event stream, footer,
//! trailing FNV-1a checksum.
//!
//! # Layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ARLT"
//! 4       1     format version (currently 1)
//! 5       8     program entry pc, u64 LE
//! 13      …     event stream (one record per retired instruction)
//! len-33  8     event count, u64 LE
//! len-25  8     resident pages at end of run, u64 LE
//! len-17  8     values printed by the program, u64 LE
//! len-9   1     exited flag (0 or 1)
//! len-8   8     FNV-1a 64 checksum of bytes[0..len-8], u64 LE
//! ```
//!
//! # Event records
//!
//! Each record is one flags byte followed by up to four zigzag varints.
//! Everything else a [`TraceEntry`](arl_sim::TraceEntry) carries — the
//! decoded instruction, access width/direction, region, branch history,
//! link register — is *re-derived* during replay from the program image
//! and the replayer's own running state, so it costs zero trace bytes.
//!
//! | bit | meaning                         | varint that follows        |
//! |-----|---------------------------------|----------------------------|
//! | 0   | has a memory access             | `addr - prev_addr`         |
//! | 1   | writes a GPR                    | `value - prev_value`       |
//! | 2   | conditional branch taken        | —                          |
//! | 3   | pc breaks from prior `next_pc`  | `pc - prev_next_pc`        |
//! | 4   | `next_pc != pc + INST_BYTES`    | `next_pc - (pc + 8)`       |
//!
//! Varints appear in bit order 3, 4, 0, 1 (control flow first, then data).
//! In straight-line code every record is a single zero byte.

use arl_isa::INST_BYTES;
use arl_mem::PAGE_SIZE;
use arl_sim::{Metrics, SourceError, TraceEntry};

use crate::codec::{fnv1a64, read_varint, unzigzag, write_varint, zigzag};

/// `"ARLT"`.
pub const MAGIC: [u8; 4] = *b"ARLT";
/// Current format version.
pub const VERSION: u8 = 1;

pub(crate) const HEADER_LEN: usize = 13;
pub(crate) const FOOTER_LEN: usize = 25;
pub(crate) const CHECKSUM_LEN: usize = 8;
pub(crate) const MIN_LEN: usize = HEADER_LEN + FOOTER_LEN + CHECKSUM_LEN;

pub(crate) const FLAG_MEM: u8 = 1 << 0;
pub(crate) const FLAG_VALUE: u8 = 1 << 1;
pub(crate) const FLAG_TAKEN: u8 = 1 << 2;
pub(crate) const FLAG_PC_BREAK: u8 = 1 << 3;
pub(crate) const FLAG_NEXT_BREAK: u8 = 1 << 4;
pub(crate) const FLAG_RESERVED: u8 = !0x1f;

/// The codec-level view of one retired instruction: exactly the fields
/// that are *encoded* (everything else is derived at replay).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The instruction's address.
    pub pc: u64,
    /// Address of the next retired instruction.
    pub next_pc: u64,
    /// Conditional-branch outcome (`false` for everything else).
    pub taken: bool,
    /// Effective address of the memory access, if any.
    pub mem_addr: Option<u64>,
    /// Value written to the destination GPR, if any.
    pub value: Option<i64>,
}

impl TraceEvent {
    /// Projects a full [`TraceEntry`] down to its encoded fields.
    pub fn from_entry(e: &TraceEntry) -> TraceEvent {
        TraceEvent {
            pc: e.pc,
            next_pc: e.next_pc,
            taken: e.taken,
            mem_addr: e.mem.map(|m| m.addr),
            value: e.gpr_write.map(|(_, v)| v),
        }
    }
}

/// Delta state shared by the encoder and both decoders.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeltaState {
    pub prev_next_pc: u64,
    pub prev_addr: u64,
    pub prev_value: i64,
}

impl DeltaState {
    pub(crate) fn new(entry_pc: u64) -> DeltaState {
        DeltaState {
            prev_next_pc: entry_pc,
            prev_addr: 0,
            prev_value: 0,
        }
    }
}

/// Decodes one event record, advancing `pos` and the delta state.
///
/// Returns `None` on malformed bytes (truncated/overlong varint, reserved
/// flag bits) — callers wrap that into [`SourceError::Corrupt`].
pub(crate) fn decode_event(
    bytes: &[u8],
    pos: &mut usize,
    state: &mut DeltaState,
) -> Option<TraceEvent> {
    let &flags = bytes.get(*pos)?;
    *pos += 1;
    if flags & FLAG_RESERVED != 0 {
        return None;
    }
    let pc = if flags & FLAG_PC_BREAK != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        state.prev_next_pc.wrapping_add(d as u64)
    } else {
        state.prev_next_pc
    };
    let fallthrough = pc.wrapping_add(INST_BYTES);
    let next_pc = if flags & FLAG_NEXT_BREAK != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        fallthrough.wrapping_add(d as u64)
    } else {
        fallthrough
    };
    let mem_addr = if flags & FLAG_MEM != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        let addr = state.prev_addr.wrapping_add(d as u64);
        state.prev_addr = addr;
        Some(addr)
    } else {
        None
    };
    let value = if flags & FLAG_VALUE != 0 {
        let d = unzigzag(read_varint(bytes, pos)?);
        let v = state.prev_value.wrapping_add(d);
        state.prev_value = v;
        Some(v)
    } else {
        None
    };
    state.prev_next_pc = next_pc;
    Some(TraceEvent {
        pc,
        next_pc,
        taken: flags & FLAG_TAKEN != 0,
        mem_addr,
        value,
    })
}

/// Incremental trace encoder. Feed it every retired instruction in order,
/// then [`finish`](TraceWriter::finish) with the run's final [`Metrics`].
#[derive(Clone, Debug)]
pub struct TraceWriter {
    buf: Vec<u8>,
    state: DeltaState,
    count: u64,
}

impl TraceWriter {
    /// Starts a trace for a program whose first retired pc is `entry_pc`.
    pub fn new(entry_pc: u64) -> TraceWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&entry_pc.to_le_bytes());
        TraceWriter {
            buf,
            state: DeltaState::new(entry_pc),
            count: 0,
        }
    }

    /// Appends one event.
    pub fn push(&mut self, e: &TraceEvent) {
        let mut flags = 0u8;
        if e.mem_addr.is_some() {
            flags |= FLAG_MEM;
        }
        if e.value.is_some() {
            flags |= FLAG_VALUE;
        }
        if e.taken {
            flags |= FLAG_TAKEN;
        }
        let pc_break = e.pc != self.state.prev_next_pc;
        if pc_break {
            flags |= FLAG_PC_BREAK;
        }
        let fallthrough = e.pc.wrapping_add(INST_BYTES);
        let next_break = e.next_pc != fallthrough;
        if next_break {
            flags |= FLAG_NEXT_BREAK;
        }
        self.buf.push(flags);
        if pc_break {
            let d = e.pc.wrapping_sub(self.state.prev_next_pc) as i64;
            write_varint(&mut self.buf, zigzag(d));
        }
        if next_break {
            let d = e.next_pc.wrapping_sub(fallthrough) as i64;
            write_varint(&mut self.buf, zigzag(d));
        }
        if let Some(addr) = e.mem_addr {
            let d = addr.wrapping_sub(self.state.prev_addr) as i64;
            write_varint(&mut self.buf, zigzag(d));
            self.state.prev_addr = addr;
        }
        if let Some(v) = e.value {
            let d = v.wrapping_sub(self.state.prev_value);
            write_varint(&mut self.buf, zigzag(d));
            self.state.prev_value = v;
        }
        self.state.prev_next_pc = e.next_pc;
        self.count += 1;
    }

    /// Appends one retired instruction (convenience over
    /// [`TraceEvent::from_entry`] + [`push`](TraceWriter::push)).
    pub fn record(&mut self, e: &TraceEntry) {
        self.push(&TraceEvent::from_entry(e));
    }

    /// Events pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Seals the trace: footer, checksum.
    pub fn finish(mut self, metrics: &Metrics) -> Trace {
        self.buf.extend_from_slice(&self.count.to_le_bytes());
        self.buf
            .extend_from_slice(&(metrics.resident_pages as u64).to_le_bytes());
        self.buf
            .extend_from_slice(&(metrics.output_values as u64).to_le_bytes());
        self.buf.push(metrics.exited as u8);
        let checksum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        Trace { bytes: self.buf }
    }
}

fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// A validated captured trace: owns the raw container bytes.
///
/// Construction goes through [`Trace::from_bytes`] (which verifies the
/// checksum, so any single-byte corruption in transit or on disk is
/// rejected) or through capture/encoding, which seal a fresh checksum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    bytes: Vec<u8>,
}

impl Trace {
    /// Encodes an event sequence directly (tests and tools; workload
    /// capture goes through [`capture`](crate::capture)).
    pub fn from_events(entry_pc: u64, events: &[TraceEvent], metrics: &Metrics) -> Trace {
        let mut w = TraceWriter::new(entry_pc);
        for e in events {
            w.push(e);
        }
        w.finish(metrics)
    }

    /// Validates and adopts serialized trace bytes.
    ///
    /// Validation runs cheapest-first: length, magic/version, then the
    /// O(1) structural footer invariants (the exited flag is a real
    /// boolean; the event count fits the body, since every event costs
    /// at least one byte), and only then the O(n) checksum. The order
    /// matters for robustness *and* speed: a truncated container lands
    /// its footer window on arbitrary event-stream bytes, which in
    /// practice always trips a structural check, so rejecting a
    /// truncation at **any** byte offset costs O(1) instead of a full
    /// re-hash — and a checksum-re-sealed forgery of a footer field is
    /// refused at adoption, before any decode loop can trust it.
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the container is too short, the
    /// magic/version are wrong, a footer field is structurally invalid,
    /// or the checksum does not match.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Trace, SourceError> {
        if bytes.len() < MIN_LEN {
            return Err(SourceError::Corrupt(format!(
                "trace too short: {} bytes, need at least {MIN_LEN}",
                bytes.len()
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(SourceError::Corrupt("bad magic (not an ARLT trace)".into()));
        }
        if bytes[4] != VERSION {
            return Err(SourceError::Corrupt(format!(
                "unsupported trace version {} (expected {VERSION})",
                bytes[4]
            )));
        }
        let footer = bytes.len() - CHECKSUM_LEN - FOOTER_LEN;
        let exited = bytes[footer + 24];
        if exited > 1 {
            return Err(SourceError::Corrupt(format!(
                "exited flag is {exited}, not a boolean"
            )));
        }
        let count = read_u64_le(&bytes, footer);
        let body_bytes = (footer - HEADER_LEN) as u64;
        if count > body_bytes {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {body_bytes}-byte body"
            )));
        }
        let body_len = bytes.len() - CHECKSUM_LEN;
        let stored = read_u64_le(&bytes, body_len);
        let computed = fnv1a64(&bytes[..body_len]);
        if stored != computed {
            return Err(SourceError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
        Ok(Trace { bytes })
    }

    /// The serialized container.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the trace, yielding the serialized container.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The pc of the first retired instruction.
    pub fn entry_pc(&self) -> u64 {
        read_u64_le(&self.bytes, 5)
    }

    /// Number of encoded events (= instructions retired during capture).
    pub fn event_count(&self) -> u64 {
        read_u64_le(&self.bytes, self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN)
    }

    /// The sealed FNV-1a checksum.
    pub fn checksum(&self) -> u64 {
        read_u64_le(&self.bytes, self.bytes.len() - CHECKSUM_LEN)
    }

    /// Reconstructs the functional [`Metrics`] the capture run ended with.
    pub fn metrics(&self) -> Metrics {
        let footer = self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN;
        let resident_pages = read_u64_le(&self.bytes, footer + 8) as usize;
        Metrics {
            instructions: self.event_count(),
            resident_pages,
            peak_rss_bytes: resident_pages as u64 * PAGE_SIZE,
            output_values: read_u64_le(&self.bytes, footer + 16) as usize,
            exited: self.bytes[footer + 24] != 0,
        }
    }

    /// The encoded event stream (between header and footer).
    pub(crate) fn body(&self) -> &[u8] {
        &self.bytes[HEADER_LEN..self.bytes.len() - CHECKSUM_LEN - FOOTER_LEN]
    }

    /// Decodes the full event sequence (codec tests and tools; simulation
    /// replays incrementally via [`Replayer`](crate::Replayer) instead).
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the stream is malformed or its length
    /// disagrees with the footer's event count.
    pub fn events(&self) -> Result<Vec<TraceEvent>, SourceError> {
        let body = self.body();
        let mut state = DeltaState::new(self.entry_pc());
        let mut pos = 0;
        let count = self.event_count();
        // The count is a footer field under the container checksum, but a
        // re-sealed forgery could still carry an absurd value; every event
        // costs at least one body byte, so bound the decode loop (and the
        // preallocation) by the payload actually present.
        if count > body.len() as u64 {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {}-byte body",
                body.len()
            )));
        }
        let mut events = Vec::with_capacity(count.min(1 << 20) as usize);
        for i in 0..count {
            let event = decode_event(body, &mut pos, &mut state)
                .ok_or_else(|| SourceError::Corrupt(format!("malformed event {i}")))?;
            events.push(event);
        }
        if pos != body.len() {
            return Err(SourceError::Corrupt(format!(
                "{} trailing bytes after {count} events",
                body.len() - pos
            )));
        }
        Ok(events)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ev(pc: u64, next_pc: u64) -> TraceEvent {
        TraceEvent {
            pc,
            next_pc,
            taken: false,
            mem_addr: None,
            value: None,
        }
    }

    #[test]
    fn straight_line_events_cost_one_byte_each() {
        let events: Vec<TraceEvent> = (0..100).map(|i| ev(8 * i, 8 * (i + 1))).collect();
        let t = Trace::from_events(0, &events, &Metrics::default());
        assert_eq!(t.as_bytes().len(), MIN_LEN + events.len());
        assert_eq!(t.events().unwrap(), events);
    }

    #[test]
    fn round_trip_preserves_all_fields() {
        let events = vec![
            TraceEvent {
                pc: 0x10000,
                next_pc: 0x10008,
                taken: false,
                mem_addr: Some(0x7fff_0000),
                value: Some(-5),
            },
            TraceEvent {
                pc: 0x10008,
                next_pc: 0x10000,
                taken: true,
                mem_addr: None,
                value: None,
            },
            TraceEvent {
                pc: 0x10000,
                next_pc: 0x10008,
                taken: false,
                mem_addr: Some(0x7fff_0008),
                value: Some(i64::MIN),
            },
        ];
        let metrics = Metrics {
            instructions: 3,
            resident_pages: 7,
            peak_rss_bytes: 7 * PAGE_SIZE,
            output_values: 2,
            exited: true,
        };
        let t = Trace::from_events(0x10000, &events, &metrics);
        assert_eq!(t.events().unwrap(), events);
        assert_eq!(t.entry_pc(), 0x10000);
        assert_eq!(t.event_count(), 3);
        assert_eq!(t.metrics(), metrics);

        let reparsed = Trace::from_bytes(t.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let events: Vec<TraceEvent> = (0..8)
            .map(|i| TraceEvent {
                pc: 8 * i,
                next_pc: 8 * (i + 1),
                taken: i % 2 == 0,
                mem_addr: (i % 3 == 0).then_some(0x1000 + i),
                value: (i % 2 == 1).then_some(i as i64),
            })
            .collect();
        let t = Trace::from_events(0, &events, &Metrics::default());
        let good = t.as_bytes().to_vec();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x41;
            assert!(
                Trace::from_bytes(bad).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn short_buffers_are_rejected() {
        assert!(Trace::from_bytes(Vec::new()).is_err());
        assert!(Trace::from_bytes(vec![0u8; MIN_LEN - 1]).is_err());
    }
}
