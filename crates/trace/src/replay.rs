//! Trace capture and the replaying [`TraceSource`].

use arl_asm::Program;
use arl_isa::{Gpr, Inst, INST_BYTES};
use arl_mem::{Layout, Region};
use arl_sim::{
    ExecError, Machine, MemAccess, Metrics, ModelHints, SourceError, TraceEntry, TraceSource,
};

use crate::format::{decode_event, CompiledRecord, DeltaState, Trace, TraceWriter};

/// Captures a workload's full dynamic trace by executing it functionally
/// once (bounded by `max_insts`).
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture(program: &Program, max_insts: u64) -> Result<Trace, ExecError> {
    capture_with(program, max_insts, |_| {})
}

/// Like [`capture`], additionally passing every retired instruction to
/// `visitor` — so profilers can ride along on the single functional
/// execution instead of forcing a second one.
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    visitor: F,
) -> Result<Trace, ExecError> {
    capture_snapshotted_with(program, max_insts, 0, visitor)
}

/// Like [`capture`], additionally embedding a snapshot record every
/// `interval` retired instructions (0 disables snapshots), so the trace
/// can later be replayed in independent segments via
/// [`Replayer::open_span`].
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_snapshotted(
    program: &Program,
    max_insts: u64,
    interval: u64,
) -> Result<Trace, ExecError> {
    capture_snapshotted_with(program, max_insts, interval, |_| {})
}

/// [`capture_snapshotted`] with a ride-along visitor (see
/// [`capture_with`]).
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_snapshotted_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    interval: u64,
    visitor: F,
) -> Result<Trace, ExecError> {
    capture_full(program, max_insts, interval, false, visitor)
}

/// Like [`capture_snapshotted`], additionally *compiling* the trace: the
/// per-instruction model facts (steering hint, region class, FU latency,
/// operand indices, ARPT context) are precomputed once here and embedded
/// as a version-3 compiled section, so every subsequent replay of the
/// trace skips that recomputation entirely.
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_compiled(
    program: &Program,
    max_insts: u64,
    interval: u64,
) -> Result<Trace, ExecError> {
    capture_compiled_with(program, max_insts, interval, |_| {})
}

/// [`capture_compiled`] with a ride-along visitor (see [`capture_with`]).
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_compiled_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    interval: u64,
    visitor: F,
) -> Result<Trace, ExecError> {
    capture_full(program, max_insts, interval, true, visitor)
}

fn capture_full<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    interval: u64,
    compiled: bool,
    mut visitor: F,
) -> Result<Trace, ExecError> {
    let mut machine = Machine::new(program);
    let mut writer = TraceWriter::with_options(program.entry_pc(), interval, compiled);
    machine.run_with(max_insts, |e| {
        writer.record(e);
        visitor(e);
    })?;
    Ok(writer.finish(&machine.metrics()))
}

/// A [`TraceSource`] that reconstructs the full [`TraceEntry`] stream from
/// a captured [`Trace`] plus the program image — without re-executing
/// anything.
///
/// Reconstruction mirrors the functional executor's bookkeeping: the
/// instruction is looked up at the decoded pc, width/direction come from
/// the instruction, the region is re-classified from the address, and the
/// sampled contexts (`ghr`, `ra`) are rebuilt by replaying branch outcomes
/// and link-register writes in order. A replayed stream is therefore
/// bit-identical to the live one — the differential suite holds this to
/// `==` on every workload.
pub struct Replayer<'a> {
    program: &'a Program,
    layout: Layout,
    body: &'a [u8],
    pos: usize,
    state: DeltaState,
    remaining: u64,
    metrics: Metrics,
    ghr: u64,
    ra: u64,
    /// Compiled-model records (v3 traces), one per event.
    compiled: Option<&'a [u8]>,
    /// Byte cursor into the compiled section, advancing in lockstep with
    /// the event cursor.
    cpos: usize,
}

impl<'a> Replayer<'a> {
    /// Builds a replayer over `trace` for the program it was captured
    /// from.
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the trace's entry pc does not match
    /// the program's (the trace belongs to a different program).
    pub fn new(trace: &'a Trace, program: &'a Program) -> Result<Replayer<'a>, SourceError> {
        Replayer::open_span(trace, program, 0, trace.snapshot_count() + 1)
    }

    /// Builds a replayer over one contiguous *segment* of `trace`.
    ///
    /// A trace with `S` snapshots has `S + 1` segments separated by
    /// boundaries `0..=S+1`: boundary 0 is the start of the trace,
    /// boundary `b` in `1..=S` is snapshot `b - 1`, and boundary `S + 1`
    /// is the end. The replayer delivers exactly the entries in
    /// `[start, end)` boundaries, resuming mid-trace from the snapshot's
    /// checkpointed decode cursor, delta state, and replayed contexts —
    /// concatenating every segment's stream reproduces the full replay
    /// bit-identically (the shard differential suite holds this to `==`).
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the trace does not belong to
    /// `program`, the boundaries are out of range or inverted, or a
    /// snapshot record fails its O(1) validation.
    pub fn open_span(
        trace: &'a Trace,
        program: &'a Program,
        start: u64,
        end: u64,
    ) -> Result<Replayer<'a>, SourceError> {
        if trace.entry_pc() != program.entry_pc() {
            return Err(SourceError::Corrupt(format!(
                "trace entry pc {:#x} does not match program entry pc {:#x}",
                trace.entry_pc(),
                program.entry_pc()
            )));
        }
        // Every event costs at least one body byte; a count beyond that is
        // a forged footer, however plausible the checksum looks.
        let count = trace.event_count();
        if count > trace.body().len() as u64 {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {}-byte body",
                trace.body().len()
            )));
        }
        let boundaries = trace.snapshot_count() + 1;
        if start >= end || end > boundaries {
            return Err(SourceError::Corrupt(format!(
                "segment [{start}, {end}) invalid for {boundaries} boundaries"
            )));
        }
        let (pos, state, ghr, ra, start_idx) = if start == 0 {
            (0, DeltaState::new(trace.entry_pc()), 0, 0, 0)
        } else {
            let s = trace.snapshot(start - 1)?;
            (
                s.body_pos as usize,
                DeltaState {
                    prev_next_pc: s.prev_next_pc,
                    prev_addr: s.prev_addr,
                    prev_value: s.prev_value,
                },
                s.ghr,
                s.ra,
                s.inst_index,
            )
        };
        let end_idx = if end == boundaries {
            count
        } else {
            trace.snapshot(end - 1)?.inst_index
        };
        if start_idx > end_idx {
            return Err(SourceError::Corrupt(format!(
                "segment [{start}, {end}) spans inverted indices {start_idx}..{end_idx}"
            )));
        }
        Ok(Replayer {
            program,
            layout: *program.layout(),
            body: trace.body(),
            pos,
            state,
            remaining: end_idx - start_idx,
            metrics: trace.metrics(),
            ghr,
            ra,
            compiled: trace.compiled_section(),
            cpos: start_idx as usize * CompiledRecord::LEN,
        })
    }

    /// Whether this replayer attaches precomputed model hints (the trace
    /// embeds a compiled section).
    pub fn has_model(&self) -> bool {
        self.compiled.is_some()
    }

    /// Entries left to deliver.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl TraceSource for Replayer<'_> {
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, SourceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let event = decode_event(self.body, &mut self.pos, &mut self.state)
            .ok_or_else(|| SourceError::Corrupt("malformed event record".into()))?;
        let inst = *self.program.inst_at(event.pc).ok_or_else(|| {
            SourceError::Corrupt(format!("pc {:#x} is outside the text segment", event.pc))
        })?;
        // Decode the compiled-model record in lockstep (v3 traces). Each
        // record is structurally validated here and cross-checked against
        // the event it annotates, mirroring the flag/instruction checks
        // below.
        let compiled = match self.compiled {
            Some(section) => {
                let raw: &[u8; CompiledRecord::LEN] = section
                    .get(self.cpos..self.cpos + CompiledRecord::LEN)
                    .and_then(|s| s.try_into().ok())
                    .ok_or_else(|| {
                        SourceError::Corrupt("compiled section exhausted mid-replay".into())
                    })?;
                self.cpos += CompiledRecord::LEN;
                let rec = CompiledRecord::from_bytes(raw).ok_or_else(|| {
                    SourceError::Corrupt(format!("malformed compiled record at pc {:#x}", event.pc))
                })?;
                if (rec.steer == ModelHints::STEER_NONE) != event.mem_addr.is_none() {
                    return Err(SourceError::Corrupt(format!(
                        "compiled steering disagrees with the event at pc {:#x}",
                        event.pc
                    )));
                }
                Some(rec)
            }
            None => None,
        };
        // The flags must agree with the instruction the pc resolves to —
        // a mismatch means the trace was captured from a different build
        // of the program.
        let mem = match (inst.mem_op(), event.mem_addr) {
            (Some(info), Some(addr)) => {
                let region = match &compiled {
                    // The compiled tag *is* the classification — that is
                    // the point of compiling — and text is structurally
                    // unrepresentable in it, so the v1/v2 text-rejection
                    // below is subsumed. The tag itself sits under two
                    // checksums plus the record validation above.
                    Some(rec) => {
                        let region = match rec.region {
                            1 => Region::Data,
                            2 => Region::Heap,
                            3 => Region::Stack,
                            _ => {
                                return Err(SourceError::Corrupt(format!(
                                    "compiled region tag missing for access at pc {:#x}",
                                    event.pc
                                )))
                            }
                        };
                        debug_assert_eq!(
                            region,
                            self.layout.classify(addr),
                            "compiled region tag disagrees with the layout at pc {:#x}",
                            event.pc
                        );
                        region
                    }
                    None => {
                        let region = self.layout.classify(addr);
                        // Data accesses never target the text segment; a
                        // decoded address landing there means the trace
                        // body is corrupt. Reject here so downstream
                        // profilers see only well-formed entries instead
                        // of aborting a sweep mid-run.
                        if region == Region::Text {
                            return Err(SourceError::Corrupt(format!(
                                "data access at pc {:#x} decodes to text address {addr:#x}",
                                event.pc
                            )));
                        }
                        region
                    }
                };
                Some(MemAccess {
                    addr,
                    width: info.width,
                    is_load: info.is_load,
                    region,
                })
            }
            (None, None) => None,
            _ => {
                return Err(SourceError::Corrupt(format!(
                    "memory flag disagrees with instruction at pc {:#x}",
                    event.pc
                )))
            }
        };
        let gpr_write = match (inst.gpr_dest(), event.value) {
            (Some(rd), Some(v)) => Some((rd, v)),
            (None, None) => None,
            _ => {
                return Err(SourceError::Corrupt(format!(
                    "value flag disagrees with instruction at pc {:#x}",
                    event.pc
                )))
            }
        };
        if event.taken && !matches!(inst, Inst::Branch { .. }) {
            return Err(SourceError::Corrupt(format!(
                "taken flag on non-branch at pc {:#x}",
                event.pc
            )));
        }
        let model = match &compiled {
            Some(rec) => {
                debug_assert!(
                    rec.steer != ModelHints::STEER_DYNAMIC
                        || u64::from(rec.ctx)
                            == arl_core::Context::HYBRID_8_7.value(self.ghr, self.ra),
                    "compiled context value disagrees with the replayed contexts at pc {:#x}",
                    event.pc
                );
                ModelHints {
                    present: true,
                    steer: rec.steer,
                    fu: rec.fu,
                    latency: rec.latency,
                    srcs: rec.srcs,
                    data_src: rec.data_src,
                    fpr_dest: rec.fpr_dest,
                    // The full ARPT key: word-pc XOR context. The fold to
                    // a concrete table size stays with the consumer, so
                    // one compiled capture serves every ARPT capacity.
                    arpt_key: if rec.steer == ModelHints::STEER_DYNAMIC {
                        (event.pc / INST_BYTES) ^ u64::from(rec.ctx)
                    } else {
                        0
                    },
                }
            }
            None => ModelHints::NONE,
        };
        let entry = TraceEntry {
            pc: event.pc,
            inst,
            mem,
            taken: event.taken,
            next_pc: event.next_pc,
            gpr_write,
            ghr: self.ghr,
            ra: self.ra,
            model,
        };
        // Advance the replayed contexts exactly as the executor does.
        if matches!(inst, Inst::Branch { .. }) {
            self.ghr = (self.ghr << 1) | event.taken as u64;
        }
        if let Some((Gpr::RA, v)) = gpr_write {
            self.ra = v as u64;
        }
        self.remaining -= 1;
        Ok(Some(entry))
    }

    fn metrics(&self) -> Metrics {
        self.metrics
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::format::TraceEvent;
    use arl_workloads::workload;

    fn flag_bytes() -> (Trace, Program) {
        let spec = workload("go").expect("go workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let trace = capture(&program, 10_000).expect("capture");
        (trace, program)
    }

    #[test]
    fn replay_is_bit_identical_to_live_execution() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());

        let mut live = Vec::new();
        let mut machine = Machine::new(&program);
        machine.run_with(50_000, |e| live.push(*e)).expect("run");

        let trace = capture(&program, 50_000).expect("capture");
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        let mut replayed = Vec::new();
        while let Some(e) = replayer.next_entry().expect("replay") {
            replayed.push(e);
        }
        assert_eq!(replayed.len(), live.len());
        assert_eq!(replayed, live);
        assert_eq!(replayer.metrics(), machine.metrics());
        assert!(replayer.next_entry().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn replayer_rejects_wrong_program() {
        let (trace, _program) = flag_bytes();
        let other = workload("compress")
            .unwrap()
            .build(arl_workloads::Scale::tiny());
        // Either the entry pcs differ (rejected at construction) or some
        // decoded record disagrees with the other program's text.
        match Replayer::new(&trace, &other) {
            Err(_) => {}
            Ok(mut r) => {
                let mut err = None;
                loop {
                    match r.next_entry() {
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                assert!(err.is_some(), "foreign trace replayed cleanly");
            }
        }
    }

    #[test]
    fn segment_replay_concatenates_to_the_full_stream() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let trace = capture_snapshotted(&program, 50_000, 1_000).expect("capture");
        assert!(trace.snapshot_count() >= 2, "workload too short to shard");
        assert_eq!(trace.snapshot_interval(), 1_000);

        let mut full = Vec::new();
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        while let Some(e) = replayer.next_entry().expect("replay") {
            full.push(e);
        }

        let boundaries = trace.snapshot_count() + 1;
        let mut stitched = Vec::new();
        for b in 0..boundaries {
            let mut seg = Replayer::open_span(&trace, &program, b, b + 1).expect("segment");
            let mut n = 0u64;
            while let Some(e) = seg.next_entry().expect("segment replay") {
                stitched.push(e);
                n += 1;
            }
            if b + 1 < boundaries {
                assert_eq!(n, 1_000, "interior segment {b} has the interval length");
            }
        }
        assert_eq!(stitched, full);

        // Boundary misuse is rejected, not mis-replayed.
        assert!(Replayer::open_span(&trace, &program, 1, 1).is_err());
        assert!(Replayer::open_span(&trace, &program, 0, boundaries + 1).is_err());
    }

    #[test]
    fn capture_with_feeds_the_visitor_once_per_instruction() {
        let spec = workload("go").expect("go workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let mut seen = 0u64;
        let trace = capture_with(&program, 10_000, |_| seen += 1).expect("capture");
        assert_eq!(seen, trace.event_count());
        assert!(seen > 0);
    }

    #[test]
    fn compiled_replay_matches_uncompiled_and_attaches_hints() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let plain = capture(&program, 50_000).expect("capture");
        let compiled = capture_compiled(&program, 50_000, 0).expect("compiled capture");
        assert!(compiled.has_model());
        assert!(!plain.has_model());

        let mut a = Replayer::new(&plain, &program).expect("plain replayer");
        let mut b = Replayer::new(&compiled, &program).expect("compiled replayer");
        assert!(!a.has_model());
        assert!(b.has_model());
        let mut hinted_mem = 0u64;
        loop {
            let (x, y) = (
                a.next_entry().expect("plain"),
                b.next_entry().expect("compiled"),
            );
            match (x, y) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    // Equality ignores the model hints by design…
                    assert_eq!(x, y);
                    assert!(!x.model.present);
                    assert!(y.model.present);
                    // …and the hints must agree with live recomputation.
                    let (fu, latency) = arl_core::classify_fu(&y.inst);
                    assert_eq!(y.model.fu, fu.tag());
                    assert_eq!(u64::from(y.model.latency), latency);
                    let (srcs, data_src) = arl_core::model_srcs(&y.inst);
                    assert_eq!(y.model.srcs, srcs);
                    assert_eq!(y.model.data_src, data_src);
                    assert_eq!(y.model.fpr_dest, arl_core::fpr_dest_index(&y.inst));
                    match y.inst.mem_op() {
                        Some(info) => {
                            hinted_mem += 1;
                            let hint = arl_core::static_hint(&info);
                            let expect = match hint {
                                arl_core::StaticHint::Stack => ModelHints::STEER_STACK,
                                arl_core::StaticHint::NonStack => ModelHints::STEER_NONSTACK,
                                arl_core::StaticHint::Dynamic => ModelHints::STEER_DYNAMIC,
                            };
                            assert_eq!(y.model.steer, expect);
                            if hint == arl_core::StaticHint::Dynamic {
                                let ctx = arl_core::Context::HYBRID_8_7.value(y.ghr, y.ra);
                                assert_eq!(y.model.arpt_key, (y.pc / 8) ^ ctx);
                            } else {
                                assert_eq!(y.model.arpt_key, 0);
                            }
                        }
                        None => assert_eq!(y.model.steer, ModelHints::STEER_NONE),
                    }
                }
                _ => panic!("stream lengths diverge"),
            }
        }
        assert!(hinted_mem > 0, "workload exercised memory instructions");
    }

    #[test]
    fn compiled_segment_replay_stitches_with_aligned_hint_cursor() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let trace = capture_compiled(&program, 50_000, 1_000).expect("capture");
        assert!(trace.snapshot_count() >= 2, "workload too short to shard");

        let mut full = Vec::new();
        let mut full_hints = Vec::new();
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        while let Some(e) = replayer.next_entry().expect("replay") {
            full_hints.push(e.model);
            full.push(e);
        }

        let boundaries = trace.snapshot_count() + 1;
        let mut stitched = Vec::new();
        let mut stitched_hints = Vec::new();
        for b in 0..boundaries {
            let mut seg = Replayer::open_span(&trace, &program, b, b + 1).expect("segment");
            while let Some(e) = seg.next_entry().expect("segment replay") {
                stitched_hints.push(e.model);
                stitched.push(e);
            }
        }
        assert_eq!(stitched, full);
        assert_eq!(stitched_hints, full_hints, "hint cursor seeks per segment");
        assert!(full_hints.iter().all(|h| h.present));
    }

    #[test]
    fn tampered_flag_byte_is_caught_even_with_a_fixed_checksum() {
        // Forge a structurally valid trace whose flags disagree with the
        // program text: the replayer's cross-checks must catch it.
        let (_trace, program) = flag_bytes();
        let entry_pc = program.entry_pc();
        let bogus = TraceEvent {
            pc: entry_pc,
            next_pc: entry_pc + 8,
            taken: true,
            mem_addr: Some(0x1234),
            value: Some(1),
        };
        let forged = Trace::from_events(entry_pc, &[bogus], &Metrics::default());
        let mut r = Replayer::new(&forged, &program).expect("entry pc matches");
        // No instruction is simultaneously a taken branch, a memory
        // access, and a GPR writer, so a cross-check must fire whatever
        // `_start` begins with.
        assert!(r.next_entry().is_err());
    }
}
