//! Trace capture and the replaying [`TraceSource`].

use arl_asm::Program;
use arl_isa::{Gpr, Inst};
use arl_mem::Layout;
use arl_sim::{ExecError, Machine, MemAccess, Metrics, SourceError, TraceEntry, TraceSource};

use crate::format::{decode_event, DeltaState, Trace, TraceWriter};

/// Captures a workload's full dynamic trace by executing it functionally
/// once (bounded by `max_insts`).
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture(program: &Program, max_insts: u64) -> Result<Trace, ExecError> {
    capture_with(program, max_insts, |_| {})
}

/// Like [`capture`], additionally passing every retired instruction to
/// `visitor` — so profilers can ride along on the single functional
/// execution instead of forcing a second one.
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    visitor: F,
) -> Result<Trace, ExecError> {
    capture_snapshotted_with(program, max_insts, 0, visitor)
}

/// Like [`capture`], additionally embedding a snapshot record every
/// `interval` retired instructions (0 disables snapshots), so the trace
/// can later be replayed in independent segments via
/// [`Replayer::open_span`].
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_snapshotted(
    program: &Program,
    max_insts: u64,
    interval: u64,
) -> Result<Trace, ExecError> {
    capture_snapshotted_with(program, max_insts, interval, |_| {})
}

/// [`capture_snapshotted`] with a ride-along visitor (see
/// [`capture_with`]).
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_snapshotted_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    interval: u64,
    mut visitor: F,
) -> Result<Trace, ExecError> {
    let mut machine = Machine::new(program);
    let mut writer = TraceWriter::with_snapshots(program.entry_pc(), interval);
    machine.run_with(max_insts, |e| {
        writer.record(e);
        visitor(e);
    })?;
    Ok(writer.finish(&machine.metrics()))
}

/// A [`TraceSource`] that reconstructs the full [`TraceEntry`] stream from
/// a captured [`Trace`] plus the program image — without re-executing
/// anything.
///
/// Reconstruction mirrors the functional executor's bookkeeping: the
/// instruction is looked up at the decoded pc, width/direction come from
/// the instruction, the region is re-classified from the address, and the
/// sampled contexts (`ghr`, `ra`) are rebuilt by replaying branch outcomes
/// and link-register writes in order. A replayed stream is therefore
/// bit-identical to the live one — the differential suite holds this to
/// `==` on every workload.
pub struct Replayer<'a> {
    program: &'a Program,
    layout: Layout,
    body: &'a [u8],
    pos: usize,
    state: DeltaState,
    remaining: u64,
    metrics: Metrics,
    ghr: u64,
    ra: u64,
}

impl<'a> Replayer<'a> {
    /// Builds a replayer over `trace` for the program it was captured
    /// from.
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the trace's entry pc does not match
    /// the program's (the trace belongs to a different program).
    pub fn new(trace: &'a Trace, program: &'a Program) -> Result<Replayer<'a>, SourceError> {
        Replayer::open_span(trace, program, 0, trace.snapshot_count() + 1)
    }

    /// Builds a replayer over one contiguous *segment* of `trace`.
    ///
    /// A trace with `S` snapshots has `S + 1` segments separated by
    /// boundaries `0..=S+1`: boundary 0 is the start of the trace,
    /// boundary `b` in `1..=S` is snapshot `b - 1`, and boundary `S + 1`
    /// is the end. The replayer delivers exactly the entries in
    /// `[start, end)` boundaries, resuming mid-trace from the snapshot's
    /// checkpointed decode cursor, delta state, and replayed contexts —
    /// concatenating every segment's stream reproduces the full replay
    /// bit-identically (the shard differential suite holds this to `==`).
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the trace does not belong to
    /// `program`, the boundaries are out of range or inverted, or a
    /// snapshot record fails its O(1) validation.
    pub fn open_span(
        trace: &'a Trace,
        program: &'a Program,
        start: u64,
        end: u64,
    ) -> Result<Replayer<'a>, SourceError> {
        if trace.entry_pc() != program.entry_pc() {
            return Err(SourceError::Corrupt(format!(
                "trace entry pc {:#x} does not match program entry pc {:#x}",
                trace.entry_pc(),
                program.entry_pc()
            )));
        }
        // Every event costs at least one body byte; a count beyond that is
        // a forged footer, however plausible the checksum looks.
        let count = trace.event_count();
        if count > trace.body().len() as u64 {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {}-byte body",
                trace.body().len()
            )));
        }
        let boundaries = trace.snapshot_count() + 1;
        if start >= end || end > boundaries {
            return Err(SourceError::Corrupt(format!(
                "segment [{start}, {end}) invalid for {boundaries} boundaries"
            )));
        }
        let (pos, state, ghr, ra, start_idx) = if start == 0 {
            (0, DeltaState::new(trace.entry_pc()), 0, 0, 0)
        } else {
            let s = trace.snapshot(start - 1)?;
            (
                s.body_pos as usize,
                DeltaState {
                    prev_next_pc: s.prev_next_pc,
                    prev_addr: s.prev_addr,
                    prev_value: s.prev_value,
                },
                s.ghr,
                s.ra,
                s.inst_index,
            )
        };
        let end_idx = if end == boundaries {
            count
        } else {
            trace.snapshot(end - 1)?.inst_index
        };
        if start_idx > end_idx {
            return Err(SourceError::Corrupt(format!(
                "segment [{start}, {end}) spans inverted indices {start_idx}..{end_idx}"
            )));
        }
        Ok(Replayer {
            program,
            layout: *program.layout(),
            body: trace.body(),
            pos,
            state,
            remaining: end_idx - start_idx,
            metrics: trace.metrics(),
            ghr,
            ra,
        })
    }

    /// Entries left to deliver.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl TraceSource for Replayer<'_> {
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, SourceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let event = decode_event(self.body, &mut self.pos, &mut self.state)
            .ok_or_else(|| SourceError::Corrupt("malformed event record".into()))?;
        let inst = *self.program.inst_at(event.pc).ok_or_else(|| {
            SourceError::Corrupt(format!("pc {:#x} is outside the text segment", event.pc))
        })?;
        // The flags must agree with the instruction the pc resolves to —
        // a mismatch means the trace was captured from a different build
        // of the program.
        let mem = match (inst.mem_op(), event.mem_addr) {
            (Some(info), Some(addr)) => {
                let region = self.layout.classify(addr);
                // Data accesses never target the text segment; a decoded
                // address landing there means the trace body is corrupt.
                // Reject here so downstream profilers see only well-formed
                // entries instead of aborting a sweep mid-run.
                if region == arl_mem::Region::Text {
                    return Err(SourceError::Corrupt(format!(
                        "data access at pc {:#x} decodes to text address {addr:#x}",
                        event.pc
                    )));
                }
                Some(MemAccess {
                    addr,
                    width: info.width,
                    is_load: info.is_load,
                    region,
                })
            }
            (None, None) => None,
            _ => {
                return Err(SourceError::Corrupt(format!(
                    "memory flag disagrees with instruction at pc {:#x}",
                    event.pc
                )))
            }
        };
        let gpr_write = match (inst.gpr_dest(), event.value) {
            (Some(rd), Some(v)) => Some((rd, v)),
            (None, None) => None,
            _ => {
                return Err(SourceError::Corrupt(format!(
                    "value flag disagrees with instruction at pc {:#x}",
                    event.pc
                )))
            }
        };
        if event.taken && !matches!(inst, Inst::Branch { .. }) {
            return Err(SourceError::Corrupt(format!(
                "taken flag on non-branch at pc {:#x}",
                event.pc
            )));
        }
        let entry = TraceEntry {
            pc: event.pc,
            inst,
            mem,
            taken: event.taken,
            next_pc: event.next_pc,
            gpr_write,
            ghr: self.ghr,
            ra: self.ra,
        };
        // Advance the replayed contexts exactly as the executor does.
        if matches!(inst, Inst::Branch { .. }) {
            self.ghr = (self.ghr << 1) | event.taken as u64;
        }
        if let Some((Gpr::RA, v)) = gpr_write {
            self.ra = v as u64;
        }
        self.remaining -= 1;
        Ok(Some(entry))
    }

    fn metrics(&self) -> Metrics {
        self.metrics
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::format::TraceEvent;
    use arl_workloads::workload;

    fn flag_bytes() -> (Trace, Program) {
        let spec = workload("go").expect("go workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let trace = capture(&program, 10_000).expect("capture");
        (trace, program)
    }

    #[test]
    fn replay_is_bit_identical_to_live_execution() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());

        let mut live = Vec::new();
        let mut machine = Machine::new(&program);
        machine.run_with(50_000, |e| live.push(*e)).expect("run");

        let trace = capture(&program, 50_000).expect("capture");
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        let mut replayed = Vec::new();
        while let Some(e) = replayer.next_entry().expect("replay") {
            replayed.push(e);
        }
        assert_eq!(replayed.len(), live.len());
        assert_eq!(replayed, live);
        assert_eq!(replayer.metrics(), machine.metrics());
        assert!(replayer.next_entry().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn replayer_rejects_wrong_program() {
        let (trace, _program) = flag_bytes();
        let other = workload("compress")
            .unwrap()
            .build(arl_workloads::Scale::tiny());
        // Either the entry pcs differ (rejected at construction) or some
        // decoded record disagrees with the other program's text.
        match Replayer::new(&trace, &other) {
            Err(_) => {}
            Ok(mut r) => {
                let mut err = None;
                loop {
                    match r.next_entry() {
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                assert!(err.is_some(), "foreign trace replayed cleanly");
            }
        }
    }

    #[test]
    fn segment_replay_concatenates_to_the_full_stream() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let trace = capture_snapshotted(&program, 50_000, 1_000).expect("capture");
        assert!(trace.snapshot_count() >= 2, "workload too short to shard");
        assert_eq!(trace.snapshot_interval(), 1_000);

        let mut full = Vec::new();
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        while let Some(e) = replayer.next_entry().expect("replay") {
            full.push(e);
        }

        let boundaries = trace.snapshot_count() + 1;
        let mut stitched = Vec::new();
        for b in 0..boundaries {
            let mut seg = Replayer::open_span(&trace, &program, b, b + 1).expect("segment");
            let mut n = 0u64;
            while let Some(e) = seg.next_entry().expect("segment replay") {
                stitched.push(e);
                n += 1;
            }
            if b + 1 < boundaries {
                assert_eq!(n, 1_000, "interior segment {b} has the interval length");
            }
        }
        assert_eq!(stitched, full);

        // Boundary misuse is rejected, not mis-replayed.
        assert!(Replayer::open_span(&trace, &program, 1, 1).is_err());
        assert!(Replayer::open_span(&trace, &program, 0, boundaries + 1).is_err());
    }

    #[test]
    fn capture_with_feeds_the_visitor_once_per_instruction() {
        let spec = workload("go").expect("go workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let mut seen = 0u64;
        let trace = capture_with(&program, 10_000, |_| seen += 1).expect("capture");
        assert_eq!(seen, trace.event_count());
        assert!(seen > 0);
    }

    #[test]
    fn tampered_flag_byte_is_caught_even_with_a_fixed_checksum() {
        // Forge a structurally valid trace whose flags disagree with the
        // program text: the replayer's cross-checks must catch it.
        let (_trace, program) = flag_bytes();
        let entry_pc = program.entry_pc();
        let bogus = TraceEvent {
            pc: entry_pc,
            next_pc: entry_pc + 8,
            taken: true,
            mem_addr: Some(0x1234),
            value: Some(1),
        };
        let forged = Trace::from_events(entry_pc, &[bogus], &Metrics::default());
        let mut r = Replayer::new(&forged, &program).expect("entry pc matches");
        // No instruction is simultaneously a taken branch, a memory
        // access, and a GPR writer, so a cross-check must fire whatever
        // `_start` begins with.
        assert!(r.next_entry().is_err());
    }
}
