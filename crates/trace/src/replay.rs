//! Trace capture and the replaying [`TraceSource`].

use arl_asm::Program;
use arl_isa::{Gpr, Inst};
use arl_mem::Layout;
use arl_sim::{ExecError, Machine, MemAccess, Metrics, SourceError, TraceEntry, TraceSource};

use crate::format::{decode_event, DeltaState, Trace, TraceWriter};

/// Captures a workload's full dynamic trace by executing it functionally
/// once (bounded by `max_insts`).
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture(program: &Program, max_insts: u64) -> Result<Trace, ExecError> {
    capture_with(program, max_insts, |_| {})
}

/// Like [`capture`], additionally passing every retired instruction to
/// `visitor` — so profilers can ride along on the single functional
/// execution instead of forcing a second one.
///
/// # Errors
///
/// Propagates the first [`ExecError`] from execution.
pub fn capture_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    max_insts: u64,
    mut visitor: F,
) -> Result<Trace, ExecError> {
    let mut machine = Machine::new(program);
    let mut writer = TraceWriter::new(program.entry_pc());
    machine.run_with(max_insts, |e| {
        writer.record(e);
        visitor(e);
    })?;
    Ok(writer.finish(&machine.metrics()))
}

/// A [`TraceSource`] that reconstructs the full [`TraceEntry`] stream from
/// a captured [`Trace`] plus the program image — without re-executing
/// anything.
///
/// Reconstruction mirrors the functional executor's bookkeeping: the
/// instruction is looked up at the decoded pc, width/direction come from
/// the instruction, the region is re-classified from the address, and the
/// sampled contexts (`ghr`, `ra`) are rebuilt by replaying branch outcomes
/// and link-register writes in order. A replayed stream is therefore
/// bit-identical to the live one — the differential suite holds this to
/// `==` on every workload.
pub struct Replayer<'a> {
    program: &'a Program,
    layout: Layout,
    body: &'a [u8],
    pos: usize,
    state: DeltaState,
    remaining: u64,
    metrics: Metrics,
    ghr: u64,
    ra: u64,
}

impl<'a> Replayer<'a> {
    /// Builds a replayer over `trace` for the program it was captured
    /// from.
    ///
    /// # Errors
    ///
    /// [`SourceError::Corrupt`] when the trace's entry pc does not match
    /// the program's (the trace belongs to a different program).
    pub fn new(trace: &'a Trace, program: &'a Program) -> Result<Replayer<'a>, SourceError> {
        if trace.entry_pc() != program.entry_pc() {
            return Err(SourceError::Corrupt(format!(
                "trace entry pc {:#x} does not match program entry pc {:#x}",
                trace.entry_pc(),
                program.entry_pc()
            )));
        }
        // Every event costs at least one body byte; a count beyond that is
        // a forged footer, however plausible the checksum looks.
        let count = trace.event_count();
        if count > trace.body().len() as u64 {
            return Err(SourceError::Corrupt(format!(
                "event count {count} exceeds the {}-byte body",
                trace.body().len()
            )));
        }
        Ok(Replayer {
            program,
            layout: *program.layout(),
            body: trace.body(),
            pos: 0,
            state: DeltaState::new(trace.entry_pc()),
            remaining: trace.event_count(),
            metrics: trace.metrics(),
            ghr: 0,
            ra: 0,
        })
    }

    /// Entries left to deliver.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl TraceSource for Replayer<'_> {
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, SourceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let event = decode_event(self.body, &mut self.pos, &mut self.state)
            .ok_or_else(|| SourceError::Corrupt("malformed event record".into()))?;
        let inst = *self.program.inst_at(event.pc).ok_or_else(|| {
            SourceError::Corrupt(format!("pc {:#x} is outside the text segment", event.pc))
        })?;
        // The flags must agree with the instruction the pc resolves to —
        // a mismatch means the trace was captured from a different build
        // of the program.
        let mem = match (inst.mem_op(), event.mem_addr) {
            (Some(info), Some(addr)) => {
                let region = self.layout.classify(addr);
                // Data accesses never target the text segment; a decoded
                // address landing there means the trace body is corrupt.
                // Reject here so downstream profilers see only well-formed
                // entries instead of aborting a sweep mid-run.
                if region == arl_mem::Region::Text {
                    return Err(SourceError::Corrupt(format!(
                        "data access at pc {:#x} decodes to text address {addr:#x}",
                        event.pc
                    )));
                }
                Some(MemAccess {
                    addr,
                    width: info.width,
                    is_load: info.is_load,
                    region,
                })
            }
            (None, None) => None,
            _ => {
                return Err(SourceError::Corrupt(format!(
                    "memory flag disagrees with instruction at pc {:#x}",
                    event.pc
                )))
            }
        };
        let gpr_write = match (inst.gpr_dest(), event.value) {
            (Some(rd), Some(v)) => Some((rd, v)),
            (None, None) => None,
            _ => {
                return Err(SourceError::Corrupt(format!(
                    "value flag disagrees with instruction at pc {:#x}",
                    event.pc
                )))
            }
        };
        if event.taken && !matches!(inst, Inst::Branch { .. }) {
            return Err(SourceError::Corrupt(format!(
                "taken flag on non-branch at pc {:#x}",
                event.pc
            )));
        }
        let entry = TraceEntry {
            pc: event.pc,
            inst,
            mem,
            taken: event.taken,
            next_pc: event.next_pc,
            gpr_write,
            ghr: self.ghr,
            ra: self.ra,
        };
        // Advance the replayed contexts exactly as the executor does.
        if matches!(inst, Inst::Branch { .. }) {
            self.ghr = (self.ghr << 1) | event.taken as u64;
        }
        if let Some((Gpr::RA, v)) = gpr_write {
            self.ra = v as u64;
        }
        self.remaining -= 1;
        Ok(Some(entry))
    }

    fn metrics(&self) -> Metrics {
        self.metrics
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::format::TraceEvent;
    use arl_workloads::workload;

    fn flag_bytes() -> (Trace, Program) {
        let spec = workload("go").expect("go workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let trace = capture(&program, 10_000).expect("capture");
        (trace, program)
    }

    #[test]
    fn replay_is_bit_identical_to_live_execution() {
        let spec = workload("compress").expect("compress workload");
        let program = spec.build(arl_workloads::Scale::tiny());

        let mut live = Vec::new();
        let mut machine = Machine::new(&program);
        machine.run_with(50_000, |e| live.push(*e)).expect("run");

        let trace = capture(&program, 50_000).expect("capture");
        let mut replayer = Replayer::new(&trace, &program).expect("replayer");
        let mut replayed = Vec::new();
        while let Some(e) = replayer.next_entry().expect("replay") {
            replayed.push(e);
        }
        assert_eq!(replayed.len(), live.len());
        assert_eq!(replayed, live);
        assert_eq!(replayer.metrics(), machine.metrics());
        assert!(replayer.next_entry().unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn replayer_rejects_wrong_program() {
        let (trace, _program) = flag_bytes();
        let other = workload("compress")
            .unwrap()
            .build(arl_workloads::Scale::tiny());
        // Either the entry pcs differ (rejected at construction) or some
        // decoded record disagrees with the other program's text.
        match Replayer::new(&trace, &other) {
            Err(_) => {}
            Ok(mut r) => {
                let mut err = None;
                loop {
                    match r.next_entry() {
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                assert!(err.is_some(), "foreign trace replayed cleanly");
            }
        }
    }

    #[test]
    fn capture_with_feeds_the_visitor_once_per_instruction() {
        let spec = workload("go").expect("go workload");
        let program = spec.build(arl_workloads::Scale::tiny());
        let mut seen = 0u64;
        let trace = capture_with(&program, 10_000, |_| seen += 1).expect("capture");
        assert_eq!(seen, trace.event_count());
        assert!(seen > 0);
    }

    #[test]
    fn tampered_flag_byte_is_caught_even_with_a_fixed_checksum() {
        // Forge a structurally valid trace whose flags disagree with the
        // program text: the replayer's cross-checks must catch it.
        let (_trace, program) = flag_bytes();
        let entry_pc = program.entry_pc();
        let bogus = TraceEvent {
            pc: entry_pc,
            next_pc: entry_pc + 8,
            taken: true,
            mem_addr: Some(0x1234),
            value: Some(1),
        };
        let forged = Trace::from_events(entry_pc, &[bogus], &Metrics::default());
        let mut r = Replayer::new(&forged, &program).expect("entry pc matches");
        // No instruction is simultaneously a taken branch, a memory
        // access, and a GPR writer, so a cross-check must fire whatever
        // `_start` begins with.
        assert!(r.next_entry().is_err());
    }
}
