//! # arl-trace — execute-once / replay-many trace pipeline
//!
//! The paper's experiments sweep many configurations over the *same*
//! dynamic instruction stream: Figures 4/5 and Table 3 evaluate predictor
//! variants on one reference trace per workload, and Figure 8 runs each
//! workload through seven timing configurations. Re-executing the
//! functional simulation for every (workload × config) cell wastes almost
//! all of that wall-clock. This crate captures the stream once into a
//! compact binary trace and replays it as many times as needed:
//!
//! * [`capture`] / [`capture_with`] execute a program functionally once
//!   (optionally feeding profilers along the way) and return a [`Trace`];
//! * [`Trace`] is the validated `.arltrace` container — delta+varint
//!   encoded events framed by a header and an FNV-1a-checksummed footer
//!   (see [`format`](self) docs for the byte layout);
//! * [`Replayer`] implements `arl-sim`'s `TraceSource`, reconstructing a
//!   bit-identical `TraceEntry` stream from the trace plus the program
//!   image — predictors (`arl-core`) and the cycle-level pipeline
//!   (`arl-timing`) consume it exactly as they consume a live `Machine`.
//!
//! ```
//! use arl_sim::TraceSource;
//! use arl_workloads::{workload, Scale};
//!
//! let spec = workload("go").unwrap();
//! let program = spec.build(Scale::tiny());
//!
//! // Execute once...
//! let trace = arl_trace::capture(&program, 1_000_000)?;
//!
//! // ...replay many times, bit-identically, at a fraction of the cost.
//! let mut replayer = arl_trace::Replayer::new(&trace, &program)?;
//! let mut mem_refs = 0u64;
//! while let Some(entry) = replayer.next_entry()? {
//!     mem_refs += entry.is_mem() as u64;
//! }
//! assert_eq!(trace.metrics().instructions, trace.event_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod codec;
mod format;
mod replay;

pub use codec::fnv1a64;
pub use format::{
    CompiledRecord, SnapshotRecord, Trace, TraceEvent, TraceWriter, MAGIC, VERSION, VERSION_V1,
    VERSION_V3,
};
pub use replay::{
    capture, capture_compiled, capture_compiled_with, capture_snapshotted,
    capture_snapshotted_with, capture_with, Replayer,
};
