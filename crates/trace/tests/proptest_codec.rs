//! Property tests for the delta+varint trace codec: encode→decode
//! round-trips on arbitrary event sequences, checksum rejection of
//! single-byte corruption anywhere in the container, and early rejection
//! of forged (checksum-re-sealed) footer fields.

#![cfg(feature = "proptest-tests")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use arl_mem::PAGE_SIZE;
use arl_sim::Metrics;
use arl_trace::{fnv1a64, Trace, TraceEvent};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary events, mixing full-width random fields (worst case for the
/// delta encoder) with clustered pcs/addresses (the common small-delta
/// case the format is optimized for).
fn events() -> impl Strategy<Value = Vec<TraceEvent>> {
    let pc = prop_oneof![any::<u64>(), (0x10_000u64..0x11_000).prop_map(|p| p & !7)];
    let next_pc = prop_oneof![any::<u64>(), (0x10_000u64..0x11_000).prop_map(|p| p & !7)];
    let mem_addr = prop_oneof![
        Just(None),
        any::<u64>().prop_map(Some),
        (0x7000_0000u64..0x7000_2000).prop_map(Some),
    ];
    let value = prop_oneof![
        Just(None),
        any::<i64>().prop_map(Some),
        (-128i64..128).prop_map(Some),
    ];
    let event = (pc, next_pc, any::<bool>(), mem_addr, value).prop_map(
        |(pc, next_pc, taken, mem_addr, value)| TraceEvent {
            pc,
            next_pc,
            taken,
            mem_addr,
            value,
        },
    );
    vec(event, 0..64)
}

fn metrics() -> impl Strategy<Value = Metrics> {
    (0usize..1 << 20, 0usize..1 << 20, any::<bool>()).prop_map(
        |(resident_pages, output_values, exited)| Metrics {
            // The encoder ignores this field: `instructions` is rebuilt
            // from the footer's event count at decode time.
            instructions: 0,
            resident_pages,
            peak_rss_bytes: resident_pages as u64 * PAGE_SIZE,
            output_values,
            exited,
        },
    )
}

proptest! {
    #[test]
    fn round_trip_preserves_events(
        entry_pc in any::<u64>(),
        evs in events(),
        m in metrics(),
    ) {
        let trace = Trace::from_events(entry_pc, &evs, &m);
        prop_assert_eq!(trace.entry_pc(), entry_pc);
        prop_assert_eq!(trace.event_count(), evs.len() as u64);
        prop_assert_eq!(trace.events().expect("decode"), evs);

        let expect_metrics = Metrics { instructions: evs.len() as u64, ..m };
        prop_assert_eq!(trace.metrics(), expect_metrics);

        // Serialization is stable: re-adopting the bytes validates and
        // yields the identical trace.
        let reparsed = Trace::from_bytes(trace.as_bytes().to_vec()).expect("validate");
        prop_assert_eq!(reparsed, trace);
    }

    #[test]
    fn single_byte_corruption_is_always_rejected(
        entry_pc in any::<u64>(),
        evs in events(),
        pick in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let trace = Trace::from_events(entry_pc, &evs, &Metrics::default());
        let mut bytes = trace.into_bytes();
        let at = (pick % bytes.len() as u64) as usize;
        bytes[at] ^= flip;
        prop_assert!(
            Trace::from_bytes(bytes).is_err(),
            "corrupting byte {} went undetected", at
        );
    }

    #[test]
    fn truncation_is_rejected(
        entry_pc in any::<u64>(),
        evs in events(),
        cut in 1usize..64,
    ) {
        let trace = Trace::from_events(entry_pc, &evs, &Metrics::default());
        let bytes = trace.into_bytes();
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(Trace::from_bytes(bytes[..keep].to_vec()).is_err());
    }

    /// An attacker (or bit rot plus coincidence) can rewrite a footer
    /// field *and* re-seal the container checksum. The checksum then
    /// validates, so only the structural footer invariants stand between
    /// a forged event count and a huge decode loop: every event costs at
    /// least one body byte, so adoption itself must refuse the forgery.
    #[test]
    fn forged_event_count_is_rejected_at_adoption(
        entry_pc in any::<u64>(),
        evs in events(),
        excess in 1u64..1 << 40,
    ) {
        let trace = Trace::from_events(entry_pc, &evs, &Metrics::default());
        let mut bytes = trace.into_bytes();
        // Container layout: 13-byte header, body, 25-byte footer (leading
        // with the u64 LE event count), 8-byte checksum.
        let body_len = bytes.len() - 13 - 33;
        let footer = bytes.len() - 33;
        let forged = body_len as u64 + excess;
        bytes[footer..footer + 8].copy_from_slice(&forged.to_le_bytes());
        let seal_at = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..seal_at]);
        bytes[seal_at..].copy_from_slice(&checksum.to_le_bytes());

        // The container checksum is consistent, yet adoption must still
        // refuse the container outright.
        prop_assert!(Trace::from_bytes(bytes).is_err());
    }

    /// Same re-sealing attack against the exited flag: a non-boolean
    /// value survives the checksum but not the structural check.
    #[test]
    fn forged_exited_flag_is_rejected_at_adoption(
        entry_pc in any::<u64>(),
        evs in events(),
        forged in 2u8..=255,
    ) {
        let trace = Trace::from_events(entry_pc, &evs, &Metrics::default());
        let mut bytes = trace.into_bytes();
        let exited_at = bytes.len() - 9;
        bytes[exited_at] = forged;
        let seal_at = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..seal_at]);
        bytes[seal_at..].copy_from_slice(&checksum.to_le_bytes());

        prop_assert!(Trace::from_bytes(bytes).is_err());
    }
}
