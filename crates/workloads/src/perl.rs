//! `perl` — analog of 134.perl.
//!
//! A string-hash interpreter core: keys are composed in stack buffers,
//! interned as heap strings, and chained into a global bucket table. The
//! hashing and comparison routines receive *pointer parameters* that
//! sometimes point into the stack (freshly composed keys) and sometimes
//! into the heap (interned strings) — reproducing 134.perl's notably high
//! multi-region instruction share alongside its S ≈ 6.3 > H ≈ 4.8 > D ≈ 2.1
//! per-32 profile.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{BranchCond, Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const BUCKETS: i64 = 128;
const OP_VARIANTS: usize = 16;
const HASH_VARIANTS: usize = 8;
const KEY_LEN: i64 = 8;
/// Heap entry: { next: ptr, hash: i64, value: i64, key: KEY_LEN bytes }.
const ENTRY_BYTES: i64 = 24 + KEY_LEN;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let g_buckets = pb.global_zeroed("buckets", BUCKETS as u64 * 8);
    let g_stats = pb.global_zeroed("stats", 16);
    // tr///-style transliteration table consulted while composing keys.
    let translit: Vec<i64> = (0..64).map(|i| (i * 7 % 64) + 0x20).collect();
    let g_translit = pb.global_words("translit", &translit);

    // hash_str_k(a0 = ptr, a1 = len) -> v0: byte loop through a pointer
    // parameter — the compiler cannot tell which region it dereferences,
    // and at run time each variant sees both stack and heap strings (perl's
    // sv/hv hashing helpers are exactly such a family).
    let hash_names: Vec<String> = (0..HASH_VARIANTS)
        .map(|k| format!("hash_str_{k}"))
        .collect();
    for (k, name) in hash_names.iter().enumerate() {
        let mut hash = FunctionBuilder::new(name);
        let f = &mut hash;
        f.set_leaf();
        f.li(Gpr::V0, 5381 + k as i64);
        f.li(Gpr::T0, 0);
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.br(BranchCond::Ge, Gpr::T0, Gpr::A1, done);
        f.add(Gpr::T1, Gpr::A0, Gpr::T0);
        f.load_ptr_b(Gpr::T2, Gpr::T1, 0, Provenance::FunctionParam);
        f.slli(Gpr::T3, Gpr::V0, 5);
        f.add(Gpr::V0, Gpr::V0, Gpr::T3);
        f.add(Gpr::V0, Gpr::V0, Gpr::T2);
        f.addi(Gpr::T0, Gpr::T0, 1);
        f.j(top);
        f.bind(done);
        f.li(Gpr::T4, 0x7fff_ffff);
        f.and(Gpr::V0, Gpr::V0, Gpr::T4);
        pb.add_function(hash);
    }

    // streq(a0 = p, a1 = q, a2 = len) -> v0: 0/1 — again pointer params
    // (heap chain entries vs. stack candidates).
    let mut streq = FunctionBuilder::new("streq");
    {
        let f = &mut streq;
        f.li(Gpr::T0, 0);
        let top = f.new_label();
        let differ = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.br(BranchCond::Ge, Gpr::T0, Gpr::A2, done);
        f.add(Gpr::T1, Gpr::A0, Gpr::T0);
        f.load_ptr_b(Gpr::T2, Gpr::T1, 0, Provenance::FunctionParam);
        f.add(Gpr::T3, Gpr::A1, Gpr::T0);
        f.load_ptr_b(Gpr::T4, Gpr::T3, 0, Provenance::FunctionParam);
        f.br(BranchCond::Ne, Gpr::T2, Gpr::T4, differ);
        f.addi(Gpr::T0, Gpr::T0, 1);
        f.j(top);
        f.bind(differ);
        f.li(Gpr::V0, 0);
        f.ret();
        f.bind(done);
        f.li(Gpr::V0, 1);
    }
    pb.add_function(streq);

    // intern(a0 = key ptr [stack buffer], a1 = hash) -> v0 = entry ptr.
    // Walks the bucket chain comparing keys; inserts a fresh heap entry on
    // miss, copying the key from the stack buffer into the heap.
    let mut intern = FunctionBuilder::new("intern");
    {
        let f = &mut intern;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        f.mov(Gpr::S0, Gpr::A0); // key ptr (caller's stack)
        f.mov(Gpr::S1, Gpr::A1); // hash
        let walk = f.new_label();
        let next = f.new_label();
        let miss = f.new_label();
        let found = f.new_label();
        let out = f.new_label();
        // bucket slot = &buckets[hash & (BUCKETS-1)]
        f.andi(Gpr::T0, Gpr::S1, (BUCKETS - 1) as i16);
        f.la_global(Gpr::T1, g_buckets);
        index_addr(f, Gpr::S2, Gpr::T1, Gpr::T0, 3, Gpr::T2);
        f.load_ptr(Gpr::S3, Gpr::S2, 0, Provenance::StaticVar); // head
        f.bind(walk);
        f.beqz(Gpr::S3, miss);
        f.load_ptr(Gpr::T0, Gpr::S3, 8, Provenance::HeapBlock); // stored hash
        f.br(BranchCond::Ne, Gpr::T0, Gpr::S1, next);
        f.addi(Gpr::A0, Gpr::S3, 24); // heap key
        f.mov(Gpr::A1, Gpr::S0); // stack key
        f.li(Gpr::A2, KEY_LEN);
        f.call("streq");
        f.bnez(Gpr::V0, found);
        f.bind(next);
        f.load_ptr(Gpr::S3, Gpr::S3, 0, Provenance::HeapBlock);
        f.j(walk);
        f.bind(miss);
        // Allocate and link a new entry at the bucket head.
        f.malloc_imm(ENTRY_BYTES);
        f.load_ptr(Gpr::T0, Gpr::S2, 0, Provenance::StaticVar); // old head
        f.store_ptr(Gpr::T0, Gpr::V0, 0, Provenance::HeapBlock); // next
        f.store_ptr(Gpr::S1, Gpr::V0, 8, Provenance::HeapBlock); // hash
        f.store_ptr(Gpr::ZERO, Gpr::V0, 16, Provenance::HeapBlock); // value
                                                                    // Copy key bytes stack → heap (unrolled, as memcpy would be).
        for i in 0..KEY_LEN {
            f.load_ptr_b(Gpr::T1, Gpr::S0, i as i16, Provenance::PointsToStack);
            f.store_ptr_b(Gpr::T1, Gpr::V0, (24 + i) as i16, Provenance::HeapBlock);
        }
        f.store_ptr(Gpr::V0, Gpr::S2, 0, Provenance::StaticVar); // new head
        f.j(out);
        f.bind(found);
        f.mov(Gpr::V0, Gpr::S3);
        f.bind(out);
        // Bump the entry's value (heap RMW).
        f.load_ptr(Gpr::T0, Gpr::V0, 16, Provenance::HeapBlock);
        f.addi(Gpr::T0, Gpr::T0, 1);
        f.store_ptr(Gpr::T0, Gpr::V0, 16, Provenance::HeapBlock);
    }
    pb.add_function(intern);

    // interp_op_k(a0 = op seed) -> v0: one interpreter opcode — composes a
    // key in a stack buffer (byte stores to the frame) with op-specific
    // transliteration constants, hashes it *from the stack*, interns it,
    // then re-hashes the interned *heap* copy as a consistency check — the
    // same static hash_str loads thereby touch stack and heap. Perl's
    // run-time dispatches over a large opcode family; so does this analog.
    let op_names: Vec<String> = (0..OP_VARIANTS).map(|k| format!("interp_op_{k}")).collect();
    for (k, name) in op_names.iter().enumerate() {
        let mut interp = FunctionBuilder::new(name);
        let f = &mut interp;
        f.save(&[Gpr::S0, Gpr::S1]);
        let key = f.local(KEY_LEN as u32);
        f.mov(Gpr::S0, Gpr::A0);
        // Compose the key bytes from the seed, transliterating each through
        // the global table (data load per byte).
        for i in 0..KEY_LEN {
            f.li(Gpr::T0, 31 * (i + 1) + k as i64 * 7);
            f.mul(Gpr::T0, Gpr::T0, Gpr::S0);
            f.srli(Gpr::T0, Gpr::T0, ((i + k as i64) % 4) as i16);
            f.andi(Gpr::T0, Gpr::T0, 0x3f);
            f.la_global(Gpr::T1, g_translit);
            index_addr(f, Gpr::T2, Gpr::T1, Gpr::T0, 3, Gpr::T3);
            f.load_ptr(Gpr::T0, Gpr::T2, 0, Provenance::StaticVar);
            f.raw(
                arl_isa::Inst::Store {
                    width: arl_isa::Width::Byte,
                    rs: Gpr::T0,
                    base: Gpr::FP,
                    offset: key.offset() + i as i16,
                },
                Provenance::LocalVar,
            );
        }
        // hash from the stack buffer (this op's hashing helper).
        let hash_fn = hash_names[k % HASH_VARIANTS].clone();
        f.addr_of_local(Gpr::A0, key, 0);
        f.li(Gpr::A1, KEY_LEN);
        f.call(&hash_fn);
        f.mov(Gpr::S1, Gpr::V0);
        f.addr_of_local(Gpr::A0, key, 0);
        f.mov(Gpr::A1, Gpr::S1);
        f.call("intern");
        // Every fourth op re-hashes the interned heap key with the same
        // helper: its static loads therefore touch stack *and* heap.
        let skip = f.new_label();
        let out = f.new_label();
        f.andi(Gpr::T0, Gpr::S0, 3);
        f.bnez(Gpr::T0, skip);
        f.addi(Gpr::A0, Gpr::V0, 24);
        f.li(Gpr::A1, KEY_LEN);
        f.call(&hash_fn);
        f.xor(Gpr::V0, Gpr::V0, Gpr::S1); // 0 when consistent
        f.j(out);
        f.bind(skip);
        f.li(Gpr::V0, 0);
        f.bind(out);
        pb.add_function(interp);
    }

    // main: drive the interpreter; record stats in the data region.
    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_builtins_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_builtins", 200, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2]);
        emit_cold_init(f, &cold);
        let iters = scale.apply(1_900);
        f.li(Gpr::S1, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S2, iters, |f| {
            // Seeds repeat (mod 499) so interning hits and misses mix.
            f.li(Gpr::T0, 499);
            f.rem(Gpr::A0, Gpr::S0, Gpr::T0);
            f.li(Gpr::T0, OP_VARIANTS as i64);
            f.rem(Gpr::T4, Gpr::S0, Gpr::T0);
            dispatch_call(f, Gpr::T4, Gpr::T5, &op_names);
            f.add(Gpr::S1, Gpr::S1, Gpr::V0);
            f.load_global(Gpr::T0, g_stats, 0);
            f.addi(Gpr::T0, Gpr::T0, 1);
            f.store_global(Gpr::T0, g_stats, 0);
        });
        f.store_global(Gpr::S1, g_stats, 8);
        f.andi(Gpr::A0, Gpr::S1, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("perl workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, RegionProfiler, SlidingWindowProfiler};

    #[test]
    fn perl_has_multi_region_instructions() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut rp = RegionProfiler::new();
        let mut w = SlidingWindowProfiler::new();
        let outcome = m
            .run_with(50_000_000, |e| {
                rp.observe(e);
                w.observe(e);
            })
            .expect("executes");
        assert!(outcome.exited);
        let b = rp.breakdown();
        assert!(
            b.dynamic_multi_region_fraction() > 0.01,
            "hash_str/streq must appear as multi-region references: {}",
            b.dynamic_multi_region_fraction()
        );
        let s = &w.stats()[0];
        assert!(s.mean(Region::Heap) > s.mean(Region::Data));
        assert!(s.mean(Region::Stack) > s.mean(Region::Data));
        // Hash consistency check: every interp_op returned 0.
        assert_eq!(m.output(), &[0]);
    }
}
