//! Shared code-generation idioms for the workload builders.

use arl_asm::{FunctionBuilder, Label};
use arl_isa::{BranchCond, Gpr};

/// Emits `addr = base + (idx << shift)` using `tmp` as scratch — the
/// computed-pointer array indexing a compiler generates, whose base register
/// reveals nothing to the static heuristics (rule 4).
pub(crate) fn index_addr(
    f: &mut FunctionBuilder,
    addr: Gpr,
    base: Gpr,
    idx: Gpr,
    shift: i16,
    tmp: Gpr,
) {
    f.slli(tmp, idx, shift);
    f.add(addr, base, tmp);
}

/// Emits `call variants[selector]` as a balanced compare-and-branch tree —
/// the code a compiler generates for a switch whose arms are direct calls.
/// `selector` must already lie in `0..variants.len()` and must be a
/// register that survives calls if reused afterwards.
pub(crate) fn dispatch_call(f: &mut FunctionBuilder, selector: Gpr, tmp: Gpr, variants: &[String]) {
    assert!(!variants.is_empty());
    let end = f.new_label();
    emit_dispatch_range(f, selector, tmp, variants, 0, variants.len(), end);
    f.bind(end);
}

fn emit_dispatch_range(
    f: &mut FunctionBuilder,
    selector: Gpr,
    tmp: Gpr,
    variants: &[String],
    lo: usize,
    hi: usize,
    end: Label,
) {
    if hi - lo == 1 {
        f.call(&variants[lo]);
        f.j(end);
        return;
    }
    let mid = (lo + hi) / 2;
    let right = f.new_label();
    f.li(tmp, mid as i64);
    f.br(BranchCond::Ge, selector, tmp, right);
    emit_dispatch_range(f, selector, tmp, variants, lo, mid, end);
    f.bind(right);
    emit_dispatch_range(f, selector, tmp, variants, mid, hi, end);
}

/// Adds a family of `count` *cold* framed functions — table initializers,
/// option parsers, error-path helpers — each executed once from `main`'s
/// startup. Real binaries owe most of their static memory-instruction
/// footprint (and their Figure 2 stack-only share) to such code. Each
/// function has a small frame it actually uses, plus one computed
/// data-region store into `scratch` (so cold rule-4 instructions appear in
/// the ARPT exactly once, as cold code does).
///
/// Returns the function names; call [`emit_cold_init`] in `main` to invoke
/// them.
pub(crate) fn add_cold_functions(
    pb: &mut arl_asm::ProgramBuilder,
    prefix: &str,
    count: usize,
    scratch: arl_asm::GlobalRef,
) -> Vec<String> {
    let names: Vec<String> = (0..count).map(|k| format!("{prefix}_{k}")).collect();
    for (k, name) in names.iter().enumerate() {
        let mut f = FunctionBuilder::new(name);
        let a = f.local(8);
        let b = f.local(8);
        f.li(Gpr::T0, k as i64 * 3 + 1);
        f.store_local(Gpr::T0, a, 0);
        f.slli(Gpr::T1, Gpr::T0, 2);
        f.store_local(Gpr::T1, b, 0);
        f.load_local(Gpr::T2, a, 0);
        f.load_local(Gpr::T3, b, 0);
        f.add(Gpr::T2, Gpr::T2, Gpr::T3);
        // One computed data-region store (rule-4, executed once).
        f.la_global(Gpr::T4, scratch);
        f.andi(Gpr::T5, Gpr::T2, (scratch.size() as i16 / 8 - 1).max(0));
        index_addr(&mut f, Gpr::T6, Gpr::T4, Gpr::T5, 3, Gpr::T7);
        f.store_ptr(Gpr::T2, Gpr::T6, 0, arl_asm::Provenance::StaticVar);
        if k % 8 == 0 {
            // Every eighth initializer is a generic pointer utility (the
            // memcpy/strlen flavour of cold code): one static load walks a
            // pointer that targets the data region on its first trip and
            // the frame on its second — a genuine multi-region
            // instruction, as Figure 2 finds scattered through real code.
            let top = f.new_label();
            let done = f.new_label();
            f.li(Gpr::T1, 0); // trip counter
            f.bind(top);
            f.load_ptr(Gpr::T3, Gpr::T4, 0, arl_asm::Provenance::Mixed);
            f.add(Gpr::T2, Gpr::T2, Gpr::T3);
            f.addi(Gpr::T1, Gpr::T1, 1);
            f.li(Gpr::T5, 2);
            f.br(BranchCond::Ge, Gpr::T1, Gpr::T5, done);
            f.addr_of_local(Gpr::T4, b, 0); // second trip reads the frame
            f.j(top);
            f.bind(done);
        }
        f.store_local(Gpr::T2, a, 0);
        f.load_local(Gpr::V0, a, 0);
        pb.add_function(f);
    }
    names
}

/// Calls each cold function once (startup initialization).
pub(crate) fn emit_cold_init(f: &mut FunctionBuilder, names: &[String]) {
    for name in names {
        f.call(name);
    }
}

/// Emits a counted loop: `for counter in 0..limit_reg { body }`.
/// The body must not clobber `counter` or `limit`.
pub(crate) fn counted_loop(
    f: &mut FunctionBuilder,
    counter: Gpr,
    limit: Gpr,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    f.li(counter, 0);
    let top = f.new_label();
    let done = f.new_label();
    f.bind(top);
    f.br(BranchCond::Ge, counter, limit, done);
    body(f);
    f.addi(counter, counter, 1);
    f.j(top);
    f.bind(done);
}

/// Emits a counted loop with an immediate trip count.
pub(crate) fn counted_loop_imm(
    f: &mut FunctionBuilder,
    counter: Gpr,
    limit: Gpr,
    trips: i64,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    f.li(limit, trips);
    counted_loop(f, counter, limit, body);
}
