//! `vortex` — analog of 147.vortex.
//!
//! An object-store kernel: fixed-size records live on the heap; every
//! transaction funnels through layers of small procedures that copy records
//! into stack buffers, validate them field by field, and write them back.
//! 147.vortex is the most stack-bound program in the paper's Table 2
//! (S ≈ 11.8 vs D ≈ 1.9, H ≈ 2.8 per 32) thanks to exactly this
//! copy-to-frame, call-dense style.
//!
//! Real vortex is an OO database with per-type methods; this analog gives
//! each of its 24 object types its own `validate_k`/`update_k` pair,
//! yielding a Table 3-scale static footprint.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{BranchCond, Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const POOL: i64 = 64; // records in the store
const FIELDS: i64 = 8; // 8 × 8-byte fields per record
const TYPES: usize = 24;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    // Directory of record pointers lives in the data region.
    let g_dir = pb.global_zeroed("directory", POOL as u64 * 8);
    let g_status = pb.global_zeroed("status", 8);
    // Per-field schema descriptors (validation masks), one row per type.
    let schema: Vec<i64> = (0..TYPES as i64 * FIELDS)
        .map(|i| 0x7fff >> (i % 5))
        .collect();
    let g_schema = pb.global_words("schema", &schema);

    // check_field(a0 = value, a1 = schema index) -> v0: a tiny routine with
    // a frame — pure stack churn, called per field — that consults the
    // schema descriptor (one data load).
    let mut check = FunctionBuilder::new("check_field");
    {
        let f = &mut check;
        let tmp = f.local(8);
        f.xor(Gpr::T0, Gpr::A0, Gpr::A1);
        f.store_local(Gpr::T0, tmp, 0);
        f.la_global(Gpr::T1, g_schema);
        index_addr(f, Gpr::T2, Gpr::T1, Gpr::A1, 3, Gpr::T3);
        f.load_ptr(Gpr::T4, Gpr::T2, 0, Provenance::StaticVar);
        f.load_local(Gpr::T1, tmp, 0);
        f.and(Gpr::V0, Gpr::T1, Gpr::T4);
    }
    pb.add_function(check);

    // validate_k(a0 = record ptr) -> v0 = checksum: the type-k method.
    // Copies the record into a stack buffer (the vortex idiom), then runs
    // check_field over the copy against type k's schema row.
    let validate_names: Vec<String> = (0..TYPES).map(|k| format!("validate_{k}")).collect();
    for (k, name) in validate_names.iter().enumerate() {
        let mut validate = FunctionBuilder::new(name);
        let f = &mut validate;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2]);
        let buf = f.local(FIELDS as u32 * 8);
        f.mov(Gpr::S0, Gpr::A0);
        // Copy heap record → stack buffer, in a type-specific field order.
        for i in 0..FIELDS {
            let field = (i + k as i64) % FIELDS;
            f.load_ptr(Gpr::T0, Gpr::S0, (field * 8) as i16, Provenance::HeapBlock);
            f.store_local(Gpr::T0, buf, (i * 8) as i16);
        }
        // Validate each field of the copy.
        f.li(Gpr::S1, 0); // checksum
        f.li(Gpr::S2, 0); // field index
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.li(Gpr::T0, FIELDS);
        f.br(BranchCond::Ge, Gpr::S2, Gpr::T0, done);
        f.slli(Gpr::T1, Gpr::S2, 3);
        f.addr_of_local(Gpr::T2, buf, 0);
        f.add(Gpr::T2, Gpr::T2, Gpr::T1);
        // This deref's pointer provably targets the frame.
        f.load_ptr(Gpr::A0, Gpr::T2, 0, Provenance::PointsToStack);
        // schema index = type row + field.
        f.addi(Gpr::A1, Gpr::S2, (k as i64 * FIELDS) as i16);
        f.call("check_field");
        f.add(Gpr::S1, Gpr::S1, Gpr::V0);
        f.addi(Gpr::S2, Gpr::S2, 1);
        f.j(top);
        f.bind(done);
        f.mov(Gpr::V0, Gpr::S1);
        pb.add_function(validate);
    }

    // update_k(a0 = record ptr, a1 = seed): the type-k mutator — stages new
    // values on the stack, then commits to the heap in type order.
    let update_names: Vec<String> = (0..TYPES).map(|k| format!("update_{k}")).collect();
    for (k, name) in update_names.iter().enumerate() {
        let mut update = FunctionBuilder::new(name);
        let f = &mut update;
        f.save(&[Gpr::S0, Gpr::S1]);
        let stage = f.local(FIELDS as u32 * 8);
        f.mov(Gpr::S0, Gpr::A0);
        f.mov(Gpr::S1, Gpr::A1);
        for i in 0..FIELDS {
            f.li(Gpr::T0, 0x1f3 * (i + 1) + k as i64);
            f.mul(Gpr::T0, Gpr::T0, Gpr::S1);
            f.andi(Gpr::T0, Gpr::T0, 0x3fff);
            f.store_local(Gpr::T0, stage, (i * 8) as i16);
        }
        for i in 0..FIELDS {
            let field = (i + k as i64) % FIELDS;
            f.load_local(Gpr::T0, stage, (i * 8) as i16);
            f.store_ptr(Gpr::T0, Gpr::S0, (field * 8) as i16, Provenance::HeapBlock);
        }
        pb.add_function(update);
    }

    // txn(a0 = record index, a1 = seed) -> v0: one transaction — directory
    // lookup (data), validate, update, validate again, all through the
    // record's type methods.
    let mut txn = FunctionBuilder::new("txn");
    {
        let f = &mut txn;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2]);
        f.mov(Gpr::S1, Gpr::A1);
        // type = index % TYPES
        f.li(Gpr::T0, TYPES as i64);
        f.rem(Gpr::S2, Gpr::A0, Gpr::T0);
        f.la_global(Gpr::T0, g_dir);
        index_addr(f, Gpr::T1, Gpr::T0, Gpr::A0, 3, Gpr::T2);
        f.load_ptr(Gpr::S0, Gpr::T1, 0, Provenance::StaticVar); // record ptr
        f.mov(Gpr::A0, Gpr::S0);
        dispatch_call(f, Gpr::S2, Gpr::T3, &validate_names);
        f.mov(Gpr::A1, Gpr::S1);
        f.mov(Gpr::A0, Gpr::S0);
        dispatch_call(f, Gpr::S2, Gpr::T3, &update_names);
        f.mov(Gpr::A0, Gpr::S0);
        dispatch_call(f, Gpr::S2, Gpr::T3, &validate_names);
    }
    pb.add_function(txn);

    // main: build the store, then run transactions.
    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_schema_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_schema", 700, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        emit_cold_init(f, &cold);
        // Populate the directory with heap records.
        counted_loop_imm(f, Gpr::S0, Gpr::S2, POOL, |f| {
            f.malloc_imm(FIELDS * 8);
            f.la_global(Gpr::T0, g_dir);
            index_addr(f, Gpr::T1, Gpr::T0, Gpr::S0, 3, Gpr::T2);
            f.store_ptr(Gpr::V0, Gpr::T1, 0, Provenance::StaticVar);
            for i in 0..FIELDS {
                f.addi(Gpr::T3, Gpr::S0, (i * 3) as i16);
                f.store_ptr(Gpr::T3, Gpr::V0, (i * 8) as i16, Provenance::HeapBlock);
            }
        });
        let txns = scale.apply(1_500);
        f.li(Gpr::S3, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S2, txns, |f| {
            f.li(Gpr::T0, 61);
            f.mul(Gpr::A0, Gpr::S0, Gpr::T0);
            f.andi(Gpr::A0, Gpr::A0, (POOL - 1) as i16);
            f.addi(Gpr::A1, Gpr::S0, 1);
            f.call("txn");
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
        });
        // Publish the checksum (data store) and print it.
        f.store_global(Gpr::S3, g_status, 0);
        f.andi(Gpr::A0, Gpr::S3, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("vortex workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn vortex_is_the_stack_heaviest() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(
            st > 2.0 * h && st > 2.0 * d,
            "stack must dwarf other regions: D={d} H={h} S={st}"
        );
        assert!(h > d, "records on the heap outweigh directory loads");
    }

    #[test]
    fn vortex_type_methods_give_a_large_footprint() {
        let p = build(Scale::tiny());
        let static_mem = p.static_mem_instructions().count();
        assert!(static_mem > 600, "24 type method pairs: {static_mem}");
    }
}
