//! `ijpeg` — analog of 132.ijpeg.
//!
//! An image-compression kernel: the image lives on the heap, 8×8 blocks
//! are copied into stack buffers, transformed in place with butterfly
//! passes, quantized against a global table, and written back. Distinct
//! copy / transform / writeback phases make the traffic to *every* region
//! strictly bursty, as the paper observes for 132.ijpeg (D 1.4, H 3.5,
//! S 4.1 per 32 — all bursty).

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const BLOCK: i64 = 64; // 8x8 samples, one i64 each
const BLOCKS_PER_IMAGE: i64 = 16;
const BLOCK_VARIANTS: usize = 16;
const ENCODE_VARIANTS: usize = 4;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let quant: Vec<i64> = (0..BLOCK).map(|i| 1 + (i % 8) + (i / 8)).collect();
    let g_quant = pb.global_words("quant", &quant);
    let g_image = pb.global_zeroed("image_ptr", 8);

    // process_block_k(a0 = block ptr in heap) -> v0 = block energy — one
    // variant per component/scan class, as libjpeg's coefficient
    // controllers specialize.
    let process_names: Vec<String> = (0..BLOCK_VARIANTS)
        .map(|k| format!("process_block_{k}"))
        .collect();
    for (k, name) in process_names.iter().enumerate() {
        let mut process = FunctionBuilder::new(name);
        let f = &mut process;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2]);
        let buf = f.local(BLOCK as u32 * 8);
        f.mov(Gpr::S0, Gpr::A0);
        // Phase 1: copy heap block → stack buffer, unrolled ×4 so the heap
        // loads cluster (heap burst).
        counted_loop_imm(f, Gpr::S1, Gpr::S2, BLOCK / 4, |f| {
            f.slli(Gpr::T0, Gpr::S1, 5); // byte offset of the 4-word group
            f.add(Gpr::T1, Gpr::S0, Gpr::T0);
            f.load_ptr(Gpr::T2, Gpr::T1, 0, Provenance::HeapBlock);
            f.load_ptr(Gpr::T3, Gpr::T1, 8, Provenance::HeapBlock);
            f.load_ptr(Gpr::T4, Gpr::T1, 16, Provenance::HeapBlock);
            f.load_ptr(Gpr::T5, Gpr::T1, 24, Provenance::HeapBlock);
            f.addr_of_local(Gpr::T6, buf, 0);
            f.add(Gpr::T6, Gpr::T6, Gpr::T0);
            f.store_ptr(Gpr::T2, Gpr::T6, 0, Provenance::PointsToStack);
            f.store_ptr(Gpr::T3, Gpr::T6, 8, Provenance::PointsToStack);
            f.store_ptr(Gpr::T4, Gpr::T6, 16, Provenance::PointsToStack);
            f.store_ptr(Gpr::T5, Gpr::T6, 24, Provenance::PointsToStack);
        });
        // Phase 2: butterfly transform over the stack copy (stack burst).
        // Two passes with variant-specific pairing distances.
        let strides = if k % 2 == 0 { [32i64, 8] } else { [16i64, 4] };
        for stride in strides {
            counted_loop_imm(f, Gpr::S1, Gpr::S2, BLOCK - stride, |f| {
                f.addr_of_local(Gpr::T0, buf, 0);
                f.slli(Gpr::T1, Gpr::S1, 3);
                f.add(Gpr::T0, Gpr::T0, Gpr::T1);
                f.load_ptr(Gpr::T2, Gpr::T0, 0, Provenance::PointsToStack);
                f.load_ptr(
                    Gpr::T3,
                    Gpr::T0,
                    (stride * 8) as i16,
                    Provenance::PointsToStack,
                );
                f.add(Gpr::T4, Gpr::T2, Gpr::T3);
                f.sub(Gpr::T5, Gpr::T2, Gpr::T3);
                f.srai(Gpr::T4, Gpr::T4, 1);
                f.srai(Gpr::T5, Gpr::T5, 1);
                f.store_ptr(Gpr::T4, Gpr::T0, 0, Provenance::PointsToStack);
                f.store_ptr(
                    Gpr::T5,
                    Gpr::T0,
                    (stride * 8) as i16,
                    Provenance::PointsToStack,
                );
            });
        }
        // Phase 3: quantize in place against the global table (data +
        // stack, no heap).
        counted_loop_imm(f, Gpr::S1, Gpr::S2, BLOCK, |f| {
            f.slli(Gpr::T0, Gpr::S1, 3);
            f.addr_of_local(Gpr::T1, buf, 0);
            f.add(Gpr::T1, Gpr::T1, Gpr::T0);
            f.load_ptr(Gpr::T2, Gpr::T1, 0, Provenance::PointsToStack);
            f.la_global(Gpr::T3, g_quant);
            f.add(Gpr::T3, Gpr::T3, Gpr::T0);
            // Variant-specific quantization row.
            f.load_ptr(
                Gpr::T4,
                Gpr::T3,
                ((k as i64 % 4) * 16) as i16,
                Provenance::StaticVar,
            );
            f.div(Gpr::T2, Gpr::T2, Gpr::T4);
            f.store_ptr(Gpr::T2, Gpr::T1, 0, Provenance::PointsToStack);
        });
        // Phase 4: write back, unrolled ×4 (heap burst).
        f.li(Gpr::V0, 0);
        counted_loop_imm(f, Gpr::S1, Gpr::S2, BLOCK / 4, |f| {
            f.slli(Gpr::T0, Gpr::S1, 5);
            f.addr_of_local(Gpr::T1, buf, 0);
            f.add(Gpr::T1, Gpr::T1, Gpr::T0);
            f.load_ptr(Gpr::T2, Gpr::T1, 0, Provenance::PointsToStack);
            f.load_ptr(Gpr::T3, Gpr::T1, 8, Provenance::PointsToStack);
            f.load_ptr(Gpr::T4, Gpr::T1, 16, Provenance::PointsToStack);
            f.load_ptr(Gpr::T5, Gpr::T1, 24, Provenance::PointsToStack);
            f.add(Gpr::T6, Gpr::S0, Gpr::T0);
            f.store_ptr(Gpr::T2, Gpr::T6, 0, Provenance::HeapBlock);
            f.store_ptr(Gpr::T3, Gpr::T6, 8, Provenance::HeapBlock);
            f.store_ptr(Gpr::T4, Gpr::T6, 16, Provenance::HeapBlock);
            f.store_ptr(Gpr::T5, Gpr::T6, 24, Provenance::HeapBlock);
            f.add(Gpr::V0, Gpr::V0, Gpr::T2);
            f.add(Gpr::V0, Gpr::V0, Gpr::T4);
        });
        pb.add_function(process);
    }

    // encode_pass(a0 = image ptr) -> v0: entropy-coding stand-in — streams
    // the whole heap image, updating a global histogram. Runs with *no*
    // frame traffic, so the stack goes quiet for long stretches (this is
    // what makes ijpeg's stack strictly bursty).
    let encode_names: Vec<String> = (0..ENCODE_VARIANTS)
        .map(|k| format!("encode_pass_{k}"))
        .collect();
    for (k, name) in encode_names.iter().enumerate() {
        let mut encode = FunctionBuilder::new(name);
        let f = &mut encode;
        let top = f.new_label();
        let done = f.new_label();
        f.li(Gpr::T0, 0); // index
        f.li(Gpr::V0, 0);
        f.bind(top);
        f.li(Gpr::T1, BLOCKS_PER_IMAGE * BLOCK);
        f.br(arl_isa::BranchCond::Ge, Gpr::T0, Gpr::T1, done);
        f.slli(Gpr::T2, Gpr::T0, 3);
        f.add(Gpr::T3, Gpr::A0, Gpr::T2);
        f.load_ptr(Gpr::T4, Gpr::T3, 0, Provenance::HeapBlock);
        // Emit a literal run: only escape codes (1 in 8) consult the global
        // code table, so the data region stays quiet through this phase.
        f.andi(Gpr::T5, Gpr::T4, 7);
        let no_escape = f.new_label();
        f.bnez(Gpr::T5, no_escape);
        f.andi(Gpr::T5, Gpr::T4, 63 - (k as i16 % 2) * 32);
        f.la_global(Gpr::T6, g_quant); // reuse quant as the code table
        index_addr(f, Gpr::T7, Gpr::T6, Gpr::T5, 3, Gpr::T2);
        f.load_ptr(Gpr::T5, Gpr::T7, 0, Provenance::StaticVar);
        f.add(Gpr::V0, Gpr::V0, Gpr::T5);
        f.bind(no_escape);
        f.add(Gpr::V0, Gpr::V0, Gpr::T4);
        f.addi(Gpr::T0, Gpr::T0, 1);
        f.j(top);
        f.bind(done);
        f.andi(Gpr::V0, Gpr::V0, 0x3fff);
        pb.add_function(encode);
    }

    // fill_image(a0 = image ptr, a1 = seed): raster-fills the heap image.
    let mut fill = FunctionBuilder::new("fill_image");
    {
        let f = &mut fill;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        f.mov(Gpr::S0, Gpr::A0);
        f.mov(Gpr::S3, Gpr::A1);
        counted_loop_imm(f, Gpr::S1, Gpr::S2, BLOCKS_PER_IMAGE * BLOCK, |f| {
            f.li(Gpr::T0, 73);
            f.mul(Gpr::T1, Gpr::S1, Gpr::T0);
            f.add(Gpr::T1, Gpr::T1, Gpr::S3);
            f.andi(Gpr::T1, Gpr::T1, 255);
            index_addr(f, Gpr::T2, Gpr::S0, Gpr::S1, 3, Gpr::T3);
            f.store_ptr(Gpr::T1, Gpr::T2, 0, Provenance::HeapBlock);
        });
    }
    pb.add_function(fill);

    // main: per image — allocate, fill, process all blocks, free.
    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_markers_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_markers", 90, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3, Gpr::S4]);
        emit_cold_init(f, &cold);
        let images = scale.apply(42);
        f.li(Gpr::S3, 0); // energy accumulator
        counted_loop_imm(f, Gpr::S0, Gpr::S2, images, |f| {
            f.malloc_imm(BLOCKS_PER_IMAGE * BLOCK * 8);
            f.store_global(Gpr::V0, g_image, 0);
            f.mov(Gpr::A0, Gpr::V0);
            f.mov(Gpr::A1, Gpr::S0);
            f.call("fill_image");
            // Process each block.
            let inner_limit = Gpr::S4;
            counted_loop_imm(f, Gpr::S1, inner_limit, BLOCKS_PER_IMAGE, |f| {
                f.load_global(Gpr::T0, g_image, 0);
                f.li(Gpr::T1, BLOCK * 8);
                f.mul(Gpr::T2, Gpr::S1, Gpr::T1);
                f.add(Gpr::A0, Gpr::T0, Gpr::T2);
                f.li(Gpr::T3, BLOCK_VARIANTS as i64);
                f.rem(Gpr::T4, Gpr::S1, Gpr::T3);
                dispatch_call(f, Gpr::T4, Gpr::T5, &process_names);
                f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            });
            // Entropy-coding phase: three progressive scans — a long
            // stack-quiet stretch after the frame-heavy block processing.
            for scan in 0..3 {
                f.load_global(Gpr::A0, g_image, 0);
                f.li(Gpr::T3, ENCODE_VARIANTS as i64);
                f.addi(Gpr::T4, Gpr::S0, scan);
                f.rem(Gpr::T4, Gpr::T4, Gpr::T3);
                dispatch_call(f, Gpr::T4, Gpr::T5, &encode_names);
                f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            }
            f.load_global(Gpr::A0, g_image, 0);
            f.syscall(Syscall::Free);
        });
        f.andi(Gpr::A0, Gpr::S3, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("ijpeg workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn ijpeg_traffic_is_bursty_everywhere() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0]; // 32-instruction window
        for r in [Region::Data, Region::Heap, Region::Stack] {
            assert!(s.mean(r) > 0.05, "{r} region active");
            assert!(
                s.is_strictly_bursty(r),
                "{r} must be strictly bursty: mean={} sd={}",
                s.mean(r),
                s.stddev(r)
            );
        }
    }
}
