//! `li` — analog of 130.li (xlisp).
//!
//! A cons-cell list engine: `cons` allocates 16-byte cells on the heap,
//! recursive builders and reducers walk them (deep call chains → heavy,
//! bursty stack traffic), an iterative sweep rereads them (heap traffic),
//! and a small global symbol table adds modest data-region traffic —
//! matching 130.li's S > H > D per-32 signature.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const SYMTAB: i64 = 128;
const LIST_LEN: i64 = 48;
const BUILTINS: usize = 6;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let symtab_init: Vec<i64> = (0..SYMTAB).map(|i| i * 37 % 101).collect();
    let g_symtab = pb.global_words("symtab", &symtab_init);

    // cons(a0 = car, a1 = cdr) -> v0: one fresh heap cell. Frameless leaf
    // (`malloc` is a syscall; `a1` survives it).
    let mut cons = FunctionBuilder::new("cons");
    {
        let f = &mut cons;
        f.set_leaf();
        f.mov(Gpr::T8, Gpr::A0); // malloc_imm clobbers a0
        f.malloc_imm(16);
        f.store_ptr(Gpr::T8, Gpr::V0, 0, Provenance::HeapBlock); // car
        f.store_ptr(Gpr::A1, Gpr::V0, 8, Provenance::HeapBlock); // cdr
    }
    pb.add_function(cons);

    // buildlist(a0 = n) -> v0: recursive construction, lisp-style.
    let mut buildlist = FunctionBuilder::new("buildlist");
    {
        let f = &mut buildlist;
        f.save(&[Gpr::S0]);
        let nonzero = f.new_label();
        f.bnez(Gpr::A0, nonzero);
        f.li(Gpr::V0, 0); // nil
        f.ret();
        f.bind(nonzero);
        f.mov(Gpr::S0, Gpr::A0);
        f.addi(Gpr::A0, Gpr::A0, -1);
        f.call("buildlist");
        // car = symtab[n & 127] + n : touches the data region.
        f.andi(Gpr::T0, Gpr::S0, (SYMTAB - 1) as i16);
        f.la_global(Gpr::T1, g_symtab);
        index_addr(f, Gpr::T2, Gpr::T1, Gpr::T0, 3, Gpr::T3);
        f.load_ptr(Gpr::A0, Gpr::T2, 0, Provenance::StaticVar);
        f.add(Gpr::A0, Gpr::A0, Gpr::S0);
        f.mov(Gpr::A1, Gpr::V0);
        f.call("cons");
    }
    pb.add_function(buildlist);

    // sumlist(a0 = list) -> v0: recursive reduce (cdr recursion).
    let mut sumlist = FunctionBuilder::new("sumlist");
    {
        let f = &mut sumlist;
        f.save(&[Gpr::S0]);
        let nonnil = f.new_label();
        f.bnez(Gpr::A0, nonnil);
        f.li(Gpr::V0, 0);
        f.ret();
        f.bind(nonnil);
        f.load_ptr(Gpr::S0, Gpr::A0, 0, Provenance::HeapBlock); // car
        f.load_ptr(Gpr::A0, Gpr::A0, 8, Provenance::HeapBlock); // cdr
        f.call("sumlist");
        f.add(Gpr::V0, Gpr::V0, Gpr::S0);
    }
    pb.add_function(sumlist);

    // scale_list_k(a0 = list, a1 = k): iterative in-place map (heap-dense,
    // no recursion), consulting the symbol table per cell (data load).
    // One variant per builtin arithmetic op, as xlisp's SUBR table has.
    let scale_names: Vec<String> = (0..BUILTINS).map(|k| format!("scale_list_{k}")).collect();
    for (k, name) in scale_names.iter().enumerate() {
        let mut scale_fn = FunctionBuilder::new(name);
        let f = &mut scale_fn;
        f.set_leaf();
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.beqz(Gpr::A0, done);
        f.load_ptr(Gpr::T0, Gpr::A0, 0, Provenance::HeapBlock);
        // weight = symtab[car & 127]
        f.andi(Gpr::T1, Gpr::T0, (SYMTAB - 1) as i16);
        f.la_global(Gpr::T2, g_symtab);
        index_addr(f, Gpr::T3, Gpr::T2, Gpr::T1, 3, Gpr::T4);
        f.load_ptr(Gpr::T5, Gpr::T3, 0, Provenance::StaticVar);
        f.mul(Gpr::T0, Gpr::T0, Gpr::A1);
        f.add(Gpr::T0, Gpr::T0, Gpr::T5);
        f.addi(Gpr::T0, Gpr::T0, k as i16);
        f.andi(Gpr::T0, Gpr::T0, 0x3fff);
        f.store_ptr(Gpr::T0, Gpr::A0, 0, Provenance::HeapBlock);
        f.load_ptr(Gpr::A0, Gpr::A0, 8, Provenance::HeapBlock);
        f.j(top);
        f.bind(done);
        pb.add_function(scale_fn);
    }

    // sum_iter_k(a0 = list) -> v0: iterative reduce with a per-cell symbol
    // lookup — the interpreter's non-recursive fast paths.
    let sum_names: Vec<String> = (0..BUILTINS).map(|k| format!("sum_iter_{k}")).collect();
    for (k, name) in sum_names.iter().enumerate() {
        let mut sum_iter = FunctionBuilder::new(name);
        let f = &mut sum_iter;
        f.set_leaf();
        let top = f.new_label();
        let done = f.new_label();
        f.li(Gpr::V0, 0);
        f.bind(top);
        f.beqz(Gpr::A0, done);
        f.load_ptr(Gpr::T0, Gpr::A0, 0, Provenance::HeapBlock);
        f.andi(Gpr::T1, Gpr::T0, (SYMTAB - 1) as i16);
        f.la_global(Gpr::T2, g_symtab);
        index_addr(f, Gpr::T3, Gpr::T2, Gpr::T1, 3, Gpr::T4);
        f.load_ptr(Gpr::T5, Gpr::T3, 0, Provenance::StaticVar);
        f.add(Gpr::V0, Gpr::V0, Gpr::T0);
        f.add(Gpr::V0, Gpr::V0, Gpr::T5);
        if k % 2 == 1 {
            f.xori(Gpr::V0, Gpr::V0, k as i16);
        }
        f.load_ptr(Gpr::A0, Gpr::A0, 8, Provenance::HeapBlock);
        f.j(top);
        f.bind(done);
        pb.add_function(sum_iter);
    }

    // freelist(a0 = list): walk and free each cell.
    let mut freelist = FunctionBuilder::new("freelist");
    {
        let f = &mut freelist;
        f.save(&[Gpr::S0]);
        let top = f.new_label();
        let done = f.new_label();
        f.mov(Gpr::S0, Gpr::A0);
        f.bind(top);
        f.beqz(Gpr::S0, done);
        f.load_ptr(Gpr::T0, Gpr::S0, 8, Provenance::HeapBlock); // next
        f.mov(Gpr::A0, Gpr::S0);
        f.syscall(Syscall::Free);
        f.mov(Gpr::S0, Gpr::T0);
        f.j(top);
        f.bind(done);
    }
    pb.add_function(freelist);

    // main: repeatedly build / reduce / map / free lists; keep a checksum
    // in the global symbol table (read-modify-write → data traffic).
    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_subrs_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_subrs", 90, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        emit_cold_init(f, &cold);
        let iters = scale.apply(420);
        f.li(Gpr::S3, 0); // checksum
        counted_loop_imm(f, Gpr::S0, Gpr::S2, iters, |f| {
            f.li(Gpr::A0, LIST_LEN);
            f.call("buildlist");
            f.mov(Gpr::S1, Gpr::V0); // the list
            f.mov(Gpr::A0, Gpr::S1);
            f.call("sumlist");
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            f.mov(Gpr::A0, Gpr::S1);
            f.andi(Gpr::A1, Gpr::S0, 7);
            f.addi(Gpr::A1, Gpr::A1, 1);
            f.li(Gpr::T0, BUILTINS as i64);
            f.rem(Gpr::T4, Gpr::S0, Gpr::T0);
            dispatch_call(f, Gpr::T4, Gpr::T5, &scale_names);
            f.mov(Gpr::A0, Gpr::S1);
            // Recompute the builtin selector: the leaf list walkers use
            // the temporaries freely.
            f.li(Gpr::T0, BUILTINS as i64);
            f.rem(Gpr::T4, Gpr::S0, Gpr::T0);
            dispatch_call(f, Gpr::T4, Gpr::T5, &sum_names);
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            // symtab[i & 127] += partial checksum (data RMW).
            f.andi(Gpr::T0, Gpr::S0, (SYMTAB - 1) as i16);
            f.la_global(Gpr::T1, g_symtab);
            index_addr(f, Gpr::T2, Gpr::T1, Gpr::T0, 3, Gpr::T3);
            f.load_ptr(Gpr::T4, Gpr::T2, 0, Provenance::StaticVar);
            f.add(Gpr::T4, Gpr::T4, Gpr::V0);
            f.store_ptr(Gpr::T4, Gpr::T2, 0, Provenance::StaticVar);
            f.mov(Gpr::A0, Gpr::S1);
            f.call("freelist");
        });
        f.andi(Gpr::A0, Gpr::S3, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("li workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn li_mixes_heap_and_stack_heavily() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(h > d, "heap should exceed data traffic: H={h} D={d}");
        assert!(st > d, "stack should exceed data traffic: S={st} D={d}");
        assert!(h > 1.0 && st > 1.0);
    }

    #[test]
    fn li_heap_is_fully_reclaimed() {
        // freelist must free every cons cell; a second run of the same
        // machine state isn't observable here, but a successful exit with
        // no alloc errors proves free() saw valid pointers throughout.
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        assert!(m.run(50_000_000).unwrap().exited);
    }
}
