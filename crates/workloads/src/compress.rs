//! `compress` — analog of 129.compress.
//!
//! An LZW-style encoder: a tight main loop streaming bytes from a global
//! input buffer and probing/filling global hash and code tables. Almost all
//! traffic is data-region through computed pointers; calls (and thus stack
//! traffic) are rare — matching 129.compress's extreme D ≈ 9.9 vs S ≈ 1.1
//! per-32 signature with essentially no heap.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{BranchCond, Gpr};

use crate::common::{add_cold_functions, counted_loop_imm, emit_cold_init, index_addr};
use crate::suite::Scale;

const INPUT_BYTES: i64 = 4096;
const TABLE: i64 = 2048; // htab+codetab fit the 64 KB L1, as compress largely did

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    // Pseudo-text input: byte distribution with repeats so probes hit.
    let input: Vec<u8> = (0..INPUT_BYTES)
        .map(|i| (((i * 131) ^ (i >> 3)) % 64 + 32) as u8)
        .collect();
    let g_input = pb.global_bytes("input", &input);
    let g_htab = pb.global_zeroed("htab", TABLE as u64 * 8);
    let g_codetab = pb.global_zeroed("codetab", TABLE as u64 * 8);
    let g_freq = pb.global_zeroed("freq", 256 * 8);
    let g_outbuf = pb.global_zeroed("outbuf", 1024 * 8);
    let g_outcount = pb.global_zeroed("outcount", 8);

    // flush_stats(): rare bookkeeping call — the only steady source of
    // stack traffic, as in the original's output path.
    let mut flush = FunctionBuilder::new("flush_stats");
    {
        let f = &mut flush;
        let tmp = f.local(8);
        f.load_global(Gpr::T0, g_outcount, 0);
        f.store_local(Gpr::T0, tmp, 0);
        f.load_local(Gpr::T1, tmp, 0);
        f.addi(Gpr::T1, Gpr::T1, 1);
        f.store_global(Gpr::T1, g_outcount, 0);
        f.mov(Gpr::V0, Gpr::T1);
    }
    pb.add_function(flush);

    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_tables_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_tables", 70, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[
            Gpr::S0,
            Gpr::S1,
            Gpr::S2,
            Gpr::S3,
            Gpr::S4,
            Gpr::S5,
            Gpr::S6,
        ]);
        emit_cold_init(f, &cold);
        // S3 = input base, S4 = htab base, S5 = codetab base.
        f.la_global(Gpr::S3, g_input);
        f.la_global(Gpr::S4, g_htab);
        f.la_global(Gpr::S5, g_codetab);
        f.li(Gpr::S1, 0); // running prefix code, stream A
        f.li(Gpr::S6, 0); // running prefix code, stream B
        let iters = scale.apply(30_000);
        counted_loop_imm(f, Gpr::S0, Gpr::S2, iters, |f| {
            // Two independent symbol streams per iteration (block-based
            // compression): stream A over the low half of the input, stream
            // B over the high half, with disjoint hash-table halves — so
            // the machine has two dependence chains to overlap.
            for (ent, base_off, tab_off, out_off) in [
                (Gpr::S1, 0i16, 0i64, 0i64),
                (Gpr::S6, (INPUT_BYTES / 2) as i16, TABLE / 2, 512),
            ] {
                // c = input[half + (i & (INPUT_BYTES/2-1))]
                f.andi(Gpr::T0, Gpr::S0, (INPUT_BYTES / 2 - 1) as i16);
                f.add(Gpr::T1, Gpr::S3, Gpr::T0);
                f.load_ptr_b(Gpr::T2, Gpr::T1, base_off, Provenance::StaticVar);
                // h = half_base + (((ent << 5) ^ c) & (TABLE/2-1))
                f.slli(Gpr::T3, ent, 5);
                f.xor(Gpr::T3, Gpr::T3, Gpr::T2);
                f.andi(Gpr::T3, Gpr::T3, (TABLE / 2 - 1) as i16);
                f.addi(Gpr::T3, Gpr::T3, tab_off as i16);
                // probe htab[h]
                index_addr(f, Gpr::T4, Gpr::S4, Gpr::T3, 3, Gpr::T5);
                f.load_ptr(Gpr::T6, Gpr::T4, 0, Provenance::StaticVar);
                // key = (ent << 8) | c
                f.slli(Gpr::T7, ent, 8);
                f.or(Gpr::T7, Gpr::T7, Gpr::T2);
                let hit = f.new_label();
                let cont = f.new_label();
                f.br(BranchCond::Eq, Gpr::T6, Gpr::T7, hit);
                // Miss: secondary probe (h+1), then install.
                f.addi(Gpr::T3, Gpr::T3, 1);
                index_addr(f, Gpr::T4, Gpr::S4, Gpr::T3, 3, Gpr::T5);
                f.load_ptr(Gpr::T6, Gpr::T4, 0, Provenance::StaticVar);
                f.br(BranchCond::Eq, Gpr::T6, Gpr::T7, hit);
                // Install new code: htab[h] = key; codetab[h] = ent.
                f.store_ptr(Gpr::T7, Gpr::T4, 0, Provenance::StaticVar);
                index_addr(f, Gpr::T4, Gpr::S5, Gpr::T3, 3, Gpr::T5);
                f.store_ptr(ent, Gpr::T4, 0, Provenance::StaticVar);
                // ent = c
                f.mov(ent, Gpr::T2);
                f.j(cont);
                // Hit: extend the prefix: ent = codetab[h] + c.
                f.bind(hit);
                index_addr(f, Gpr::T4, Gpr::S5, Gpr::T3, 3, Gpr::T5);
                f.load_ptr(Gpr::T6, Gpr::T4, 0, Provenance::StaticVar);
                f.add(ent, Gpr::T6, Gpr::T2);
                f.andi(ent, ent, (TABLE - 1) as i16);
                f.bind(cont);
                // Symbol frequency update (data RMW), as compress's byteout
                // statistics do.
                f.la_global(Gpr::T4, g_freq);
                index_addr(f, Gpr::T5, Gpr::T4, Gpr::T2, 3, Gpr::T6);
                f.load_ptr(Gpr::T7, Gpr::T5, 0, Provenance::StaticVar);
                f.addi(Gpr::T7, Gpr::T7, 1);
                f.store_ptr(Gpr::T7, Gpr::T5, 0, Provenance::StaticVar);
                // Emit the current code to the output buffer (data store).
                f.andi(Gpr::T0, Gpr::S0, 511);
                f.la_global(Gpr::T4, g_outbuf);
                index_addr(f, Gpr::T5, Gpr::T4, Gpr::T0, 3, Gpr::T6);
                f.store_ptr(ent, Gpr::T5, out_off as i16 * 8, Provenance::StaticVar);
            }
            // Every 8 symbols, flush output stats (a call).
            f.andi(Gpr::T0, Gpr::S0, 7);
            let noflush = f.new_label();
            f.bnez(Gpr::T0, noflush);
            f.call("flush_stats");
            f.bind(noflush);
        });
        f.load_global(Gpr::A0, g_outcount, 0);
        f.syscall(arl_isa::Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("compress workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn compress_is_data_dominant() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0]; // window 32
        assert!(
            s.mean(Region::Data) > 3.0 * s.mean(Region::Stack),
            "data traffic must dominate stack: D={} S={}",
            s.mean(Region::Data),
            s.mean(Region::Stack)
        );
        assert!(s.mean(Region::Heap) < 0.01, "no heap traffic");
    }
}
