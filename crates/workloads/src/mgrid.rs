//! `mgrid` — analog of 107.mgrid.
//!
//! Multigrid relaxation over one large global `f64` grid, with smoothing
//! passes at several strides (the fine→coarse→fine V-cycle). The most
//! data-dominant workload in the suite — 107.mgrid shows D ≈ 9.6 vs
//! S ≈ 2.6 per 32 with no heap and the steadiest data stream.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Fpr, Gpr, Syscall};

use crate::common::{add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init};
use crate::suite::Scale;

const DIM: i64 = 64;
const CELLS: i64 = DIM * DIM;
const SMOOTH_VARIANTS: usize = 8;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let init: Vec<f64> = (0..CELLS).map(|i| ((i * 31) % 23) as f64 * 0.125).collect();
    let g_grid = pb.global_f64s("grid", &init);
    let g_resid = pb.global_zeroed("resid", CELLS as u64 * 8);

    // smooth_k(a0 = stride): one relaxation pass at the given stride over
    // the whole grid — four neighbour loads, one store, per cell. Eight
    // variants, as mgrid's psinv/resid/interp routines are separately
    // compiled loop nests.
    let smooth_names: Vec<String> = (0..SMOOTH_VARIANTS)
        .map(|k| format!("smooth_{k}"))
        .collect();
    for (k, name) in smooth_names.iter().enumerate() {
        let mut smooth = FunctionBuilder::new(name);
        let f = &mut smooth;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3, Gpr::S4]);
        let spill = f.local(8); // FP register-pressure spill
        f.mov(Gpr::S2, Gpr::A0); // stride (cells)
                                 // Ping-pong: even variants read grid → write resid, odd variants
                                 // read resid → write grid (mgrid's resid/psinv pairs do exactly
                                 // this; no cell is read and written in the same pass).
        if k % 2 == 0 {
            f.la_global(Gpr::S3, g_grid);
            f.la_global(Gpr::S4, g_resid);
        } else {
            f.la_global(Gpr::S3, g_resid);
            f.la_global(Gpr::S4, g_grid);
        }
        // 0.25 in F10.
        f.li(Gpr::T0, 1);
        f.cvt_if(Fpr::F10, Gpr::T0);
        f.li(Gpr::T0, 4);
        f.cvt_if(Fpr::F11, Gpr::T0);
        f.fdiv(Fpr::F10, Fpr::F10, Fpr::F11);
        // Interior cells: stride*DIM .. CELLS - stride*DIM.
        let span = CELLS - 2 * DIM; // conservative interior for stride ≤ DIM
        counted_loop_imm(f, Gpr::S0, Gpr::S1, span, |f| {
            f.li(Gpr::T0, DIM);
            f.mul(Gpr::T0, Gpr::S2, Gpr::T0); // stride*DIM
            f.add(Gpr::T1, Gpr::S0, Gpr::T0); // centre index
            f.slli(Gpr::T1, Gpr::T1, 3);
            f.add(Gpr::T2, Gpr::S3, Gpr::T1); // &grid[centre]
                                              // neighbours at ±stride and ±stride*DIM.
            f.slli(Gpr::T3, Gpr::S2, 3);
            f.add(Gpr::T4, Gpr::T2, Gpr::T3);
            f.fload_ptr(Fpr::F0, Gpr::T4, 0, Provenance::StaticVar);
            f.sub(Gpr::T4, Gpr::T2, Gpr::T3);
            f.fload_ptr(Fpr::F1, Gpr::T4, 0, Provenance::StaticVar);
            f.slli(Gpr::T5, Gpr::T0, 3);
            f.add(Gpr::T4, Gpr::T2, Gpr::T5);
            f.fload_ptr(Fpr::F2, Gpr::T4, 0, Provenance::StaticVar);
            f.sub(Gpr::T4, Gpr::T2, Gpr::T5);
            f.fload_ptr(Fpr::F3, Gpr::T4, 0, Provenance::StaticVar);
            f.fadd(Fpr::F0, Fpr::F0, Fpr::F1);
            f.fadd(Fpr::F2, Fpr::F2, Fpr::F3);
            f.fadd(Fpr::F0, Fpr::F0, Fpr::F2);
            f.fmul(Fpr::F0, Fpr::F0, Fpr::F10);
            // dst[centre] = relaxed value blended with the source centre
            // and the destination's previous value (cross-pass dependence
            // only — no cell is read after being written within a pass).
            // The relaxed value spills while the centre values are loaded.
            f.fstore_local(Fpr::F0, spill, 0);
            f.fload_ptr(Fpr::F4, Gpr::T2, 0, Provenance::StaticVar);
            f.add(Gpr::T6, Gpr::S4, Gpr::T1);
            f.fload_ptr(Fpr::F5, Gpr::T6, 0, Provenance::StaticVar);
            f.fmul(Fpr::F5, Fpr::F5, Fpr::F10);
            f.fadd(Fpr::F4, Fpr::F4, Fpr::F5);
            f.fload_local(Fpr::F0, spill, 0);
            f.fadd(Fpr::F4, Fpr::F4, Fpr::F0);
            f.fmul(Fpr::F4, Fpr::F4, Fpr::F10);
            if k % 2 == 1 {
                f.fadd(Fpr::F4, Fpr::F4, Fpr::F10);
            }
            f.fstore_ptr(Fpr::F4, Gpr::T6, 0, Provenance::StaticVar);
        });
        pb.add_function(smooth);
    }

    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_grids_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_grids", 160, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1]);
        emit_cold_init(f, &cold);
        let cycles = scale.apply(4);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, cycles, |f| {
            // V-cycle: fine → coarse → fine strides, each phase through its
            // own specialized smoother.
            for (phase, stride) in [1i64, 2, 4, 2, 1].into_iter().enumerate() {
                f.li(Gpr::A0, stride);
                // Alternate pass parity so the grids ping-pong.
                let variant = (2 * (stride as usize % 4) + phase % 2) % SMOOTH_VARIANTS;
                f.li(Gpr::T4, variant as i64);
                dispatch_call(f, Gpr::T4, Gpr::T5, &smooth_names);
            }
        });
        // Digest one grid cell.
        f.la_global(Gpr::T0, g_grid);
        f.fload_ptr(
            Fpr::F0,
            Gpr::T0,
            (DIM * 8 + 64) as i16,
            Provenance::StaticVar,
        );
        f.li(Gpr::T1, 1 << 12);
        f.cvt_if(Fpr::F1, Gpr::T1);
        f.fmul(Fpr::F0, Fpr::F0, Fpr::F1);
        f.cvt_fi(Gpr::A0, Fpr::F0);
        f.andi(Gpr::A0, Gpr::A0, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("mgrid workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn mgrid_is_the_most_data_dominant() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(80_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(h < 0.01, "no heap traffic");
        assert!(d > 3.0 * st, "data must dwarf stack: D={d} S={st}");
        assert!(!s.is_strictly_bursty(Region::Data), "data stream is steady");
    }
}
