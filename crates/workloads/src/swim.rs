//! `swim` — analog of 102.swim.
//!
//! Shallow-water stencils over three global `f64` grids. Nearly all memory
//! traffic is data-region array streaming through computed pointers, with
//! modest stack traffic from the per-sweep bookkeeping calls and **no heap**
//! (102.swim: D ≈ 6.1, H = 0, S ≈ 3.4 per 32).

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{FCmpOp, Fpr, Gpr, Syscall};

use crate::common::{add_cold_functions, counted_loop_imm, emit_cold_init};
use crate::suite::Scale;

const N: i64 = 64;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let init: Vec<f64> = (0..N * N).map(|i| (i % 17) as f64 * 0.25 + 1.0).collect();
    let g_u = pb.global_f64s("u", &init);
    let g_v = pb.global_f64s("v", &init);
    let g_p = pb.global_zeroed("p", (N * N) as u64 * 8);

    // row_sum(a0 = row base ptr) -> f0: reduction over one row, used as the
    // per-sweep convergence bookkeeping.
    let mut rowsum = FunctionBuilder::new("row_sum");
    {
        let f = &mut rowsum;
        f.save(&[Gpr::S0, Gpr::S1]);
        let acc = f.local(8);
        f.li(Gpr::T0, 0);
        f.cvt_if(Fpr::F0, Gpr::T0);
        f.fstore_local(Fpr::F0, acc, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, N, |f| {
            f.slli(Gpr::T1, Gpr::S0, 3);
            f.add(Gpr::T2, Gpr::A0, Gpr::T1);
            f.fload_ptr(Fpr::F1, Gpr::T2, 0, Provenance::FunctionParam);
            f.fload_local(Fpr::F0, acc, 0);
            f.fadd(Fpr::F0, Fpr::F0, Fpr::F1);
            f.fstore_local(Fpr::F0, acc, 0);
        });
        f.fload_local(Fpr::F0, acc, 0);
    }
    pb.add_function(rowsum);

    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_state_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_state", 150, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3, Gpr::S4, Gpr::S5]);
        emit_cold_init(f, &cold);
        let spill = f.local(16); // FP register-pressure spill slots
        let sweeps = scale.apply(10);
        f.la_global(Gpr::S3, g_u);
        f.la_global(Gpr::S4, g_v);
        f.la_global(Gpr::S5, g_p);
        // FP constant 0.25 in F10.
        f.li(Gpr::T0, 1);
        f.cvt_if(Fpr::F10, Gpr::T0);
        f.li(Gpr::T0, 4);
        f.cvt_if(Fpr::F11, Gpr::T0);
        f.fdiv(Fpr::F10, Fpr::F10, Fpr::F11); // 0.25
        counted_loop_imm(f, Gpr::S0, Gpr::S1, sweeps, |f| {
            // Stencil sweep over interior points, linearized.
            counted_loop_imm(f, Gpr::S2, Gpr::T9, N * (N - 1) - 1, |f| {
                f.slli(Gpr::T0, Gpr::S2, 3);
                // p[i] = 0.25*(u[i] + u[i+1] + v[i] + v[i+N])
                f.add(Gpr::T1, Gpr::S3, Gpr::T0);
                f.fload_ptr(Fpr::F0, Gpr::T1, 0, Provenance::StaticVar);
                f.fload_ptr(Fpr::F1, Gpr::T1, 8, Provenance::StaticVar);
                f.add(Gpr::T2, Gpr::S4, Gpr::T0);
                f.fload_ptr(Fpr::F2, Gpr::T2, 0, Provenance::StaticVar);
                f.fload_ptr(Fpr::F3, Gpr::T2, (N * 8) as i16, Provenance::StaticVar);
                // Spill u[i]: the wide stencil runs out of FP registers
                // here, exactly as EGCS does on PISA.
                f.fstore_local(Fpr::F0, spill, 0);
                f.fadd(Fpr::F0, Fpr::F0, Fpr::F1);
                f.fadd(Fpr::F2, Fpr::F2, Fpr::F3);
                f.fadd(Fpr::F0, Fpr::F0, Fpr::F2);
                f.fmul(Fpr::F0, Fpr::F0, Fpr::F10);
                f.add(Gpr::T3, Gpr::S5, Gpr::T0);
                f.fstore_ptr(Fpr::F0, Gpr::T3, 0, Provenance::StaticVar);
                f.fstore_local(Fpr::F0, spill, 8);
                // Capacity-term arithmetic (register work between bursts).
                f.fmul(Fpr::F5, Fpr::F1, Fpr::F10);
                f.fadd(Fpr::F5, Fpr::F5, Fpr::F3);
                f.fmul(Fpr::F5, Fpr::F5, Fpr::F10);
                // u[i] relaxes toward p[i] (reload both spills).
                f.fload_local(Fpr::F4, spill, 0);
                f.fload_local(Fpr::F6, spill, 8);
                f.fadd(Fpr::F4, Fpr::F4, Fpr::F6);
                f.fadd(Fpr::F4, Fpr::F4, Fpr::F5);
                f.fmul(Fpr::F4, Fpr::F4, Fpr::F10);
                f.fstore_ptr(Fpr::F4, Gpr::T1, 0, Provenance::StaticVar);
            });
            // Bookkeeping call once per sweep (row rotates).
            f.li(Gpr::T0, N);
            f.rem(Gpr::T1, Gpr::S0, Gpr::T0);
            f.li(Gpr::T0, N * 8);
            f.mul(Gpr::T1, Gpr::T1, Gpr::T0);
            f.add(Gpr::A0, Gpr::S5, Gpr::T1);
            f.call("row_sum");
        });
        // Emit a stable integer digest of the final sum.
        f.li(Gpr::T0, 1000);
        f.cvt_if(Fpr::F1, Gpr::T0);
        f.fmul(Fpr::F0, Fpr::F0, Fpr::F1);
        f.cvt_fi(Gpr::A0, Fpr::F0);
        f.andi(Gpr::A0, Gpr::A0, 0x7fff);
        f.syscall(Syscall::PrintInt);
        // Touch the comparison path once for ISA coverage.
        f.fcmp(FCmpOp::Lt, Gpr::T0, Fpr::F10, Fpr::F11);
    }
    pb.add_function(main);

    pb.link("main").expect("swim workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn swim_is_fp_data_streaming() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        assert!(s.mean(Region::Heap) < 0.01, "no heap traffic");
        assert!(
            s.mean(Region::Data) > s.mean(Region::Stack),
            "data leads stack: D={} S={}",
            s.mean(Region::Data),
            s.mean(Region::Stack)
        );
    }
}
