//! The workload suite.

use arl_asm::Program;

/// Iteration-count multiplier controlling how many dynamic instructions a
/// workload retires.
///
/// [`Scale::default`] targets roughly 0.5–2 M instructions per workload —
/// large enough for stable Table 2 / Figure 4 statistics, small enough that
/// the full 12-workload × 8-configuration Figure 8 sweep runs in minutes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Scale(u32);

impl Scale {
    /// Creates a scale with an explicit multiplier (≥ 1).
    pub fn new(factor: u32) -> Scale {
        Scale(factor.max(1))
    }

    /// A very small scale for unit tests (~tens of thousands of
    /// instructions).
    pub fn tiny() -> Scale {
        Scale(0) // sentinel: builders divide their defaults by 8
    }

    /// The multiplier.
    pub fn factor(&self) -> u32 {
        self.0.max(1)
    }

    /// Scales a default iteration count: multiplied by the factor, or
    /// divided by 8 (min 1) for [`Scale::tiny`].
    pub fn apply(&self, default_iters: i64) -> i64 {
        if self.0 == 0 {
            (default_iters / 8).max(1)
        } else {
            default_iters * self.0 as i64
        }
    }

    /// Whether this is the tiny test scale.
    pub fn is_tiny(&self) -> bool {
        self.0 == 0
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale(1)
    }
}

/// One workload: a named program generator.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Short name (`"go"`, `"tomcatv"`, ...).
    pub name: &'static str,
    /// The SPEC95 benchmark this analog models (`"099.go"`, ...).
    pub spec_name: &'static str,
    /// Whether the modeled benchmark is floating-point.
    pub is_fp: bool,
    builder: fn(Scale) -> Program,
}

impl WorkloadSpec {
    /// Builds the workload's program at the given scale.
    pub fn build(&self, scale: Scale) -> Program {
        (self.builder)(scale)
    }
}

/// The full 12-workload suite in the paper's Table 1 order (integer first,
/// then floating-point).
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "go",
            spec_name: "099.go",
            is_fp: false,
            builder: crate::go::build,
        },
        WorkloadSpec {
            name: "m88ksim",
            spec_name: "124.m88ksim",
            is_fp: false,
            builder: crate::m88ksim::build,
        },
        WorkloadSpec {
            name: "gcc",
            spec_name: "126.gcc",
            is_fp: false,
            builder: crate::gcc::build,
        },
        WorkloadSpec {
            name: "compress",
            spec_name: "129.compress",
            is_fp: false,
            builder: crate::compress::build,
        },
        WorkloadSpec {
            name: "li",
            spec_name: "130.li",
            is_fp: false,
            builder: crate::li::build,
        },
        WorkloadSpec {
            name: "ijpeg",
            spec_name: "132.ijpeg",
            is_fp: false,
            builder: crate::ijpeg::build,
        },
        WorkloadSpec {
            name: "perl",
            spec_name: "134.perl",
            is_fp: false,
            builder: crate::perl::build,
        },
        WorkloadSpec {
            name: "vortex",
            spec_name: "147.vortex",
            is_fp: false,
            builder: crate::vortex::build,
        },
        WorkloadSpec {
            name: "tomcatv",
            spec_name: "101.tomcatv",
            is_fp: true,
            builder: crate::tomcatv::build,
        },
        WorkloadSpec {
            name: "swim",
            spec_name: "102.swim",
            is_fp: true,
            builder: crate::swim::build,
        },
        WorkloadSpec {
            name: "su2cor",
            spec_name: "103.su2cor",
            is_fp: true,
            builder: crate::su2cor::build,
        },
        WorkloadSpec {
            name: "mgrid",
            spec_name: "107.mgrid",
            is_fp: true,
            builder: crate::mgrid::build,
        },
    ]
}

/// Looks up a workload by short name.
pub fn workload(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_roster() {
        let s = suite();
        assert_eq!(s.len(), 12);
        assert_eq!(s.iter().filter(|w| w.is_fp).count(), 4);
        assert_eq!(workload("li").unwrap().spec_name, "130.li");
        assert!(workload("nope").is_none());
    }

    #[test]
    fn scale_application() {
        assert_eq!(Scale::default().apply(1000), 1000);
        assert_eq!(Scale::new(3).apply(1000), 3000);
        assert_eq!(Scale::tiny().apply(1000), 125);
        assert_eq!(Scale::tiny().apply(4), 1);
        assert!(Scale::tiny().is_tiny());
        assert_eq!(Scale::new(0).factor(), 1);
    }
}
