//! `su2cor` — analog of 103.su2cor.
//!
//! Lattice quantum-chromodynamics-flavoured sweeps: gather indices from a
//! global table, stream "complex" pairs from a global lattice, accumulate
//! per-site products. Data-dominant (103.su2cor: D ≈ 7.4, S ≈ 3.0 per 32)
//! with a trace of heap from a once-initialized scratch vector (H ≈ 0.4)
//! and per-slice calls that leave its stack traffic bursty.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Fpr, Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const SITES: i64 = 2048; // complex pairs: 2 f64 each
const SLICE: i64 = 128;
const SLICE_VARIANTS: usize = 12;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let lattice: Vec<f64> = (0..SITES * 2)
        .map(|i| ((i * 29) % 41) as f64 * 0.0625 - 1.0)
        .collect();
    let gather: Vec<i64> = (0..SITES).map(|i| (i * 131) % SITES).collect();
    let g_lat = pb.global_f64s("lattice", &lattice);
    let g_idx = pb.global_words("gather", &gather);
    let g_scratch = pb.global_zeroed("scratch_ptr", 8);

    // slice_update_k(a0 = slice base site): one gather-multiply-accumulate
    // slice; returns an integer digest. One variant per correlation
    // direction, as su2cor's trajectory routines specialize.
    let slice_names: Vec<String> = (0..SLICE_VARIANTS)
        .map(|k| format!("slice_update_{k}"))
        .collect();
    for (k, name) in slice_names.iter().enumerate() {
        let mut slice = FunctionBuilder::new(name);
        let f = &mut slice;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3, Gpr::S4]);
        let acc = f.local(16); // complex accumulator, spilled
        f.mov(Gpr::S2, Gpr::A0);
        f.la_global(Gpr::S3, g_lat);
        f.la_global(Gpr::S4, g_idx);
        f.cvt_if(Fpr::F0, Gpr::ZERO);
        f.fstore_local(Fpr::F0, acc, 0);
        f.fstore_local(Fpr::F0, acc, 8);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, SLICE, |f| {
            // site = gather[(base + i) & (SITES-1)] (data load)
            f.add(Gpr::T0, Gpr::S2, Gpr::S0);
            f.andi(Gpr::T0, Gpr::T0, (SITES - 1) as i16);
            index_addr(f, Gpr::T1, Gpr::S4, Gpr::T0, 3, Gpr::T2);
            f.load_ptr(Gpr::T3, Gpr::T1, 0, Provenance::StaticVar);
            // (re, im) = lattice[site] (two data loads)
            f.slli(Gpr::T3, Gpr::T3, 4);
            f.add(Gpr::T4, Gpr::S3, Gpr::T3);
            f.fload_ptr(Fpr::F1, Gpr::T4, 0, Provenance::StaticVar);
            f.fload_ptr(Fpr::F2, Gpr::T4, 8, Provenance::StaticVar);
            // neighbour pair at the variant's correlation distance
            f.add(Gpr::T5, Gpr::S2, Gpr::S0);
            f.addi(Gpr::T5, Gpr::T5, (k as i16 % 4) + 1);
            f.andi(Gpr::T5, Gpr::T5, (SITES - 1) as i16);
            f.slli(Gpr::T5, Gpr::T5, 4);
            f.add(Gpr::T6, Gpr::S3, Gpr::T5);
            f.fload_ptr(Fpr::F3, Gpr::T6, 0, Provenance::StaticVar);
            f.fload_ptr(Fpr::F4, Gpr::T6, 8, Provenance::StaticVar);
            // complex multiply-accumulate into the spilled accumulator.
            f.fmul(Fpr::F5, Fpr::F1, Fpr::F3);
            f.fmul(Fpr::F6, Fpr::F2, Fpr::F4);
            f.fsub(Fpr::F5, Fpr::F5, Fpr::F6); // re part
            f.fmul(Fpr::F7, Fpr::F1, Fpr::F4);
            f.fmul(Fpr::F8, Fpr::F2, Fpr::F3);
            f.fadd(Fpr::F7, Fpr::F7, Fpr::F8); // im part
            f.fload_local(Fpr::F9, acc, 0);
            f.fadd(Fpr::F9, Fpr::F9, Fpr::F5);
            f.fstore_local(Fpr::F9, acc, 0);
            f.fload_local(Fpr::F9, acc, 8);
            f.fadd(Fpr::F9, Fpr::F9, Fpr::F7);
            f.fstore_local(Fpr::F9, acc, 8);
            // write re back to the lattice (data store), damped.
            f.fmul(Fpr::F5, Fpr::F5, Fpr::F10); // F10 = 0.5, set up by main
            f.fstore_ptr(Fpr::F5, Gpr::T4, 0, Provenance::StaticVar);
        });
        f.fload_local(Fpr::F0, acc, 0);
        f.cvt_fi(Gpr::V0, Fpr::F0);
        pb.add_function(slice);
    }

    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_fields_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_fields", 215, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2]);
        emit_cold_init(f, &cold);
        // Heap scratch touched only during initialization (bursty heap).
        f.malloc_imm(SLICE * 8);
        f.store_global(Gpr::V0, g_scratch, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, SLICE, |f| {
            f.load_global(Gpr::T0, g_scratch, 0);
            index_addr(f, Gpr::T1, Gpr::T0, Gpr::S0, 3, Gpr::T2);
            f.store_ptr(Gpr::S0, Gpr::T1, 0, Provenance::HeapBlock);
        });
        // 0.5 damping constant in F10 for slice_update.
        f.li(Gpr::T0, 1);
        f.cvt_if(Fpr::F10, Gpr::T0);
        f.li(Gpr::T0, 2);
        f.cvt_if(Fpr::F11, Gpr::T0);
        f.fdiv(Fpr::F10, Fpr::F10, Fpr::F11);
        let slices = scale.apply(170);
        f.li(Gpr::S2, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, slices, |f| {
            f.li(Gpr::T0, 37);
            f.mul(Gpr::A0, Gpr::S0, Gpr::T0);
            f.andi(Gpr::A0, Gpr::A0, (SITES - 1) as i16);
            f.li(Gpr::T0, SLICE_VARIANTS as i64);
            f.rem(Gpr::T4, Gpr::S0, Gpr::T0);
            dispatch_call(f, Gpr::T4, Gpr::T5, &slice_names);
            f.add(Gpr::S2, Gpr::S2, Gpr::V0);
        });
        f.andi(Gpr::A0, Gpr::S2, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("su2cor workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn su2cor_streams_the_lattice() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(
            d > st && d > 10.0 * h.max(0.001),
            "data dominates: D={d} H={h} S={st}"
        );
    }
}
