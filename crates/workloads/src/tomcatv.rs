//! `tomcatv` — analog of 101.tomcatv.
//!
//! Mesh generation: stencils over global coordinate arrays with enough
//! FP intermediates that many spill to the frame (101.tomcatv's stack mean
//! exceeds its data mean: S ≈ 6.0 vs D ≈ 4.0), a row-norm helper whose
//! pointer parameter sees both global rows and a stack-resident row copy
//! (the paper singles tomcatv out for multi-region instructions), and a
//! small heap workspace (H ≈ 0.6).

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Fpr, Gpr, Syscall};

use crate::common::{add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init};
use crate::suite::Scale;

const N: i64 = 32;
const ROW_VARIANTS: usize = 8;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let init_x: Vec<f64> = (0..N * N).map(|i| (i % N) as f64).collect();
    let init_y: Vec<f64> = (0..N * N).map(|i| (i / N) as f64).collect();
    let g_x = pb.global_f64s("x", &init_x);
    let g_y = pb.global_f64s("y", &init_y);
    let g_rx = pb.global_zeroed("rx", (N * N) as u64 * 8);
    let g_work = pb.global_zeroed("workspace_ptr", 8);

    // row_norm(a0 = row ptr) -> f0: reduction through a pointer parameter.
    // Called with global rows *and* a stack row copy → multi-region loads.
    let mut norm = FunctionBuilder::new("row_norm");
    {
        let f = &mut norm;
        f.save(&[Gpr::S0, Gpr::S1]);
        let acc = f.local(8);
        f.cvt_if(Fpr::F0, Gpr::ZERO);
        f.fstore_local(Fpr::F0, acc, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, N, |f| {
            f.slli(Gpr::T0, Gpr::S0, 3);
            f.add(Gpr::T1, Gpr::A0, Gpr::T0);
            f.fload_ptr(Fpr::F1, Gpr::T1, 0, Provenance::FunctionParam);
            f.fmul(Fpr::F1, Fpr::F1, Fpr::F1);
            f.fload_local(Fpr::F0, acc, 0);
            f.fadd(Fpr::F0, Fpr::F0, Fpr::F1);
            f.fstore_local(Fpr::F0, acc, 0);
        });
        f.fload_local(Fpr::F0, acc, 0);
    }
    pb.add_function(norm);

    // relax_row_k(a0 = row index): stencil over one interior row with
    // spilled FP intermediates, then norms of the global row and of a
    // stack copy of it. One variant per residual class, as tomcatv's
    // unrolled/specialized loop bodies compile.
    let relax_names: Vec<String> = (0..ROW_VARIANTS)
        .map(|k| format!("relax_row_{k}"))
        .collect();
    for (k, name) in relax_names.iter().enumerate() {
        let mut relax = FunctionBuilder::new(name);
        let f = &mut relax;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        let t_xx = f.local(8);
        let t_yy = f.local(8);
        let t_mix = f.local(8);
        let rowcopy = f.local(N as u32 * 8);
        // S2 = &x[row*N], S3 = &y[row*N].
        f.li(Gpr::T0, N * 8);
        f.mul(Gpr::T1, Gpr::A0, Gpr::T0);
        f.la_global(Gpr::S2, g_x);
        f.add(Gpr::S2, Gpr::S2, Gpr::T1);
        f.la_global(Gpr::S3, g_y);
        f.add(Gpr::S3, Gpr::S3, Gpr::T1);
        // rx row base in T8 is recomputed in the loop (T regs die at calls).
        counted_loop_imm(f, Gpr::S0, Gpr::S1, N - 2, |f| {
            f.addi(Gpr::T0, Gpr::S0, 1); // col
            f.slli(Gpr::T0, Gpr::T0, 3);
            // xx = x[c+1] - 2x[c] + x[c-1]  (spilled)
            f.add(Gpr::T1, Gpr::S2, Gpr::T0);
            f.fload_ptr(Fpr::F0, Gpr::T1, 8, Provenance::StaticVar);
            f.fload_ptr(Fpr::F1, Gpr::T1, 0, Provenance::StaticVar);
            f.fload_ptr(Fpr::F2, Gpr::T1, -8, Provenance::StaticVar);
            f.fadd(Fpr::F3, Fpr::F0, Fpr::F2);
            f.fadd(Fpr::F4, Fpr::F1, Fpr::F1);
            f.fsub(Fpr::F3, Fpr::F3, Fpr::F4);
            f.fstore_local(Fpr::F3, t_xx, 0);
            // yy likewise on y.
            f.add(Gpr::T2, Gpr::S3, Gpr::T0);
            f.fload_ptr(Fpr::F0, Gpr::T2, 8, Provenance::StaticVar);
            f.fload_ptr(Fpr::F1, Gpr::T2, 0, Provenance::StaticVar);
            f.fload_ptr(Fpr::F2, Gpr::T2, -8, Provenance::StaticVar);
            f.fadd(Fpr::F3, Fpr::F0, Fpr::F2);
            f.fadd(Fpr::F4, Fpr::F1, Fpr::F1);
            f.fsub(Fpr::F3, Fpr::F3, Fpr::F4);
            f.fstore_local(Fpr::F3, t_yy, 0);
            // mix = xx * yy (reload both spills), with the variant's
            // residual weighting.
            f.fload_local(Fpr::F5, t_xx, 0);
            f.fload_local(Fpr::F6, t_yy, 0);
            f.fmul(Fpr::F7, Fpr::F5, Fpr::F6);
            if k % 2 == 1 {
                f.fadd(Fpr::F7, Fpr::F7, Fpr::F5);
            }
            f.fstore_local(Fpr::F7, t_mix, 0);
            // rx[row*N + c] = mix; stack row copy too.
            f.fload_local(Fpr::F7, t_mix, 0);
            f.la_global(Gpr::T3, g_rx);
            f.la_global(Gpr::T5, g_x);
            f.sub(Gpr::T4, Gpr::S2, Gpr::T5); // byte offset of this row
            f.add(Gpr::T3, Gpr::T3, Gpr::T4);
            f.add(Gpr::T3, Gpr::T3, Gpr::T0);
            f.fstore_ptr(Fpr::F7, Gpr::T3, 0, Provenance::StaticVar);
            f.addr_of_local(Gpr::T6, rowcopy, 0);
            f.add(Gpr::T6, Gpr::T6, Gpr::T0);
            f.fstore_ptr(Fpr::F7, Gpr::T6, 0, Provenance::PointsToStack);
        });
        // Norm of the global x row, then of the stack copy — the same
        // static loads in row_norm touch data and stack.
        f.mov(Gpr::A0, Gpr::S2);
        f.call("row_norm");
        f.addr_of_local(Gpr::A0, rowcopy, 0);
        f.call("row_norm");
        f.cvt_fi(Gpr::V0, Fpr::F0);
        f.addi(Gpr::V0, Gpr::V0, k as i16);
        pb.add_function(relax);
    }

    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_mesh_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_mesh", 80, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        emit_cold_init(f, &cold);
        // Small heap workspace, refreshed once per sweep (light heap).
        f.malloc_imm(N * 8);
        f.store_global(Gpr::V0, g_work, 0);
        let sweeps = scale.apply(320);
        f.li(Gpr::S3, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, sweeps, |f| {
            // Rotate through interior rows.
            f.li(Gpr::T0, N - 2);
            f.rem(Gpr::A0, Gpr::S0, Gpr::T0);
            f.addi(Gpr::A0, Gpr::A0, 1);
            f.li(Gpr::T0, ROW_VARIANTS as i64);
            f.rem(Gpr::T4, Gpr::S0, Gpr::T0);
            dispatch_call(f, Gpr::T4, Gpr::T5, &relax_names);
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            // Touch the heap workspace a little.
            f.load_global(Gpr::T0, g_work, 0);
            f.andi(Gpr::T1, Gpr::S0, (N - 1) as i16);
            f.slli(Gpr::T1, Gpr::T1, 3);
            f.add(Gpr::T0, Gpr::T0, Gpr::T1);
            f.load_ptr(Gpr::T2, Gpr::T0, 0, Provenance::HeapBlock);
            f.add(Gpr::T2, Gpr::T2, Gpr::S0);
            f.store_ptr(Gpr::T2, Gpr::T0, 0, Provenance::HeapBlock);
        });
        f.andi(Gpr::A0, Gpr::S3, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("tomcatv workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, RegionProfiler, SlidingWindowProfiler};

    #[test]
    fn tomcatv_spills_and_mixes_regions() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut rp = RegionProfiler::new();
        let mut w = SlidingWindowProfiler::new();
        let outcome = m
            .run_with(50_000_000, |e| {
                rp.observe(e);
                w.observe(e);
            })
            .expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(st > d, "spills push stack above data: D={d} S={st}");
        assert!(h > 0.0 && h < d, "heap present but small: H={h}");
        // row_norm's loads see both data and stack.
        assert!(rp.breakdown().dynamic_multi_region_fraction() > 0.003);
    }
}
