//! `m88ksim` — analog of 124.m88ksim.
//!
//! A processor simulator simulating a toy CPU: a fetch/decode loop over
//! global register-file and memory arrays (data region), per-opcode handler
//! functions (as m88ksim dispatches on M88100 opcodes), heap trace slots
//! refreshed by the trace handlers, and an event logger whose pointer
//! parameter alternates between heap log slots and a stack scratch record —
//! giving 124.m88ksim's balanced D ≈ 2.9 / H ≈ 2.1 / S ≈ 1.9 per-32 profile
//! and its elevated multi-region instruction share.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const SIM_REGS: i64 = 32;
const SIM_MEM: i64 = 1024;
const LOG_SLOTS: i64 = 64;
const OPCODES: usize = 16;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let sim_prog: Vec<i64> = (0..SIM_MEM)
        .map(|i| {
            let op = i % OPCODES as i64;
            let rd = (i * 7) % SIM_REGS;
            let rs = (i * 13) % SIM_REGS;
            let imm = (i * 31) % 256;
            op << 24 | rd << 16 | rs << 8 | imm
        })
        .collect();
    let g_mem = pb.global_words("sim_mem", &sim_prog);
    let g_regs = pb.global_zeroed("sim_regs", SIM_REGS as u64 * 8);
    let g_ccr = pb.global_zeroed("sim_ccr", SIM_REGS as u64 * 8);
    let g_logptr = pb.global_zeroed("log_base", 8);

    // log_event(a0 = record ptr) -> v0: digests a 4-word record through a
    // pointer parameter. Callers pass heap log slots *and* stack scratch
    // records, so these static loads access multiple regions.
    let mut log = FunctionBuilder::new("log_event");
    {
        let f = &mut log;
        f.set_leaf();
        f.load_ptr(Gpr::T0, Gpr::A0, 0, Provenance::FunctionParam);
        f.load_ptr(Gpr::T1, Gpr::A0, 8, Provenance::FunctionParam);
        f.load_ptr(Gpr::T2, Gpr::A0, 16, Provenance::FunctionParam);
        f.load_ptr(Gpr::T3, Gpr::A0, 24, Provenance::FunctionParam);
        f.xor(Gpr::V0, Gpr::T0, Gpr::T1);
        f.xor(Gpr::T2, Gpr::T2, Gpr::T3);
        f.xor(Gpr::V0, Gpr::V0, Gpr::T2);
    }
    pb.add_function(log);

    // Opcode handlers: op_k(a0 = instruction word, a1 = sim pc,
    // a2 = sim-regs base, a3 = sim-mem base) -> v0 = result value. Ops 0–7
    // are ALU flavours (leaf), 8–10 store flavours, 11–12 load flavours,
    // 13–15 trace flavours (the only ones that build frames and call the
    // logger).
    let op_names: Vec<String> = (0..OPCODES).map(|k| format!("op_{k}")).collect();
    for (k, name) in op_names.iter().enumerate() {
        let mut h = FunctionBuilder::new(name);
        let f = &mut h;
        let is_trace = k >= 12;
        if !is_trace {
            f.set_leaf();
        }
        // Decode rs and imm; read sim regs[rs] (data load).
        f.srli(Gpr::T6, Gpr::A0, 8);
        f.andi(Gpr::T6, Gpr::T6, (SIM_REGS - 1) as i16);
        index_addr(f, Gpr::T1, Gpr::A2, Gpr::T6, 3, Gpr::T2);
        f.load_ptr(Gpr::T7, Gpr::T1, 0, Provenance::StaticVar);
        f.andi(Gpr::T4, Gpr::A0, 255); // imm
        match k {
            0..=7 => {
                // ALU flavours: different combinations per opcode.
                match k % 4 {
                    0 => f.add(Gpr::V0, Gpr::T7, Gpr::T4),
                    1 => f.xor(Gpr::V0, Gpr::T7, Gpr::T4),
                    2 => {
                        f.sub(Gpr::V0, Gpr::T7, Gpr::T4);
                    }
                    _ => {
                        f.slli(Gpr::V0, Gpr::T7, (k % 3) as i16 + 1);
                        f.add(Gpr::V0, Gpr::V0, Gpr::T4);
                    }
                }
                // Second source register read (3-operand forms).
                f.srli(Gpr::T6, Gpr::A0, 16);
                f.andi(Gpr::T6, Gpr::T6, (SIM_REGS - 1) as i16);
                index_addr(f, Gpr::T1, Gpr::A2, Gpr::T6, 3, Gpr::T2);
                f.load_ptr(Gpr::T3, Gpr::T1, 0, Provenance::StaticVar);
                f.add(Gpr::V0, Gpr::V0, Gpr::T3);
            }
            8..=9 => {
                // Store to simulated memory (data store).
                f.add(Gpr::T0, Gpr::T7, Gpr::T4);
                f.addi(Gpr::T0, Gpr::T0, (k - 8) as i16);
                f.andi(Gpr::T0, Gpr::T0, (SIM_MEM - 1) as i16);
                index_addr(f, Gpr::T1, Gpr::A3, Gpr::T0, 3, Gpr::T2);
                f.store_ptr(Gpr::T7, Gpr::T1, 0, Provenance::StaticVar);
                f.mov(Gpr::V0, Gpr::T7);
            }
            10 | 11 => {
                // Load from simulated memory (data load).
                f.add(Gpr::T0, Gpr::T7, Gpr::T4);
                f.andi(Gpr::T0, Gpr::T0, (SIM_MEM - 1) as i16);
                index_addr(f, Gpr::T1, Gpr::A3, Gpr::T0, 3, Gpr::T2);
                f.load_ptr(Gpr::V0, Gpr::T1, 0, Provenance::StaticVar);
                if k == 11 {
                    f.addi(Gpr::V0, Gpr::V0, 1);
                }
            }
            _ => {
                // Trace flavours: refresh the rotating heap slot (4 heap
                // stores) and log either it or a stack scratch record.
                let scratch = f.local(32);
                f.save(&[Gpr::S6]);
                f.mov(Gpr::S6, Gpr::T7);
                f.load_global(Gpr::T0, g_logptr, 0);
                f.andi(Gpr::T1, Gpr::A1, (LOG_SLOTS - 1) as i16);
                f.slli(Gpr::T1, Gpr::T1, 5);
                f.add(Gpr::T0, Gpr::T0, Gpr::T1); // heap slot
                                                  // Fold the previous slot contents into the digest (heap
                                                  // reads), then refresh it (heap writes) — m88ksim's
                                                  // circular trace buffer does exactly this.
                f.load_ptr(Gpr::T2, Gpr::T0, 0, Provenance::HeapBlock);
                f.load_ptr(Gpr::T3, Gpr::T0, 16, Provenance::HeapBlock);
                f.xor(Gpr::S6, Gpr::S6, Gpr::T2);
                f.add(Gpr::S6, Gpr::S6, Gpr::T3);
                f.store_ptr(Gpr::A0, Gpr::T0, 0, Provenance::HeapBlock);
                f.store_ptr(Gpr::A1, Gpr::T0, 8, Provenance::HeapBlock);
                f.store_ptr(Gpr::T7, Gpr::T0, 16, Provenance::HeapBlock);
                f.store_ptr(Gpr::T4, Gpr::T0, 24, Provenance::HeapBlock);
                // Whether the handler logs the heap slot or a stack copy of
                // it depends on the *simulated data* (the register value),
                // through a single call site — so neither branch history
                // nor caller identity fully disambiguates the logger's
                // region, as with real trace buffers. The stack copy (a
                // quarter of the time) is built only when needed.
                let use_heap = f.new_label();
                let do_log = f.new_label();
                f.srli(Gpr::T2, Gpr::T7, (k % 3) as i16 + 3);
                f.andi(Gpr::T2, Gpr::T2, 3);
                f.bnez(Gpr::T2, use_heap);
                f.store_local(Gpr::A0, scratch, 0);
                f.store_local(Gpr::A1, scratch, 8);
                f.store_local(Gpr::T7, scratch, 16);
                f.store_local(Gpr::T4, scratch, 24);
                f.addr_of_local(Gpr::A0, scratch, 0);
                f.j(do_log);
                f.bind(use_heap);
                f.mov(Gpr::A0, Gpr::T0);
                f.bind(do_log);
                f.call("log_event");
                f.add(Gpr::V0, Gpr::V0, Gpr::S6);
            }
        }
        pb.add_function(h);
    }

    // main: the fetch/decode loop, dispatching to the opcode handlers.
    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_devices_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_devices", 140, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[
            Gpr::S0,
            Gpr::S1,
            Gpr::S2,
            Gpr::S3,
            Gpr::S4,
            Gpr::S5,
            Gpr::S6,
        ]);
        emit_cold_init(f, &cold);
        f.malloc_imm(LOG_SLOTS * 32);
        f.store_global(Gpr::V0, g_logptr, 0);
        f.la_global(Gpr::S3, g_mem);
        f.la_global(Gpr::S4, g_regs);
        f.la_global(Gpr::S6, g_ccr);
        f.li(Gpr::S1, 0); // sim pc
        let steps = scale.apply(15_000);
        counted_loop_imm(f, Gpr::S0, Gpr::S2, steps, |f| {
            // Fetch (data load).
            f.andi(Gpr::T0, Gpr::S1, (SIM_MEM - 1) as i16);
            index_addr(f, Gpr::T1, Gpr::S3, Gpr::T0, 3, Gpr::T2);
            f.load_ptr(Gpr::S5, Gpr::T1, 0, Provenance::StaticVar);
            // Decode op; dispatch to the handler.
            f.srli(Gpr::T4, Gpr::S5, 24);
            f.andi(Gpr::T4, Gpr::T4, (OPCODES - 1) as i16);
            f.mov(Gpr::A0, Gpr::S5);
            f.mov(Gpr::A1, Gpr::S1);
            f.mov(Gpr::A2, Gpr::S4);
            f.mov(Gpr::A3, Gpr::S3);
            dispatch_call(f, Gpr::T4, Gpr::T3, &op_names);
            // Writeback: regs[rd] = result, ccr[rd] = flags (data stores).
            f.srli(Gpr::T5, Gpr::S5, 16);
            f.andi(Gpr::T5, Gpr::T5, (SIM_REGS - 1) as i16);
            index_addr(f, Gpr::T1, Gpr::S4, Gpr::T5, 3, Gpr::T2);
            f.store_ptr(Gpr::V0, Gpr::T1, 0, Provenance::StaticVar);
            f.slt(Gpr::T6, Gpr::V0, Gpr::ZERO);
            index_addr(f, Gpr::T1, Gpr::S6, Gpr::T5, 3, Gpr::T2);
            f.store_ptr(Gpr::T6, Gpr::T1, 0, Provenance::StaticVar);
            // Advance the simulated pc (sequential fetch; the simulated
            // branches redirect rarely and we fold that into the stream).
            f.addi(Gpr::S1, Gpr::S1, 1);
        });
        f.andi(Gpr::A0, Gpr::S1, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("m88ksim workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, RegionProfiler, SlidingWindowProfiler};

    #[test]
    fn m88ksim_balances_three_regions() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut rp = RegionProfiler::new();
        let mut w = SlidingWindowProfiler::new();
        let outcome = m
            .run_with(50_000_000, |e| {
                rp.observe(e);
                w.observe(e);
            })
            .expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(d > h && d > st, "data leads: D={d} H={h} S={st}");
        assert!(
            h > 0.3 && st > 0.2,
            "all three regions active: D={d} H={h} S={st}"
        );
        // log_event's param-derefs make it multi-region.
        assert!(rp.breakdown().dynamic_multi_region_fraction() > 0.01);
    }
}
