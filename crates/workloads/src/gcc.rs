//! `gcc` — analog of 126.gcc.
//!
//! A miniature compiler front end: lexing over a global source buffer and
//! global token tables (data region), a recursive-descent parser building
//! expression nodes on the heap, and recursive constant-folding and
//! tree-release passes — matching 126.gcc's stack-dominant
//! S ≈ 6.5 > D ≈ 3.5 > H ≈ 1.7 per-32 signature with bursty data traffic.
//!
//! 126.gcc has the largest code footprint in the paper's Table 3 (≈10.5k
//! static memory instructions): its lexer, insn patterns and folders are
//! huge generated function families. This analog mirrors that with 48
//! lexer-class functions (`lex_0..=47`) and 96 folding variants
//! (`fold_0..=95`), dispatched the way gcc dispatches on tree codes.

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{Gpr, Syscall};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const SRC_BYTES: i64 = 2048;
const KINDS: i64 = 256;
const LEX_VARIANTS: usize = 48;
const FOLD_VARIANTS: usize = 96;

/// AST node layout on the heap: { kind: i64, value: i64, left: ptr, right: ptr }.
const NODE_BYTES: i64 = 32;

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let src: Vec<u8> = (0..SRC_BYTES)
        .map(|i| (((i * 37) ^ (i >> 2) ^ 0x55) % 96 + 32) as u8)
        .collect();
    let kinds: Vec<i64> = (0..KINDS).map(|c| c % 7).collect();
    let g_src = pb.global_bytes("source", &src);
    let g_kinds = pb.global_words("kinds", &kinds);

    // lex_k(a0 = pos) -> v0 = token kind: leaf lexer-class functions, each
    // with its own second-level table rotation (gcc's char-class + keyword
    // lookups).
    let lex_names: Vec<String> = (0..LEX_VARIANTS).map(|k| format!("lex_{k}")).collect();
    for (k, name) in lex_names.iter().enumerate() {
        let mut lex = FunctionBuilder::new(name);
        let f = &mut lex;
        f.set_leaf();
        f.andi(Gpr::T0, Gpr::A0, (SRC_BYTES - 1) as i16);
        f.la_global(Gpr::T1, g_src);
        f.add(Gpr::T2, Gpr::T1, Gpr::T0);
        f.load_ptr_b(Gpr::T3, Gpr::T2, 0, Provenance::StaticVar);
        f.la_global(Gpr::T4, g_kinds);
        index_addr(f, Gpr::T5, Gpr::T4, Gpr::T3, 3, Gpr::T6);
        f.load_ptr(Gpr::T7, Gpr::T5, 0, Provenance::StaticVar);
        f.addi(Gpr::T7, Gpr::T7, (k as i16) + 1);
        f.andi(Gpr::T7, Gpr::T7, (KINDS - 1) as i16);
        index_addr(f, Gpr::T5, Gpr::T4, Gpr::T7, 3, Gpr::T6);
        f.load_ptr(Gpr::V0, Gpr::T5, 0, Provenance::StaticVar);
        if k % 2 == 1 {
            // Keyword probe for the odd classes.
            f.andi(Gpr::T7, Gpr::V0, (KINDS - 1) as i16);
            index_addr(f, Gpr::T5, Gpr::T4, Gpr::T7, 3, Gpr::T6);
            f.load_ptr(Gpr::T3, Gpr::T5, 0, Provenance::StaticVar);
            f.add(Gpr::V0, Gpr::V0, Gpr::T3);
        }
        f.add(Gpr::V0, Gpr::V0, Gpr::T7);
        pb.add_function(lex);
    }

    // mknode(a0 = kind, a1 = value, a2 = left, a3 = right) -> v0.
    // A frameless leaf: `malloc` is a syscall, so nothing needs saving.
    let mut mknode = FunctionBuilder::new("mknode");
    {
        let f = &mut mknode;
        f.set_leaf();
        f.mov(Gpr::T8, Gpr::A0); // malloc_imm clobbers a0
        f.malloc_imm(NODE_BYTES);
        f.store_ptr(Gpr::T8, Gpr::V0, 0, Provenance::HeapBlock);
        f.store_ptr(Gpr::A1, Gpr::V0, 8, Provenance::HeapBlock);
        f.store_ptr(Gpr::A2, Gpr::V0, 16, Provenance::HeapBlock);
        f.store_ptr(Gpr::A3, Gpr::V0, 24, Provenance::HeapBlock);
    }
    pb.add_function(mknode);

    // parse(a0 = pos, a1 = depth) -> v0 = tree: recursive descent,
    // dispatching to the lexer class of the current position.
    let mut parse = FunctionBuilder::new("parse");
    {
        let f = &mut parse;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        let left_slot = f.local(8);
        f.mov(Gpr::S0, Gpr::A0); // pos
        f.mov(Gpr::S1, Gpr::A1); // depth
                                 // Lexer class for this position.
        f.li(Gpr::T0, LEX_VARIANTS as i64);
        f.rem(Gpr::S3, Gpr::S0, Gpr::T0);
        let inner = f.new_label();
        f.bnez(Gpr::S1, inner);
        // Leaf: peek then consume; node = mknode(kind, pos, nil, nil).
        f.mov(Gpr::A0, Gpr::S0);
        dispatch_call(f, Gpr::S3, Gpr::T1, &lex_names); // peek
        f.addi(Gpr::A0, Gpr::S0, 1);
        dispatch_call(f, Gpr::S3, Gpr::T1, &lex_names); // consume
        f.mov(Gpr::A0, Gpr::V0);
        f.mov(Gpr::A1, Gpr::S0);
        f.li(Gpr::A2, 0);
        f.li(Gpr::A3, 0);
        f.call("mknode");
        f.ret();
        f.bind(inner);
        // left = parse(pos*2+1, depth-1)
        f.slli(Gpr::A0, Gpr::S0, 1);
        f.addi(Gpr::A0, Gpr::A0, 1);
        f.addi(Gpr::A1, Gpr::S1, -1);
        f.call("parse");
        f.store_local(Gpr::V0, left_slot, 0);
        // right = parse(pos*2+2, depth-1)
        f.slli(Gpr::A0, Gpr::S0, 1);
        f.addi(Gpr::A0, Gpr::A0, 2);
        f.addi(Gpr::A1, Gpr::S1, -1);
        f.call("parse");
        f.mov(Gpr::S2, Gpr::V0);
        // op kind = lex(pos); precedence lookup refines it (data load).
        f.mov(Gpr::A0, Gpr::S0);
        dispatch_call(f, Gpr::S3, Gpr::T1, &lex_names);
        f.andi(Gpr::T0, Gpr::V0, (KINDS - 1) as i16);
        f.la_global(Gpr::T1, g_kinds);
        index_addr(f, Gpr::T2, Gpr::T1, Gpr::T0, 3, Gpr::T3);
        f.load_ptr(Gpr::T4, Gpr::T2, 0, Provenance::StaticVar);
        f.add(Gpr::A0, Gpr::V0, Gpr::T4);
        f.li(Gpr::A1, 0);
        f.load_local(Gpr::A2, left_slot, 0);
        f.mov(Gpr::A3, Gpr::S2);
        f.call("mknode");
    }
    pb.add_function(parse);

    // fold_k(a0 = node) -> v0: recursive constant folding, one variant per
    // tree-code family (each recurses into itself, as gcc's fold does
    // through its case analysis).
    let fold_names: Vec<String> = (0..FOLD_VARIANTS).map(|k| format!("fold_{k}")).collect();
    for (k, name) in fold_names.iter().enumerate() {
        let mut fold = FunctionBuilder::new(name);
        let f = &mut fold;
        f.save(&[Gpr::S0, Gpr::S1]);
        let nonnil = f.new_label();
        f.bnez(Gpr::A0, nonnil);
        f.li(Gpr::V0, k as i64 & 0xff);
        f.ret();
        f.bind(nonnil);
        f.mov(Gpr::S0, Gpr::A0);
        f.load_ptr(Gpr::A0, Gpr::S0, 16, Provenance::HeapBlock); // left
        f.call(name);
        f.mov(Gpr::S1, Gpr::V0);
        f.load_ptr(Gpr::A0, Gpr::S0, 24, Provenance::HeapBlock); // right
        f.call(name);
        f.add(Gpr::T0, Gpr::S1, Gpr::V0);
        f.load_ptr(Gpr::T1, Gpr::S0, 0, Provenance::HeapBlock); // kind
        f.add(Gpr::T0, Gpr::T0, Gpr::T1);
        if k % 4 == 0 {
            // Some tree codes re-read the prior value.
            f.load_ptr(Gpr::T2, Gpr::S0, 8, Provenance::HeapBlock);
            f.add(Gpr::T0, Gpr::T0, Gpr::T2);
        }
        f.addi(Gpr::T0, Gpr::T0, k as i16);
        f.andi(Gpr::T0, Gpr::T0, 0xfff);
        f.store_ptr(Gpr::T0, Gpr::S0, 8, Provenance::HeapBlock); // value
        f.mov(Gpr::V0, Gpr::T0);
        pb.add_function(fold);
    }

    // release(a0 = node): recursive post-order free.
    let mut release = FunctionBuilder::new("release");
    {
        let f = &mut release;
        f.save(&[Gpr::S0]);
        let nonnil = f.new_label();
        f.bnez(Gpr::A0, nonnil);
        f.ret();
        f.bind(nonnil);
        f.mov(Gpr::S0, Gpr::A0);
        f.load_ptr(Gpr::A0, Gpr::S0, 16, Provenance::HeapBlock);
        f.call("release");
        f.load_ptr(Gpr::A0, Gpr::S0, 24, Provenance::HeapBlock);
        f.call("release");
        f.mov(Gpr::A0, Gpr::S0);
        f.syscall(Syscall::Free);
    }
    pb.add_function(release);

    // tokenize_pass(a0 = start pos) -> v0: a scan-only phase (gcc's
    // preprocessing) — dense data traffic, no allocation.
    let mut tokenize = FunctionBuilder::new("tokenize_pass");
    {
        let f = &mut tokenize;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3]);
        f.mov(Gpr::S2, Gpr::A0);
        f.li(Gpr::S3, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S1, 64, |f| {
            f.add(Gpr::A0, Gpr::S2, Gpr::S0);
            f.li(Gpr::T0, LEX_VARIANTS as i64);
            f.rem(Gpr::T2, Gpr::S0, Gpr::T0);
            dispatch_call(f, Gpr::T2, Gpr::T1, &lex_names);
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
        });
        f.mov(Gpr::V0, Gpr::S3);
    }
    pb.add_function(tokenize);

    // main: tokenize / parse / fold / release a stream of small functions.
    let g_cold_scratch = pb.global_zeroed("cold_scratch", 64 * 8);
    // Cold startup code (init_lang_*): the bulk of a real binary's
    // static footprint is such once-executed framed code.
    let cold = add_cold_functions(&mut pb, "init_lang", 1100, g_cold_scratch);

    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S3, Gpr::S4]);
        emit_cold_init(f, &cold);
        let iters = scale.apply(550);
        f.li(Gpr::S3, 0);
        counted_loop_imm(f, Gpr::S0, Gpr::S2, iters, |f| {
            // Preprocessing scan over this function's source window.
            f.li(Gpr::T0, 977);
            f.mul(Gpr::A0, Gpr::S0, Gpr::T0);
            f.andi(Gpr::A0, Gpr::A0, (SRC_BYTES - 1) as i16);
            f.call("tokenize_pass");
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            f.li(Gpr::T0, 977);
            f.mul(Gpr::A0, Gpr::S0, Gpr::T0);
            f.andi(Gpr::A0, Gpr::A0, (SRC_BYTES - 1) as i16);
            f.li(Gpr::A1, 4); // parse depth → 31 nodes
            f.call("parse");
            f.mov(Gpr::S1, Gpr::V0);
            // Fold with the tree-code variant for this "function".
            f.li(Gpr::T0, FOLD_VARIANTS as i64);
            f.rem(Gpr::S4, Gpr::S0, Gpr::T0);
            f.mov(Gpr::A0, Gpr::S1);
            dispatch_call(f, Gpr::S4, Gpr::T1, &fold_names);
            f.add(Gpr::S3, Gpr::S3, Gpr::V0);
            f.mov(Gpr::A0, Gpr::S1);
            f.call("release");
        });
        f.andi(Gpr::A0, Gpr::S3, 0x7fff);
        f.syscall(Syscall::PrintInt);
    }
    pb.add_function(main);

    pb.link("main").expect("gcc workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_mem::Region;
    use arl_sim::{Machine, SlidingWindowProfiler};

    #[test]
    fn gcc_is_stack_dominant_with_some_heap() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut w = SlidingWindowProfiler::new();
        let outcome = m.run_with(50_000_000, |e| w.observe(e)).expect("executes");
        assert!(outcome.exited);
        let s = &w.stats()[0];
        let (d, h, st) = (
            s.mean(Region::Data),
            s.mean(Region::Heap),
            s.mean(Region::Stack),
        );
        assert!(st > d && st > h, "stack dominates: D={d} H={h} S={st}");
        assert!(h > 0.2, "parser allocates on the heap: H={h}");
        assert!(d > 0.2, "lexer reads the data region: D={d}");
    }

    #[test]
    fn gcc_has_the_largest_static_footprint() {
        let p = build(Scale::tiny());
        let static_mem = p.static_mem_instructions().count();
        assert!(
            static_mem > 900,
            "lexer + folder families must give gcc a big footprint: {static_mem}"
        );
    }
}
