//! `go` — analog of 099.go.
//!
//! A game-tree searcher: a global board, pattern and edge tables (data
//! region), a recursive `search` over candidate moves (stack region, bursty
//! with call depth), and **no heap at all** — matching 099.go's signature
//! in Tables 1/2 (D ≈ 6.1, H = 0, S ≈ 3.6 per 32; stack strictly bursty).
//!
//! Like the real 099.go — whose pattern matchers compile to one of the
//! largest SPEC95 code footprints (≈7.9k static memory instructions in the
//! paper's Table 3) — the evaluator is a *family of position-class
//! specialized functions* (`eval_pos_0..=95`), dispatched on the position
//! class. This gives the workload a realistic static instruction footprint
//! for the ARPT-pressure experiments (Table 3, Figure 5).

use arl_asm::{FunctionBuilder, Program, ProgramBuilder, Provenance};
use arl_isa::{BranchCond, Gpr};

use crate::common::{
    add_cold_functions, counted_loop_imm, dispatch_call, emit_cold_init, index_addr,
};
use crate::suite::Scale;

const BOARD: i64 = 361; // 19 x 19
const PATTERNS: i64 = 256;
const EDGES: i64 = 128;
const EVAL_VARIANTS: usize = 96;

/// The neighbour-delta palette position-class evaluators draw from.
const DELTAS: [i16; 12] = [-20, -19, -18, -2, -1, 1, 2, 18, 19, 20, -38, 38];

pub(crate) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new();
    let board: Vec<i64> = (0..BOARD).map(|i| (i * 7919) % 3).collect();
    let patterns: Vec<i64> = (0..PATTERNS).map(|i| (i * 2654435761i64) % 97).collect();
    let edges: Vec<i64> = (0..EDGES).map(|i| (i * 31) % 19).collect();
    let g_board = pb.global_words("board", &board);
    let g_patterns = pb.global_words("patterns", &patterns);
    let g_edges = pb.global_words("edges", &edges);
    let g_history = pb.global_zeroed("history", BOARD as u64 * 8);
    let g_init_scratch = pb.global_zeroed("init_scratch", 64 * 8);
    // Cold startup code: joseki/pattern-table initializers, run once each.
    // Real go's static footprint is mostly such framed, rarely-hot code.
    let cold = add_cold_functions(&mut pb, "init_tables", 64, g_init_scratch);

    // eval_pos_k(a0 = pos) -> v0: scores a position from its
    // class-specific neighbourhood and the pattern tables. Leaf functions,
    // pure data-region traffic through computed pointers.
    let eval_names: Vec<String> = (0..EVAL_VARIANTS)
        .map(|k| format!("eval_pos_{k}"))
        .collect();
    for (k, name) in eval_names.iter().enumerate() {
        let mut eval = FunctionBuilder::new(name);
        let f = &mut eval;
        f.set_leaf();
        f.la_global(Gpr::T8, g_board);
        f.la_global(Gpr::T9, g_patterns);
        f.li(Gpr::V0, (k % 7) as i64);
        // Each class inspects 8 of the 12 palette deltas, rotated by k.
        for d in 0..8 {
            let delta = DELTAS[(k + d) % DELTAS.len()];
            f.addi(Gpr::T0, Gpr::A0, delta);
            f.andi(Gpr::T0, Gpr::T0, 511);
            f.li(Gpr::T3, BOARD);
            let in_range = f.new_label();
            f.br(BranchCond::Lt, Gpr::T0, Gpr::T3, in_range);
            f.sub(Gpr::T0, Gpr::T0, Gpr::T3);
            f.bind(in_range);
            index_addr(f, Gpr::T1, Gpr::T8, Gpr::T0, 3, Gpr::T2);
            f.load_ptr(Gpr::T4, Gpr::T1, 0, Provenance::StaticVar); // board[n]
            f.andi(Gpr::T5, Gpr::T0, (PATTERNS - 1) as i16);
            index_addr(f, Gpr::T6, Gpr::T9, Gpr::T5, 3, Gpr::T2);
            f.load_ptr(Gpr::T7, Gpr::T6, 0, Provenance::StaticVar); // patterns
            f.mul(Gpr::T4, Gpr::T4, Gpr::T7);
            f.add(Gpr::V0, Gpr::V0, Gpr::T4);
        }
        // A third of the classes are edge-sensitive.
        if k % 3 == 0 {
            f.la_global(Gpr::T9, g_edges);
            f.andi(Gpr::T5, Gpr::A0, (EDGES - 1) as i16);
            index_addr(f, Gpr::T6, Gpr::T9, Gpr::T5, 3, Gpr::T2);
            f.load_ptr(Gpr::T7, Gpr::T6, 0, Provenance::StaticVar);
            f.add(Gpr::V0, Gpr::V0, Gpr::T7);
        }
        f.andi(Gpr::V0, Gpr::V0, 0x7ff);
        pb.add_function(eval);
    }

    // search(a0 = pos, a1 = depth) -> v0: tries 6 candidate moves, plays
    // each on the global board, recurses, and undoes the move. Leaves
    // dispatch to the position-class evaluator.
    let mut search = FunctionBuilder::new("search");
    {
        let f = &mut search;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2, Gpr::S4, Gpr::S5]);
        let saved_stone = f.local(8);
        f.mov(Gpr::S0, Gpr::A0); // pos
        f.mov(Gpr::S1, Gpr::A1); // depth
                                 // Leaf: evaluate via the position class.
        let recurse = f.new_label();
        f.bnez(Gpr::S1, recurse);
        f.li(Gpr::T0, EVAL_VARIANTS as i64);
        f.rem(Gpr::S2, Gpr::S0, Gpr::T0); // position class
        f.mov(Gpr::A0, Gpr::S0);
        dispatch_call(f, Gpr::S2, Gpr::T1, &eval_names);
        f.ret();
        f.bind(recurse);
        f.li(Gpr::S5, 0); // best
        f.li(Gpr::S2, 0); // move index
        let loop_top = f.new_label();
        let loop_end = f.new_label();
        f.bind(loop_top);
        f.li(Gpr::T0, 6);
        f.br(BranchCond::Ge, Gpr::S2, Gpr::T0, loop_end);
        // candidate = (pos * 31 + move * 97 + depth) % BOARD
        f.li(Gpr::T1, 31);
        f.mul(Gpr::T2, Gpr::S0, Gpr::T1);
        f.li(Gpr::T1, 97);
        f.mul(Gpr::T3, Gpr::S2, Gpr::T1);
        f.add(Gpr::T2, Gpr::T2, Gpr::T3);
        f.add(Gpr::T2, Gpr::T2, Gpr::S1);
        f.li(Gpr::T1, BOARD);
        f.rem(Gpr::S3, Gpr::T2, Gpr::T1); // candidate square
                                          // Play: save stone, place ours.
        f.la_global(Gpr::T8, g_board);
        index_addr(f, Gpr::S4, Gpr::T8, Gpr::S3, 3, Gpr::T2);
        f.load_ptr(Gpr::T4, Gpr::S4, 0, Provenance::StaticVar);
        f.store_local(Gpr::T4, saved_stone, 0);
        f.li(Gpr::T5, 1);
        f.store_ptr(Gpr::T5, Gpr::S4, 0, Provenance::StaticVar);
        // Move-history heuristic update (data RMW).
        f.la_global(Gpr::T6, g_history);
        index_addr(f, Gpr::T7, Gpr::T6, Gpr::S3, 3, Gpr::T2);
        f.load_ptr(Gpr::T5, Gpr::T7, 0, Provenance::StaticVar);
        f.addi(Gpr::T5, Gpr::T5, 1);
        f.store_ptr(Gpr::T5, Gpr::T7, 0, Provenance::StaticVar);
        // Recurse.
        f.mov(Gpr::A0, Gpr::S3);
        f.addi(Gpr::A1, Gpr::S1, -1);
        f.call("search");
        // Undo move (the address in S4 survived the call as a callee-saved
        // register).
        f.load_local(Gpr::T4, saved_stone, 0);
        f.store_ptr(Gpr::T4, Gpr::S4, 0, Provenance::StaticVar);
        // best = max(best, result - move)
        f.sub(Gpr::V0, Gpr::V0, Gpr::S2);
        let keep = f.new_label();
        f.br(BranchCond::Ge, Gpr::S5, Gpr::V0, keep);
        f.mov(Gpr::S5, Gpr::V0);
        f.bind(keep);
        f.addi(Gpr::S2, Gpr::S2, 1);
        f.j(loop_top);
        f.bind(loop_end);
        f.mov(Gpr::V0, Gpr::S5);
    }
    pb.add_function(search);

    // main: play `games` root searches from rotating root positions.
    let mut main = FunctionBuilder::new("main");
    {
        let f = &mut main;
        f.save(&[Gpr::S0, Gpr::S1, Gpr::S2]);
        emit_cold_init(f, &cold);
        let games = scale.apply(24);
        f.li(Gpr::S1, 0); // accumulated score
        counted_loop_imm(f, Gpr::S0, Gpr::S2, games, |f| {
            f.li(Gpr::T0, 53);
            f.mul(Gpr::A0, Gpr::S0, Gpr::T0);
            f.li(Gpr::T0, BOARD);
            f.rem(Gpr::A0, Gpr::A0, Gpr::T0);
            f.li(Gpr::A1, 3); // search depth
            f.call("search");
            f.add(Gpr::S1, Gpr::S1, Gpr::V0);
        });
        f.print_int(Gpr::S1);
    }
    pb.add_function(main);

    pb.link("main").expect("go workload links")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_sim::{Machine, RegionProfiler};

    #[test]
    fn go_runs_and_avoids_the_heap() {
        let p = build(Scale::tiny());
        let mut m = Machine::new(&p);
        let mut profiler = RegionProfiler::new();
        let outcome = m
            .run_with(20_000_000, |e| profiler.observe(e))
            .expect("executes");
        assert!(outcome.exited, "go must run to completion");
        let b = profiler.breakdown();
        let heap: u64 = b.dynamic_counts[1]; // "H" class
        assert_eq!(heap, 0, "go never touches the heap");
        // Both data and stack traffic present.
        assert!(b.dynamic_counts[0] > 0);
        assert!(b.dynamic_counts[2] > 0);
        // Deterministic output.
        let mut m2 = Machine::new(&p);
        m2.run(20_000_000).unwrap();
        assert_eq!(m.output(), m2.output());
    }

    #[test]
    fn go_has_a_large_static_footprint() {
        let p = build(Scale::tiny());
        let static_mem = p.static_mem_instructions().count();
        assert!(
            static_mem > 1000,
            "the evaluator family must give go a realistic code footprint: {static_mem}"
        );
    }
}
