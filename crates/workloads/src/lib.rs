//! # arl-workloads — synthetic SPEC95-analog programs
//!
//! The paper evaluates on eight SPECint95 and four SPECfp95 programs
//! (Table 1). Those binaries (and the EGCS-for-PISA toolchain that built
//! them) are not available, so this crate provides twelve *synthetic
//! analogs* — real programs for the simulated ISA, written through the
//! `arl-asm` builder, each structured to reproduce its namesake's
//! memory-region signature:
//!
//! | analog | modeled after | character |
//! |---|---|---|
//! | `go` | 099.go | global board/pattern arrays + recursive search; no heap |
//! | `m88ksim` | 124.m88ksim | CPU simulator: global register/memory arrays, heap trace log, pointer params hitting multiple regions |
//! | `gcc` | 126.gcc | tokenizer + heap AST + recursive folding; stack-heavy |
//! | `compress` | 129.compress | tight LZW-style loop over global tables; data-dominant |
//! | `li` | 130.li | cons-cell interpreter: heap lists + deep recursion |
//! | `ijpeg` | 132.ijpeg | heap image, stack block buffers, bursty phases |
//! | `perl` | 134.perl | string hashing into heap chains; call-dense |
//! | `vortex` | 147.vortex | object store with validation copies; very stack-heavy |
//! | `tomcatv` | 101.tomcatv | FP mesh relaxation on global arrays + small heap scratch |
//! | `swim` | 102.swim | FP shallow-water stencils; no heap |
//! | `su2cor` | 103.su2cor | FP lattice sweeps; trace of heap |
//! | `mgrid` | 107.mgrid | FP multigrid; data-dominant |
//!
//! The signatures *emerge* from program structure (frames, recursion,
//! `malloc`, global arrays, pointer parameters) exactly as they do in the C
//! originals — no access is ever labelled by fiat.
//!
//! ```
//! use arl_workloads::{suite, Scale};
//!
//! let workloads = suite();
//! assert_eq!(workloads.len(), 12);
//! let program = workloads[0].build(Scale::tiny());
//! assert!(program.text_len() > 0);
//! ```

mod common;
mod compress;
mod gcc;
mod go;
mod ijpeg;
mod li;
mod m88ksim;
mod mgrid;
mod perl;
mod su2cor;
mod suite;
mod swim;
mod tomcatv;
mod vortex;

pub use suite::{suite, workload, Scale, WorkloadSpec};
