//! Symbolic handles used while building programs.

use std::fmt;

/// A branch target inside a single function, created by
/// [`FunctionBuilder::new_label`](crate::FunctionBuilder::new_label) and
/// bound with [`FunctionBuilder::bind`](crate::FunctionBuilder::bind).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(pub(crate) usize);

/// A slot in the current function's stack frame (a local variable, spill
/// slot, or outgoing-argument area), identified by its byte offset from the
/// frame pointer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FrameSlot {
    pub(crate) offset: i16,
    pub(crate) size: u32,
}

impl FrameSlot {
    /// Byte offset of the slot from the frame pointer.
    pub fn offset(&self) -> i16 {
        self.offset
    }

    /// Size of the slot in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }
}

/// A named object in the data segment, created by
/// [`ProgramBuilder::global_zeroed`](crate::ProgramBuilder::global_zeroed) or
/// [`ProgramBuilder::global_bytes`](crate::ProgramBuilder::global_bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalRef {
    pub(crate) offset: u64,
    pub(crate) size: u64,
}

impl GlobalRef {
    /// Byte offset of the object from the data-segment base.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Size of the object in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }
}

/// What the compiler front end knows about the storage a memory instruction
/// touches — the inputs to the paper's Figure 6 `classify_mem` algorithm.
///
/// The program builder records one of these for every load/store it emits.
/// `arl-core::hints` turns it into a stack / non-stack / unknown tag exactly
/// as the paper's compiler algorithm would.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Provenance {
    /// Direct access to a local variable or spill slot (`is_local_var`).
    LocalVar,
    /// Access to a static/global object (`is_static_var`).
    StaticVar,
    /// Dereference of a pointer every definition of which traces to
    /// `malloc` (`point_to_nonstack` on all UD-chain defs).
    HeapBlock,
    /// Dereference of a pointer every definition of which traces to the
    /// address of a stack object (`point_to_stack` on all defs).
    PointsToStack,
    /// Dereference of a function parameter (`is_function_param`) — the
    /// compiler cannot classify it.
    FunctionParam,
    /// The UD chain mixes stack and non-stack definitions, or the analysis
    /// otherwise gives up.
    #[default]
    Mixed,
}

impl Provenance {
    /// Whether Figure 6's algorithm resolves this provenance to a definite
    /// region (stack or non-stack) rather than `MT_UNKNOWN`.
    pub fn is_classifiable(self) -> bool {
        !matches!(self, Provenance::FunctionParam | Provenance::Mixed)
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Provenance::LocalVar => "local",
            Provenance::StaticVar => "static",
            Provenance::HeapBlock => "heap",
            Provenance::PointsToStack => "points-to-stack",
            Provenance::FunctionParam => "param",
            Provenance::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifiability() {
        assert!(Provenance::LocalVar.is_classifiable());
        assert!(Provenance::StaticVar.is_classifiable());
        assert!(Provenance::HeapBlock.is_classifiable());
        assert!(Provenance::PointsToStack.is_classifiable());
        assert!(!Provenance::FunctionParam.is_classifiable());
        assert!(!Provenance::Mixed.is_classifiable());
    }
}
