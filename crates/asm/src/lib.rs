//! # arl-asm — programmatic assembler and linker
//!
//! Workloads are written as Rust code that *builds* programs for the
//! simulated ISA, the way a C compiler would: named functions with stack
//! frames, callee-saved registers, globals in the data segment, `malloc`
//! for heap storage, and calls following the MIPS-style convention
//! (`$a0..$a3` arguments, `$v0` result, `$ra` link).
//!
//! Because the builder plays the role of the compiler front end, it records
//! for every memory instruction what the compiler would know about the
//! accessed storage — a [`Provenance`] — which feeds the Figure 6
//! `classify_mem` analysis in `arl-core` (the "compiler hints" of
//! Section 3.5.2).
//!
//! ```
//! use arl_asm::{FunctionBuilder, ProgramBuilder};
//! use arl_isa::Gpr;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main");
//! let x = f.local(8);
//! f.li(Gpr::T0, 41);
//! f.addi(Gpr::T0, Gpr::T0, 1);
//! f.store_local(Gpr::T0, x, 0);   // a stack access
//! f.load_local(Gpr::A0, x, 0);
//! f.print_int(Gpr::A0);
//! pb.add_function(f);
//! let program = pb.link("main").expect("link");
//! assert!(program.text_len() > 0);
//! ```

mod func;
mod object;
mod program;
mod types;

pub use func::FunctionBuilder;
pub use object::ObjectError;
pub use program::{LinkError, Program, ProgramBuilder};
pub use types::{FrameSlot, GlobalRef, Label, Provenance};
