//! Linking and the executable [`Program`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use arl_isa::{AluOp, Gpr, Inst, MemOpInfo, Syscall, INST_BYTES};
use arl_mem::Layout;

use crate::func::{AsmInst, FunctionBuilder};
use crate::types::{GlobalRef, Provenance};

/// Errors produced while linking a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// A call or address-of referenced a function that was never added.
    UnknownFunction {
        /// The missing function's name.
        name: String,
    },
    /// Two functions share a name.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// A label was branched to but never bound.
    UnboundLabel {
        /// Function containing the dangling branch.
        func: String,
    },
    /// The requested entry function does not exist.
    MissingEntry {
        /// The entry name that was requested.
        name: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::UnknownFunction { name } => write!(f, "call to unknown function `{name}`"),
            LinkError::DuplicateFunction { name } => write!(f, "duplicate function `{name}`"),
            LinkError::UnboundLabel { func } => {
                write!(f, "unbound label in function `{func}`")
            }
            LinkError::MissingEntry { name } => write!(f, "entry function `{name}` not found"),
        }
    }
}

impl Error for LinkError {}

/// Accumulates globals and functions, then links them into a [`Program`].
#[derive(Default, Debug)]
pub struct ProgramBuilder {
    layout: Layout,
    data: Vec<u8>,
    globals: HashMap<String, GlobalRef>,
    functions: Vec<FunctionBuilder>,
}

impl ProgramBuilder {
    /// Creates an empty builder over the default [`Layout`].
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            layout: Layout::default(),
            data: Vec::new(),
            globals: HashMap::new(),
            functions: Vec::new(),
        }
    }

    /// The layout programs will be linked against.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    fn align_data(&mut self, align: usize) {
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Reserves a zero-initialized global of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name exists.
    pub fn global_zeroed(&mut self, name: &str, size: u64) -> GlobalRef {
        self.align_data(8);
        let gref = GlobalRef {
            offset: self.data.len() as u64,
            size,
        };
        self.data.resize(self.data.len() + size as usize, 0);
        let prev = self.globals.insert(name.to_string(), gref);
        assert!(prev.is_none(), "duplicate global `{name}`");
        gref
    }

    /// Installs an initialized global from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name exists.
    pub fn global_bytes(&mut self, name: &str, bytes: &[u8]) -> GlobalRef {
        self.align_data(8);
        let gref = GlobalRef {
            offset: self.data.len() as u64,
            size: bytes.len() as u64,
        };
        self.data.extend_from_slice(bytes);
        let prev = self.globals.insert(name.to_string(), gref);
        assert!(prev.is_none(), "duplicate global `{name}`");
        gref
    }

    /// Installs an initialized global of 64-bit words.
    pub fn global_words(&mut self, name: &str, words: &[i64]) -> GlobalRef {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.global_bytes(name, &bytes)
    }

    /// Installs an initialized global of `f64`s.
    pub fn global_f64s(&mut self, name: &str, values: &[f64]) -> GlobalRef {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.global_bytes(name, &bytes)
    }

    /// Looks up a previously declared global by name.
    pub fn global(&self, name: &str) -> Option<GlobalRef> {
        self.globals.get(name).copied()
    }

    /// Adds a finished function.
    pub fn add_function(&mut self, func: FunctionBuilder) {
        self.functions.push(func);
    }

    /// Links everything into an executable [`Program`] whose `_start` stub
    /// establishes `$gp`/`$sp`/`$fp`, calls `entry`, and exits.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] for unknown/duplicate functions, unbound
    /// labels, or a missing entry point.
    pub fn link(&self, entry: &str) -> Result<Program, LinkError> {
        // _start stub: li gp; li sp; mov fp, sp; jal entry; li a0,0; exit.
        // li of 32-bit constants is 2 words, so the stub is 2+2+1+1+1+1 = 8.
        const STUB_WORDS: u64 = 8;
        let text_base = self.layout.text_base();

        // Lay out functions after the stub and build the symbol table.
        let mut symbols: HashMap<String, u64> = HashMap::new();
        let mut finalized = Vec::with_capacity(self.functions.len());
        let mut pc = text_base + STUB_WORDS * INST_BYTES;
        for f in &self.functions {
            if symbols.contains_key(f.name()) {
                return Err(LinkError::DuplicateFunction {
                    name: f.name().to_string(),
                });
            }
            symbols.insert(f.name().to_string(), pc);
            let (insts, prov, labels) = f.finalize();
            let words: u64 = insts.iter().map(AsmInst::expanded_len).sum();
            finalized.push((f.name().to_string(), pc, insts, prov, labels));
            pc += words * INST_BYTES;
        }
        let entry_pc = *symbols.get(entry).ok_or_else(|| LinkError::MissingEntry {
            name: entry.to_string(),
        })?;

        let mut insts: Vec<Inst> = Vec::new();
        let mut prov_out: Vec<Provenance> = Vec::new();
        let mut emit = |inst: Inst| {
            insts.push(inst);
        };

        // _start stub.
        let gp = self.layout.data_base() as u32;
        emit(Inst::Lui {
            rd: Gpr::GP,
            imm: (gp >> 16) as u16,
        });
        emit(Inst::AluI {
            op: AluOp::Or,
            rd: Gpr::GP,
            rs: Gpr::GP,
            imm: (gp & 0xffff) as u16 as i16,
        });
        let sp = self.layout.stack_top() as u32;
        emit(Inst::Lui {
            rd: Gpr::SP,
            imm: (sp >> 16) as u16,
        });
        emit(Inst::AluI {
            op: AluOp::Or,
            rd: Gpr::SP,
            rs: Gpr::SP,
            imm: (sp & 0xffff) as u16 as i16,
        });
        emit(Inst::AluI {
            op: AluOp::Add,
            rd: Gpr::FP,
            rs: Gpr::SP,
            imm: 0,
        });
        emit(Inst::Jal { target: entry_pc });
        emit(Inst::AluI {
            op: AluOp::Add,
            rd: Gpr::A0,
            rs: Gpr::ZERO,
            imm: 0,
        });
        emit(Inst::Sys {
            call: Syscall::Exit,
        });
        debug_assert_eq!(insts.len() as u64, STUB_WORDS);
        prov_out.resize(insts.len(), Provenance::Mixed);

        // Functions.
        for (name, base_pc, asm, prov, labels) in &finalized {
            // Precompute each AsmInst's pc (LaFunc expands to 2 words).
            let mut pcs = Vec::with_capacity(asm.len());
            let mut cur = *base_pc;
            for a in asm {
                pcs.push(cur);
                cur += a.expanded_len() * INST_BYTES;
            }
            let label_pc = |idx: usize| -> Result<u64, LinkError> {
                let inst_idx = labels
                    .get(idx)
                    .copied()
                    .flatten()
                    .ok_or_else(|| LinkError::UnboundLabel { func: name.clone() })?;
                Ok(if inst_idx == asm.len() {
                    cur
                } else {
                    pcs[inst_idx]
                })
            };
            for (a, p) in asm.iter().zip(prov) {
                match a {
                    AsmInst::Inst(i) => {
                        insts.push(*i);
                        prov_out.push(*p);
                    }
                    AsmInst::Branch {
                        cond,
                        rs,
                        rt,
                        label,
                    } => {
                        insts.push(Inst::Branch {
                            cond: *cond,
                            rs: *rs,
                            rt: *rt,
                            target: label_pc(label.0)?,
                        });
                        prov_out.push(*p);
                    }
                    AsmInst::Jump { label } => {
                        insts.push(Inst::Jump {
                            target: label_pc(label.0)?,
                        });
                        prov_out.push(*p);
                    }
                    AsmInst::Call { func } => {
                        let target = *symbols
                            .get(func)
                            .ok_or_else(|| LinkError::UnknownFunction { name: func.clone() })?;
                        insts.push(Inst::Jal { target });
                        prov_out.push(*p);
                    }
                    AsmInst::LaFunc { rd, func } => {
                        let target = *symbols
                            .get(func)
                            .ok_or_else(|| LinkError::UnknownFunction { name: func.clone() })?
                            as u32;
                        insts.push(Inst::Lui {
                            rd: *rd,
                            imm: (target >> 16) as u16,
                        });
                        insts.push(Inst::AluI {
                            op: AluOp::Or,
                            rd: *rd,
                            rs: *rd,
                            imm: (target & 0xffff) as u16 as i16,
                        });
                        prov_out.push(*p);
                        prov_out.push(*p);
                    }
                }
            }
        }

        Ok(Program {
            layout: self.layout,
            insts,
            prov: prov_out,
            data: self.data.clone(),
            entry_pc: text_base,
            symbols,
        })
    }
}

/// A linked, executable program: text, initialized data, symbols, and the
/// per-instruction compiler knowledge.
#[derive(Clone, Debug)]
pub struct Program {
    layout: Layout,
    insts: Vec<Inst>,
    prov: Vec<Provenance>,
    data: Vec<u8>,
    entry_pc: u64,
    symbols: HashMap<String, u64>,
}

impl Program {
    /// Reassembles a program from its constituent parts (used by the
    /// object-image loader).
    ///
    /// # Panics
    ///
    /// Panics if `prov` and `insts` differ in length.
    pub(crate) fn from_parts(
        insts: Vec<Inst>,
        prov: Vec<Provenance>,
        data: Vec<u8>,
        entry_pc: u64,
        symbols: HashMap<String, u64>,
    ) -> Program {
        assert_eq!(
            insts.len(),
            prov.len(),
            "one provenance tag per instruction"
        );
        Program {
            layout: Layout::default(),
            insts,
            prov,
            data,
            entry_pc,
            symbols,
        }
    }

    /// The layout the program was linked against.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The symbol table (function name → pc).
    pub fn symbols(&self) -> &HashMap<String, u64> {
        &self.symbols
    }

    /// The pc execution starts at (the `_start` stub).
    pub fn entry_pc(&self) -> u64 {
        self.entry_pc
    }

    /// Number of instructions in the text segment.
    pub fn text_len(&self) -> usize {
        self.insts.len()
    }

    /// The instruction at `pc`, if it lies in text.
    pub fn inst_at(&self, pc: u64) -> Option<&Inst> {
        let base = self.layout.text_base();
        if pc < base || !(pc - base).is_multiple_of(INST_BYTES) {
            return None;
        }
        self.insts.get(((pc - base) / INST_BYTES) as usize)
    }

    /// The compiler-knowledge tag for the memory instruction at `pc`;
    /// `None` if `pc` is not a memory instruction.
    pub fn provenance_at(&self, pc: u64) -> Option<Provenance> {
        let inst = self.inst_at(pc)?;
        if !inst.is_mem() {
            return None;
        }
        let idx = ((pc - self.layout.text_base()) / INST_BYTES) as usize;
        self.prov.get(idx).copied()
    }

    /// Initial contents of the data segment.
    pub fn data_image(&self) -> &[u8] {
        &self.data
    }

    /// The address of a linked function.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Iterates `(pc, inst)` over the whole text segment.
    pub fn iter_text(&self) -> impl Iterator<Item = (u64, &Inst)> {
        let base = self.layout.text_base();
        self.insts
            .iter()
            .enumerate()
            .map(move |(i, inst)| (base + i as u64 * INST_BYTES, inst))
    }

    /// Iterates the static memory instructions as
    /// `(pc, MemOpInfo, Provenance)` — the population Figures 2, 4, 5 and
    /// Table 3 are computed over.
    pub fn static_mem_instructions(
        &self,
    ) -> impl Iterator<Item = (u64, MemOpInfo, Provenance)> + '_ {
        self.iter_text().filter_map(|(pc, inst)| {
            inst.mem_op().map(|info| {
                let idx = ((pc - self.layout.text_base()) / INST_BYTES) as usize;
                (pc, info, self.prov[idx])
            })
        })
    }

    /// Renders a full disassembly listing.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut addr_to_name: HashMap<u64, &str> = HashMap::new();
        for (name, &pc) in &self.symbols {
            addr_to_name.insert(pc, name);
        }
        for (pc, inst) in self.iter_text() {
            if let Some(name) = addr_to_name.get(&pc) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "  {pc:#010x}  {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_isa::BranchCond;

    fn trivial_main() -> FunctionBuilder {
        let mut f = FunctionBuilder::new("main");
        f.li(Gpr::V0, 3);
        f
    }

    #[test]
    fn link_produces_stub_and_symbols() {
        let mut pb = ProgramBuilder::new();
        pb.add_function(trivial_main());
        let p = pb.link("main").unwrap();
        assert_eq!(p.entry_pc(), p.layout().text_base());
        let main_pc = p.symbol("main").unwrap();
        assert_eq!(main_pc, p.layout().text_base() + 8 * INST_BYTES);
        // The stub's jal targets main.
        let jal_pc = p.layout().text_base() + 5 * INST_BYTES;
        assert_eq!(p.inst_at(jal_pc), Some(&Inst::Jal { target: main_pc }));
    }

    #[test]
    fn missing_entry_is_an_error() {
        let pb = ProgramBuilder::new();
        assert!(matches!(
            pb.link("main"),
            Err(LinkError::MissingEntry { name }) if name == "main"
        ));
    }

    #[test]
    fn unknown_call_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut f = trivial_main();
        f.call("nothere");
        pb.add_function(f);
        assert!(matches!(
            pb.link("main"),
            Err(LinkError::UnknownFunction { name }) if name == "nothere"
        ));
    }

    #[test]
    fn duplicate_function_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.add_function(trivial_main());
        pb.add_function(trivial_main());
        assert!(matches!(
            pb.link("main"),
            Err(LinkError::DuplicateFunction { .. })
        ));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut f = trivial_main();
        let dangling = f.new_label();
        f.br(BranchCond::Eq, Gpr::T0, Gpr::ZERO, dangling);
        pb.add_function(f);
        assert!(matches!(
            pb.link("main"),
            Err(LinkError::UnboundLabel { .. })
        ));
    }

    #[test]
    fn branch_targets_resolve_to_bound_pcs() {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main");
        let top = f.new_label();
        f.li(Gpr::T0, 5);
        f.bind(top);
        f.addi(Gpr::T0, Gpr::T0, -1);
        f.br(BranchCond::Gt, Gpr::T0, Gpr::ZERO, top);
        pb.add_function(f);
        let p = pb.link("main").unwrap();
        // Find the branch and check its target is the addi's pc.
        let (branch_pc, target) = p
            .iter_text()
            .find_map(|(pc, i)| match i {
                Inst::Branch { target, .. } => Some((pc, *target)),
                _ => None,
            })
            .expect("program contains a branch");
        assert!(target < branch_pc, "loop branch targets backwards");
        assert!(matches!(
            p.inst_at(target),
            Some(Inst::AluI { op: AluOp::Add, .. })
        ));
    }

    #[test]
    fn globals_are_laid_out_disjointly() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global_zeroed("a", 100);
        let b = pb.global_words("b", &[1, 2, 3]);
        let c = pb.global_f64s("c", &[1.5]);
        assert!(a.offset() + a.size() <= b.offset());
        assert!(b.offset() + b.size() <= c.offset());
        assert_eq!(pb.global("b"), Some(b));
        pb.add_function(trivial_main());
        let p = pb.link("main").unwrap();
        // Initialized data visible in the image.
        let off = b.offset() as usize;
        assert_eq!(
            i64::from_le_bytes(p.data_image()[off..off + 8].try_into().unwrap()),
            1
        );
    }

    #[test]
    fn provenance_tracks_memory_instructions() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_zeroed("g", 8);
        let mut f = FunctionBuilder::new("main");
        let slot = f.local(8);
        f.store_local(Gpr::ZERO, slot, 0);
        f.load_global(Gpr::T0, g, 0);
        pb.add_function(f);
        let p = pb.link("main").unwrap();
        let tags: Vec<Provenance> = p
            .static_mem_instructions()
            .map(|(_, _, prov)| prov)
            .collect();
        // Prologue spills (LocalVar), body store (LocalVar), body load
        // (StaticVar), epilogue reloads (LocalVar).
        assert!(tags.contains(&Provenance::StaticVar));
        assert!(tags.iter().filter(|&&t| t == Provenance::LocalVar).count() >= 4);
    }

    #[test]
    fn la_func_expands_to_two_words() {
        let mut pb = ProgramBuilder::new();
        let mut f = trivial_main();
        f.la_func(Gpr::T9, "aux");
        f.call_reg(Gpr::T9);
        let mut aux = FunctionBuilder::new("aux");
        aux.nop();
        pb.add_function(f);
        pb.add_function(aux);
        let p = pb.link("main").unwrap();
        let aux_pc = p.symbol("aux").unwrap();
        // Somewhere in main there is lui t9 / ori t9 forming aux_pc.
        let lui = p
            .iter_text()
            .find_map(|(_, i)| match i {
                Inst::Lui { rd, imm } if *rd == Gpr::T9 => Some(*imm),
                _ => None,
            })
            .expect("lui t9 present");
        assert_eq!((lui as u64) << 16 | (aux_pc & 0xffff), aux_pc);
    }

    #[test]
    fn disassembly_lists_symbols() {
        let mut pb = ProgramBuilder::new();
        pb.add_function(trivial_main());
        let p = pb.link("main").unwrap();
        let d = p.disassemble();
        assert!(d.contains("main:"));
        assert!(d.contains("jal"));
    }
}
