//! Function-level program construction.

use arl_isa::{AluOp, BranchCond, FAluOp, FCmpOp, Fpr, Gpr, Inst, Syscall, Width};
use arl_mem::Layout;

use crate::types::{FrameSlot, GlobalRef, Label, Provenance};

/// An instruction that may still contain symbolic references, resolved at
/// link time.
#[derive(Clone, Debug)]
pub(crate) enum AsmInst {
    /// Fully resolved instruction.
    Inst(Inst),
    /// Conditional branch to a function-local label.
    Branch {
        cond: BranchCond,
        rs: Gpr,
        rt: Gpr,
        label: Label,
    },
    /// Unconditional jump to a function-local label.
    Jump { label: Label },
    /// Call to a named function.
    Call { func: String },
    /// Load the address of a named function (for indirect calls). Expands to
    /// `lui`+`ori`, so it occupies **two** instruction slots at link time.
    LaFunc { rd: Gpr, func: String },
}

impl AsmInst {
    /// Number of instruction words this entry expands to.
    pub(crate) fn expanded_len(&self) -> u64 {
        match self {
            AsmInst::LaFunc { .. } => 2,
            _ => 1,
        }
    }
}

/// Builds one function: a straight-line list of instructions with symbolic
/// labels, a stack frame of declared [`FrameSlot`]s, and an automatically
/// generated prologue/epilogue that saves `$ra`, `$fp`, and any requested
/// callee-saved registers.
///
/// Frame layout after the prologue (`$fp == $sp`):
///
/// ```text
/// fp + total-8      saved $ra
/// fp + total-16     saved $fp (caller's)
/// fp + total-24 ...  saved callee-saved registers
/// fp + 0 .. locals   declared frame slots
/// ```
///
/// All prologue/epilogue traffic is tagged [`Provenance::LocalVar`] — these
/// are exactly the register spills and reloads the paper counts as stack
/// accesses.
#[derive(Clone, Debug)]
pub struct FunctionBuilder {
    name: String,
    pub(crate) body: Vec<AsmInst>,
    pub(crate) prov: Vec<Provenance>,
    pub(crate) labels: Vec<Option<usize>>,
    local_bytes: i64,
    saved: Vec<Gpr>,
    exit_label: Label,
    layout: Layout,
    leaf: bool,
    makes_calls: bool,
}

impl FunctionBuilder {
    /// Starts building a function with the given (link-time) name.
    pub fn new(name: &str) -> FunctionBuilder {
        let mut f = FunctionBuilder {
            name: name.to_string(),
            body: Vec::new(),
            prov: Vec::new(),
            labels: Vec::new(),
            local_bytes: 0,
            saved: Vec::new(),
            exit_label: Label(0),
            layout: Layout::default(),
            leaf: false,
            makes_calls: false,
        };
        f.exit_label = f.new_label();
        f
    }

    /// Marks this function as a *leaf*: no frame is built at all (no stack
    /// adjustment, no `$ra`/`$fp` spill) and the epilogue is a bare
    /// `jr $ra` — the code a compiler emits for small leaf routines.
    ///
    /// # Panics
    ///
    /// Panics at link time if the function declared locals, requested
    /// saved registers, or makes calls.
    pub fn set_leaf(&mut self) {
        self.leaf = true;
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Requests that `regs` be preserved across this function (saved in the
    /// prologue, restored in the epilogue).
    pub fn save(&mut self, regs: &[Gpr]) {
        for &r in regs {
            if !self.saved.contains(&r) {
                self.saved.push(r);
            }
        }
    }

    /// Declares a frame slot of `size` bytes (rounded up to 8) and returns
    /// its handle.
    ///
    /// # Panics
    ///
    /// Panics if the frame would exceed the 16 KiB local-area budget (frame
    /// offsets must stay within the 16-bit displacement of the ISA).
    pub fn local(&mut self, size: u32) -> FrameSlot {
        let size = size.max(1).div_ceil(8) * 8;
        let offset = self.local_bytes;
        self.local_bytes += size as i64;
        assert!(
            self.local_bytes <= 16 * 1024,
            "function `{}`: frame local area exceeds 16 KiB",
            self.name
        );
        FrameSlot {
            offset: offset as i16,
            size,
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice in `{}`",
            self.name
        );
        self.labels[label.0] = Some(self.body.len());
    }

    fn push(&mut self, inst: AsmInst, prov: Provenance) {
        self.body.push(inst);
        self.prov.push(prov);
    }

    fn push_inst(&mut self, inst: Inst) {
        self.push(AsmInst::Inst(inst), Provenance::Mixed);
    }

    /// Emits a raw instruction with an explicit provenance tag (escape
    /// hatch; prefer the typed emitters).
    pub fn raw(&mut self, inst: Inst, prov: Provenance) {
        self.push(AsmInst::Inst(inst), prov);
    }

    // ---- integer ALU -----------------------------------------------------

    fn alu(&mut self, op: AluOp, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.push_inst(Inst::Alu { op, rd, rs, rt });
    }

    fn alui(&mut self, op: AluOp, rd: Gpr, rs: Gpr, imm: i16) {
        self.push_inst(Inst::AluI { op, rd, rs, imm });
    }

    /// `rd = rs + rt`
    pub fn add(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Add, rd, rs, rt);
    }

    /// `rd = rs - rt`
    pub fn sub(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Sub, rd, rs, rt);
    }

    /// `rd = rs * rt`
    pub fn mul(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Mul, rd, rs, rt);
    }

    /// `rd = rs / rt` (0 when `rt == 0`)
    pub fn div(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Div, rd, rs, rt);
    }

    /// `rd = rs % rt` (`rs` when `rt == 0`)
    pub fn rem(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Rem, rd, rs, rt);
    }

    /// `rd = rs & rt`
    pub fn and(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::And, rd, rs, rt);
    }

    /// `rd = rs | rt`
    pub fn or(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Or, rd, rs, rt);
    }

    /// `rd = rs ^ rt`
    pub fn xor(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Xor, rd, rs, rt);
    }

    /// `rd = rs << rt`
    pub fn sll(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Sll, rd, rs, rt);
    }

    /// `rd = rs >> rt` (logical)
    pub fn srl(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Srl, rd, rs, rt);
    }

    /// `rd = (rs < rt) as i64` (signed)
    pub fn slt(&mut self, rd: Gpr, rs: Gpr, rt: Gpr) {
        self.alu(AluOp::Slt, rd, rs, rt);
    }

    /// `rd = rs + imm`
    pub fn addi(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Add, rd, rs, imm);
    }

    /// `rd = rs & imm` (imm zero-extended)
    pub fn andi(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::And, rd, rs, imm);
    }

    /// `rd = rs | imm` (imm zero-extended)
    pub fn ori(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Or, rd, rs, imm);
    }

    /// `rd = rs ^ imm` (imm zero-extended)
    pub fn xori(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Xor, rd, rs, imm);
    }

    /// `rd = (rs < imm) as i64`
    pub fn slti(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Slt, rd, rs, imm);
    }

    /// `rd = rs << imm`
    pub fn slli(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Sll, rd, rs, imm);
    }

    /// `rd = rs >> imm` (logical)
    pub fn srli(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Srl, rd, rs, imm);
    }

    /// `rd = rs >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Gpr, rs: Gpr, imm: i16) {
        self.alui(AluOp::Sra, rd, rs, imm);
    }

    /// `rd = rs`
    pub fn mov(&mut self, rd: Gpr, rs: Gpr) {
        self.addi(rd, rs, 0);
    }

    /// Loads a 32-bit constant (sign-extended to 64) into `rd`.
    ///
    /// Expands to `addi` when the value fits 16 bits, else `lui` (+ `ori`).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in 32 bits.
    pub fn li(&mut self, rd: Gpr, value: i64) {
        if let Ok(imm) = i16::try_from(value) {
            self.addi(rd, Gpr::ZERO, imm);
            return;
        }
        let v = i32::try_from(value).expect("li constant must fit in 32 bits") as u32;
        self.push_inst(Inst::Lui {
            rd,
            imm: (v >> 16) as u16,
        });
        if v & 0xffff != 0 {
            self.ori(rd, rd, (v & 0xffff) as u16 as i16);
        }
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.push_inst(Inst::Nop);
    }

    // ---- memory ----------------------------------------------------------

    /// Loads the address of a global into `rd`.
    pub fn la_global(&mut self, rd: Gpr, global: GlobalRef) {
        let addr = self.layout.data_base() + global.offset;
        self.li(rd, addr as i64);
    }

    /// Loads the address of frame slot `slot` (+`extra`) into `rd` —
    /// the "address-taken local" pattern that creates stack-pointer
    /// parameters.
    pub fn addr_of_local(&mut self, rd: Gpr, slot: FrameSlot, extra: i16) {
        self.addi(rd, Gpr::FP, slot.offset + extra);
    }

    fn load(
        &mut self,
        width: Width,
        signed: bool,
        rd: Gpr,
        base: Gpr,
        offset: i16,
        prov: Provenance,
    ) {
        self.push(
            AsmInst::Inst(Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            }),
            prov,
        );
    }

    fn store(&mut self, width: Width, rs: Gpr, base: Gpr, offset: i16, prov: Provenance) {
        self.push(
            AsmInst::Inst(Inst::Store {
                width,
                rs,
                base,
                offset,
            }),
            prov,
        );
    }

    /// Loads a 64-bit word from a frame slot (a stack access).
    pub fn load_local(&mut self, rd: Gpr, slot: FrameSlot, off: i16) {
        self.load(
            Width::Double,
            true,
            rd,
            Gpr::FP,
            slot.offset + off,
            Provenance::LocalVar,
        );
    }

    /// Stores a 64-bit word to a frame slot (a stack access).
    pub fn store_local(&mut self, rs: Gpr, slot: FrameSlot, off: i16) {
        self.store(
            Width::Double,
            rs,
            Gpr::FP,
            slot.offset + off,
            Provenance::LocalVar,
        );
    }

    /// Loads a 32-bit word (sign-extended) from a frame slot.
    pub fn load_local_w(&mut self, rd: Gpr, slot: FrameSlot, off: i16) {
        self.load(
            Width::Word,
            true,
            rd,
            Gpr::FP,
            slot.offset + off,
            Provenance::LocalVar,
        );
    }

    /// Stores a 32-bit word to a frame slot.
    pub fn store_local_w(&mut self, rs: Gpr, slot: FrameSlot, off: i16) {
        self.store(
            Width::Word,
            rs,
            Gpr::FP,
            slot.offset + off,
            Provenance::LocalVar,
        );
    }

    /// Loads a 64-bit word from a global scalar. Uses `$gp`-relative
    /// addressing when the displacement fits, revealing the region to the
    /// static heuristics; falls back to an absolute address in `$at`.
    pub fn load_global(&mut self, rd: Gpr, global: GlobalRef, off: i16) {
        let disp = global.offset as i64 + off as i64;
        if let Ok(disp16) = i16::try_from(disp) {
            self.load(
                Width::Double,
                true,
                rd,
                Gpr::GP,
                disp16,
                Provenance::StaticVar,
            );
        } else {
            self.la_global(Gpr::AT, global);
            self.load(Width::Double, true, rd, Gpr::AT, off, Provenance::StaticVar);
        }
    }

    /// Stores a 64-bit word to a global scalar (see [`Self::load_global`]).
    pub fn store_global(&mut self, rs: Gpr, global: GlobalRef, off: i16) {
        let disp = global.offset as i64 + off as i64;
        if let Ok(disp16) = i16::try_from(disp) {
            self.store(Width::Double, rs, Gpr::GP, disp16, Provenance::StaticVar);
        } else {
            assert_ne!(rs, Gpr::AT, "store_global: value register clashes with $at");
            self.la_global(Gpr::AT, global);
            self.store(Width::Double, rs, Gpr::AT, off, Provenance::StaticVar);
        }
    }

    /// Loads a 64-bit word through a pointer register with an explicit
    /// compiler-knowledge tag (heap block, function parameter, ...).
    pub fn load_ptr(&mut self, rd: Gpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.load(Width::Double, true, rd, ptr, off, prov);
    }

    /// Stores a 64-bit word through a pointer register.
    pub fn store_ptr(&mut self, rs: Gpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.store(Width::Double, rs, ptr, off, prov);
    }

    /// Loads a 32-bit word (sign-extended) through a pointer register.
    pub fn load_ptr_w(&mut self, rd: Gpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.load(Width::Word, true, rd, ptr, off, prov);
    }

    /// Stores a 32-bit word through a pointer register.
    pub fn store_ptr_w(&mut self, rs: Gpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.store(Width::Word, rs, ptr, off, prov);
    }

    /// Loads a byte (zero-extended) through a pointer register.
    pub fn load_ptr_b(&mut self, rd: Gpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.load(Width::Byte, false, rd, ptr, off, prov);
    }

    /// Stores a byte through a pointer register.
    pub fn store_ptr_b(&mut self, rs: Gpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.store(Width::Byte, rs, ptr, off, prov);
    }

    // ---- floating point --------------------------------------------------

    /// Loads an `f64` from a frame slot.
    pub fn fload_local(&mut self, fd: Fpr, slot: FrameSlot, off: i16) {
        self.push(
            AsmInst::Inst(Inst::FLoad {
                fd,
                base: Gpr::FP,
                offset: slot.offset + off,
            }),
            Provenance::LocalVar,
        );
    }

    /// Stores an `f64` to a frame slot.
    pub fn fstore_local(&mut self, fs: Fpr, slot: FrameSlot, off: i16) {
        self.push(
            AsmInst::Inst(Inst::FStore {
                fs,
                base: Gpr::FP,
                offset: slot.offset + off,
            }),
            Provenance::LocalVar,
        );
    }

    /// Loads an `f64` through a pointer register.
    pub fn fload_ptr(&mut self, fd: Fpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.push(
            AsmInst::Inst(Inst::FLoad {
                fd,
                base: ptr,
                offset: off,
            }),
            prov,
        );
    }

    /// Stores an `f64` through a pointer register.
    pub fn fstore_ptr(&mut self, fs: Fpr, ptr: Gpr, off: i16, prov: Provenance) {
        self.push(
            AsmInst::Inst(Inst::FStore {
                fs,
                base: ptr,
                offset: off,
            }),
            prov,
        );
    }

    /// `fd = fs op ft`
    pub fn falu(&mut self, op: FAluOp, fd: Fpr, fs: Fpr, ft: Fpr) {
        self.push_inst(Inst::FAlu { op, fd, fs, ft });
    }

    /// `fd = fs + ft`
    pub fn fadd(&mut self, fd: Fpr, fs: Fpr, ft: Fpr) {
        self.falu(FAluOp::Add, fd, fs, ft);
    }

    /// `fd = fs - ft`
    pub fn fsub(&mut self, fd: Fpr, fs: Fpr, ft: Fpr) {
        self.falu(FAluOp::Sub, fd, fs, ft);
    }

    /// `fd = fs * ft`
    pub fn fmul(&mut self, fd: Fpr, fs: Fpr, ft: Fpr) {
        self.falu(FAluOp::Mul, fd, fs, ft);
    }

    /// `fd = fs / ft`
    pub fn fdiv(&mut self, fd: Fpr, fs: Fpr, ft: Fpr) {
        self.falu(FAluOp::Div, fd, fs, ft);
    }

    /// `rd = (fs cmp ft) as i64`
    pub fn fcmp(&mut self, op: FCmpOp, rd: Gpr, fs: Fpr, ft: Fpr) {
        self.push_inst(Inst::FCmp { op, rd, fs, ft });
    }

    /// `fd = rs as f64`
    pub fn cvt_if(&mut self, fd: Fpr, rs: Gpr) {
        self.push_inst(Inst::CvtIf { fd, rs });
    }

    /// `rd = fs as i64`
    pub fn cvt_fi(&mut self, rd: Gpr, fs: Fpr) {
        self.push_inst(Inst::CvtFi { rd, fs });
    }

    // ---- control flow ----------------------------------------------------

    /// Conditional branch to `label`.
    pub fn br(&mut self, cond: BranchCond, rs: Gpr, rt: Gpr, label: Label) {
        self.push(
            AsmInst::Branch {
                cond,
                rs,
                rt,
                label,
            },
            Provenance::Mixed,
        );
    }

    /// Branch to `label` if `rs == 0`.
    pub fn beqz(&mut self, rs: Gpr, label: Label) {
        self.br(BranchCond::Eq, rs, Gpr::ZERO, label);
    }

    /// Branch to `label` if `rs != 0`.
    pub fn bnez(&mut self, rs: Gpr, label: Label) {
        self.br(BranchCond::Ne, rs, Gpr::ZERO, label);
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: Label) {
        self.push(AsmInst::Jump { label }, Provenance::Mixed);
    }

    /// Calls the named function (`jal` at link time).
    pub fn call(&mut self, func: &str) {
        self.makes_calls = true;
        self.push(
            AsmInst::Call {
                func: func.to_string(),
            },
            Provenance::Mixed,
        );
    }

    /// Loads the address of a named function into `rd` (two instruction
    /// words at link time); pair with [`Self::call_reg`].
    pub fn la_func(&mut self, rd: Gpr, func: &str) {
        self.push(
            AsmInst::LaFunc {
                rd,
                func: func.to_string(),
            },
            Provenance::Mixed,
        );
    }

    /// Indirect call through `rs` (`jalr`).
    pub fn call_reg(&mut self, rs: Gpr) {
        self.makes_calls = true;
        self.push_inst(Inst::Jalr { rd: Gpr::RA, rs });
    }

    /// Returns from the function (jumps to the shared epilogue).
    pub fn ret(&mut self) {
        let exit = self.exit_label;
        self.j(exit);
    }

    // ---- run-time system -------------------------------------------------

    /// Emits a bare syscall.
    pub fn syscall(&mut self, call: Syscall) {
        self.push_inst(Inst::Sys { call });
    }

    /// `$v0 = malloc($a0)`; `$a0` must already hold the size.
    pub fn malloc(&mut self) {
        self.syscall(Syscall::Malloc);
    }

    /// `$v0 = malloc(bytes)`.
    pub fn malloc_imm(&mut self, bytes: i64) {
        self.li(Gpr::A0, bytes);
        self.malloc();
    }

    /// `free($a0)`; `$a0` must hold the pointer.
    pub fn free(&mut self) {
        self.syscall(Syscall::Free);
    }

    /// Prints the integer in `rs`.
    pub fn print_int(&mut self, rs: Gpr) {
        if rs != Gpr::A0 {
            self.mov(Gpr::A0, rs);
        }
        self.syscall(Syscall::PrintInt);
    }

    /// Terminates the program with exit code 0.
    pub fn exit0(&mut self) {
        self.li(Gpr::A0, 0);
        self.syscall(Syscall::Exit);
    }

    // ---- finalization (link time) ------------------------------------------

    /// Total frame size: locals + save area, 16-byte aligned.
    pub(crate) fn frame_total(&self) -> i64 {
        let save = 16 + 8 * self.saved.len() as i64;
        (self.local_bytes + save + 15) / 16 * 16
    }

    /// Expands prologue + body + epilogue into a flat symbolic instruction
    /// list with every label bound. Returns the list, its parallel
    /// provenance list, and the label table as indices into the list.
    pub(crate) fn finalize(&self) -> (Vec<AsmInst>, Vec<Provenance>, Vec<Option<usize>>) {
        if self.leaf {
            assert!(
                self.local_bytes == 0 && self.saved.is_empty() && !self.makes_calls,
                "leaf function `{}` must not use locals, saved registers, or calls",
                self.name
            );
            let mut insts: Vec<AsmInst> = self.body.clone();
            let mut prov = self.prov.clone();
            let epilogue_start = insts.len();
            insts.push(AsmInst::Inst(Inst::Jr { rs: Gpr::RA }));
            prov.push(Provenance::Mixed);
            let mut labels = self.labels.clone();
            labels[self.exit_label.0] = Some(epilogue_start);
            return (insts, prov, labels);
        }
        let total = self.frame_total();
        assert!(total <= i16::MAX as i64, "frame too large");
        let t = total as i16;
        let mut insts: Vec<AsmInst> = Vec::with_capacity(self.body.len() + 16);
        let mut prov: Vec<Provenance> = Vec::with_capacity(self.body.len() + 16);
        let emit =
            |inst: Inst, p: Provenance, insts: &mut Vec<AsmInst>, prov: &mut Vec<Provenance>| {
                insts.push(AsmInst::Inst(inst));
                prov.push(p);
            };
        // Prologue: grow stack, spill ra/fp/saved (SP-relative, the way a
        // compiler spills), establish the frame pointer.
        emit(
            Inst::AluI {
                op: AluOp::Add,
                rd: Gpr::SP,
                rs: Gpr::SP,
                imm: -t,
            },
            Provenance::Mixed,
            &mut insts,
            &mut prov,
        );
        emit(
            Inst::Store {
                width: Width::Double,
                rs: Gpr::RA,
                base: Gpr::SP,
                offset: t - 8,
            },
            Provenance::LocalVar,
            &mut insts,
            &mut prov,
        );
        emit(
            Inst::Store {
                width: Width::Double,
                rs: Gpr::FP,
                base: Gpr::SP,
                offset: t - 16,
            },
            Provenance::LocalVar,
            &mut insts,
            &mut prov,
        );
        for (i, &r) in self.saved.iter().enumerate() {
            emit(
                Inst::Store {
                    width: Width::Double,
                    rs: r,
                    base: Gpr::SP,
                    offset: t - 24 - 8 * i as i16,
                },
                Provenance::LocalVar,
                &mut insts,
                &mut prov,
            );
        }
        emit(
            Inst::AluI {
                op: AluOp::Add,
                rd: Gpr::FP,
                rs: Gpr::SP,
                imm: 0,
            },
            Provenance::Mixed,
            &mut insts,
            &mut prov,
        );
        let prologue_len = insts.len();

        // Body (labels shift by prologue_len).
        insts.extend(self.body.iter().cloned());
        prov.extend(self.prov.iter().copied());

        // Epilogue (exit label binds here).
        let epilogue_start = insts.len();
        for (i, &r) in self.saved.iter().enumerate().rev() {
            emit(
                Inst::Load {
                    width: Width::Double,
                    signed: true,
                    rd: r,
                    base: Gpr::SP,
                    offset: t - 24 - 8 * i as i16,
                },
                Provenance::LocalVar,
                &mut insts,
                &mut prov,
            );
        }
        emit(
            Inst::Load {
                width: Width::Double,
                signed: true,
                rd: Gpr::FP,
                base: Gpr::SP,
                offset: t - 16,
            },
            Provenance::LocalVar,
            &mut insts,
            &mut prov,
        );
        emit(
            Inst::Load {
                width: Width::Double,
                signed: true,
                rd: Gpr::RA,
                base: Gpr::SP,
                offset: t - 8,
            },
            Provenance::LocalVar,
            &mut insts,
            &mut prov,
        );
        emit(
            Inst::AluI {
                op: AluOp::Add,
                rd: Gpr::SP,
                rs: Gpr::SP,
                imm: t,
            },
            Provenance::Mixed,
            &mut insts,
            &mut prov,
        );
        emit(
            Inst::Jr { rs: Gpr::RA },
            Provenance::Mixed,
            &mut insts,
            &mut prov,
        );

        // Shift labels past the prologue; bind the exit label.
        let mut labels: Vec<Option<usize>> = self
            .labels
            .iter()
            .map(|l| l.map(|idx| idx + prologue_len))
            .collect();
        labels[self.exit_label.0] = Some(epilogue_start);
        (insts, prov, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locals_are_disjoint_and_aligned() {
        let mut f = FunctionBuilder::new("f");
        let a = f.local(1);
        let b = f.local(12);
        let c = f.local(8);
        assert_eq!(a.offset(), 0);
        assert_eq!(a.size(), 8);
        assert_eq!(b.offset(), 8);
        assert_eq!(b.size(), 16);
        assert_eq!(c.offset(), 24);
    }

    #[test]
    fn finalize_wraps_body_with_prologue_epilogue() {
        let mut f = FunctionBuilder::new("f");
        f.nop();
        let (insts, prov, _) = f.finalize();
        assert_eq!(insts.len(), prov.len());
        // 4 prologue + body(1) + epilogue(ld fp, ld ra, addi sp, jr).
        assert_eq!(insts.len(), 4 + 1 + 4);
        assert!(matches!(insts.last(), Some(AsmInst::Inst(Inst::Jr { rs })) if *rs == Gpr::RA));
    }

    #[test]
    fn ret_targets_epilogue() {
        let mut f = FunctionBuilder::new("f");
        f.ret();
        f.nop();
        let (insts, _, labels) = f.finalize();
        // Exit label must point at the epilogue start (after prologue+body).
        let epilogue_start = labels[0].expect("exit label bound");
        assert_eq!(epilogue_start, 4 + 2);
        assert!(matches!(
            insts[epilogue_start],
            AsmInst::Inst(Inst::Load { .. })
        ));
    }

    #[test]
    fn saved_registers_spill_and_reload() {
        let mut f = FunctionBuilder::new("f");
        f.save(&[Gpr::S0, Gpr::S1]);
        f.save(&[Gpr::S0]); // idempotent
        let (insts, prov, _) = f.finalize();
        let stores = insts
            .iter()
            .filter(|i| matches!(i, AsmInst::Inst(inst) if inst.is_store()))
            .count();
        let loads = insts
            .iter()
            .filter(|i| matches!(i, AsmInst::Inst(inst) if inst.is_load()))
            .count();
        assert_eq!(stores, 4); // ra, fp, s0, s1
        assert_eq!(loads, 4);
        // All spill traffic is tagged as local-variable (stack) accesses.
        let mem_prov: Vec<Provenance> = insts
            .iter()
            .zip(&prov)
            .filter(|(i, _)| matches!(i, AsmInst::Inst(inst) if inst.is_mem()))
            .map(|(_, &p)| p)
            .collect();
        assert!(mem_prov.iter().all(|&p| p == Provenance::LocalVar));
    }

    #[test]
    fn leaf_function_has_no_frame() {
        let mut f = FunctionBuilder::new("leafy");
        f.set_leaf();
        f.addi(Gpr::V0, Gpr::A0, 1);
        let (insts, prov, labels) = f.finalize();
        assert_eq!(insts.len(), 2); // body + jr ra
        assert_eq!(insts.len(), prov.len());
        assert!(matches!(insts.last(), Some(AsmInst::Inst(Inst::Jr { rs })) if *rs == Gpr::RA));
        // No memory traffic at all.
        assert!(!insts
            .iter()
            .any(|i| matches!(i, AsmInst::Inst(inst) if inst.is_mem())));
        // ret targets the bare jr.
        assert_eq!(labels[0], Some(1));
    }

    #[test]
    #[should_panic(expected = "leaf function")]
    fn leaf_with_calls_panics_at_finalize() {
        let mut f = FunctionBuilder::new("bad");
        f.set_leaf();
        f.call("other");
        let _ = f.finalize();
    }

    #[test]
    #[should_panic(expected = "leaf function")]
    fn leaf_with_locals_panics_at_finalize() {
        let mut f = FunctionBuilder::new("bad");
        f.set_leaf();
        let _ = f.local(8);
        let _ = f.finalize();
    }

    #[test]
    fn li_expansions() {
        let mut f = FunctionBuilder::new("f");
        f.li(Gpr::T0, 7); // addi
        f.li(Gpr::T1, 0x12345); // lui+ori
        f.li(Gpr::T2, 0x10000); // lui only
        f.li(Gpr::T3, -70000); // negative 32-bit
        assert_eq!(f.body.len(), 1 + 2 + 1 + 2);
    }

    #[test]
    #[should_panic(expected = "frame local area exceeds")]
    fn oversized_frame_panics() {
        let mut f = FunctionBuilder::new("f");
        let _ = f.local(20 * 1024);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut f = FunctionBuilder::new("f");
        let l = f.new_label();
        f.bind(l);
        f.bind(l);
    }
}
