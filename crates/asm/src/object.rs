//! A simple on-disk object format for linked programs.
//!
//! The paper's closing argument is that the hardware predictor "allows us
//! to run existing binaries on a data-decoupled processor without any
//! modification" — which presumes binaries exist as artifacts. This module
//! gives [`Program`] a stable binary encoding (`ARL1`), so workloads can be
//! built once, saved, and re-run or exchanged:
//!
//! ```text
//! offset  field
//! 0       magic "ARL1"
//! 4       entry pc            (u64 LE)
//! 12      text length         (u32 LE, instruction words)
//! 16      data length         (u32 LE, bytes)
//! 20      symbol count        (u32 LE)
//! 24      text                (length × u64 LE encoded instructions)
//! ...     provenance          (length × u8, one tag per instruction)
//! ...     data                (raw bytes)
//! ...     symbols             (u16 LE name length, name bytes, u64 LE pc)*
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use arl_isa::{decode, encode, DecodeError};

use crate::program::Program;
use crate::types::Provenance;

const MAGIC: &[u8; 4] = b"ARL1";

/// Errors produced while reading an object image.
#[derive(Debug)]
pub enum ObjectError {
    /// The image does not start with the `ARL1` magic.
    BadMagic,
    /// The image is shorter than its header claims.
    Truncated,
    /// An instruction word failed to decode.
    BadInstruction(DecodeError),
    /// A provenance tag byte is out of range.
    BadProvenance(u8),
    /// A symbol name is not valid UTF-8.
    BadSymbolName,
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::BadMagic => write!(f, "not an ARL1 object image"),
            ObjectError::Truncated => write!(f, "object image is truncated"),
            ObjectError::BadInstruction(e) => write!(f, "bad instruction: {e}"),
            ObjectError::BadProvenance(b) => write!(f, "bad provenance tag {b}"),
            ObjectError::BadSymbolName => write!(f, "symbol name is not UTF-8"),
        }
    }
}

impl Error for ObjectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ObjectError::BadInstruction(e) => Some(e),
            _ => None,
        }
    }
}

fn prov_code(p: Provenance) -> u8 {
    match p {
        Provenance::LocalVar => 0,
        Provenance::StaticVar => 1,
        Provenance::HeapBlock => 2,
        Provenance::PointsToStack => 3,
        Provenance::FunctionParam => 4,
        Provenance::Mixed => 5,
    }
}

fn prov_from(code: u8) -> Result<Provenance, ObjectError> {
    Ok(match code {
        0 => Provenance::LocalVar,
        1 => Provenance::StaticVar,
        2 => Provenance::HeapBlock,
        3 => Provenance::PointsToStack,
        4 => Provenance::FunctionParam,
        5 => Provenance::Mixed,
        b => return Err(ObjectError::BadProvenance(b)),
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjectError> {
        if self.pos + n > self.bytes.len() {
            return Err(ObjectError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ObjectError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ObjectError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ObjectError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Program {
    /// Serializes the program into an `ARL1` object image.
    pub fn to_object_bytes(&self) -> Vec<u8> {
        let insts: Vec<_> = self.iter_text().map(|(_, i)| *i).collect();
        let mut out = Vec::with_capacity(24 + insts.len() * 9 + self.data_image().len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.entry_pc().to_le_bytes());
        out.extend_from_slice(&(insts.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data_image().len() as u32).to_le_bytes());
        let symbols = self.symbols();
        out.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
        for inst in &insts {
            out.extend_from_slice(&encode(inst).to_le_bytes());
        }
        for (pc, _) in self.iter_text() {
            let tag = self
                .provenance_at(pc)
                .map(prov_code)
                .unwrap_or(prov_code(Provenance::Mixed));
            out.push(tag);
        }
        out.extend_from_slice(self.data_image());
        let mut names: Vec<(&String, &u64)> = symbols.iter().collect();
        names.sort();
        for (name, &pc) in names {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&pc.to_le_bytes());
        }
        out
    }

    /// Reconstructs a program from an `ARL1` object image.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectError`] for malformed images.
    pub fn from_object_bytes(bytes: &[u8]) -> Result<Program, ObjectError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ObjectError::BadMagic);
        }
        let entry_pc = r.u64()?;
        let text_len = r.u32()? as usize;
        let data_len = r.u32()? as usize;
        let symbol_count = r.u32()? as usize;
        let mut insts = Vec::with_capacity(text_len);
        for _ in 0..text_len {
            let word = r.u64()?;
            insts.push(decode(word).map_err(ObjectError::BadInstruction)?);
        }
        let mut prov = Vec::with_capacity(text_len);
        for &b in r.take(text_len)? {
            prov.push(prov_from(b)?);
        }
        let data = r.take(data_len)?.to_vec();
        let mut symbols = HashMap::with_capacity(symbol_count);
        for _ in 0..symbol_count {
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| ObjectError::BadSymbolName)?
                .to_string();
            let pc = r.u64()?;
            symbols.insert(name, pc);
        }
        Ok(Program::from_parts(insts, prov, data, entry_pc, symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, ProgramBuilder};
    use arl_isa::Gpr;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_words("tbl", &[7, 8, 9]);
        let mut aux = FunctionBuilder::new("aux");
        aux.addi(Gpr::V0, Gpr::A0, 1);
        pb.add_function(aux);
        let mut f = FunctionBuilder::new("main");
        let slot = f.local(8);
        f.load_global(Gpr::A0, g, 8);
        f.call("aux");
        f.store_local(Gpr::V0, slot, 0);
        f.load_local(Gpr::A0, slot, 0);
        f.print_int(Gpr::A0);
        pb.add_function(f);
        pb.link("main").unwrap()
    }

    #[test]
    fn object_round_trip_preserves_everything() {
        let p = sample();
        let bytes = p.to_object_bytes();
        let q = Program::from_object_bytes(&bytes).unwrap();
        assert_eq!(p.entry_pc(), q.entry_pc());
        assert_eq!(p.text_len(), q.text_len());
        assert_eq!(p.data_image(), q.data_image());
        assert_eq!(p.symbol("main"), q.symbol("main"));
        assert_eq!(p.symbol("aux"), q.symbol("aux"));
        for (pc, inst) in p.iter_text() {
            assert_eq!(Some(inst), q.inst_at(pc));
            assert_eq!(p.provenance_at(pc), q.provenance_at(pc));
        }
    }

    #[test]
    fn reloaded_programs_disassemble_identically() {
        // (Execution equivalence is covered by an integration test in the
        // facade crate, since `arl-asm` cannot depend on `arl-sim`.)
        let p = sample();
        let q = Program::from_object_bytes(&p.to_object_bytes()).unwrap();
        assert_eq!(p.disassemble(), q.disassemble());
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let p = sample();
        let mut bytes = p.to_object_bytes();
        assert!(matches!(
            Program::from_object_bytes(&bytes[..10]),
            Err(ObjectError::Truncated)
        ));
        bytes[0] = b'X';
        assert!(matches!(
            Program::from_object_bytes(&bytes),
            Err(ObjectError::BadMagic)
        ));
        let mut garbage_text = p.to_object_bytes();
        // Stomp the first instruction word with an invalid opcode.
        garbage_text[24..32].copy_from_slice(&0xff00_0000_0000_0000u64.to_le_bytes());
        assert!(matches!(
            Program::from_object_bytes(&garbage_text),
            Err(ObjectError::BadInstruction(_))
        ));
    }
}
