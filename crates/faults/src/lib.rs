//! # arl-faults — seeded deterministic fault planning and classification
//!
//! The fault-injection campaign (`arl-bench`'s `fault_campaign` binary)
//! needs three things this crate provides:
//!
//! 1. **Planning**: turn a `(layer, seed, index)` triple into one concrete
//!    fault — a trace-byte corruption/truncation ([`TraceFault`]) or a
//!    materialized timing-layer fault ([`arl_timing::TimingFault`]:
//!    ARPT soft errors, port blackouts, latency spikes). Planning is a
//!    pure function of its inputs (a [`SplitMix64`] stream seeded from
//!    them); no wall clock, no global RNG — the same seed always yields
//!    the same campaign.
//! 2. **Plan syntax**: the `ARL_FAULT` environment variable
//!    (`<layer>:<seed>[:<count>]`, comma-separated; `all` expands to
//!    every layer) parsed by [`parse_plan`] / [`plan_from_env`].
//! 3. **Classification**: each injected fault's observed effect mapped to
//!    a [`FaultOutcome`] — masked, detected, recovered, fatal, or silent.
//!    *Silent* (the run completed with a functionally different result
//!    and nothing noticed) is the outcome the campaign exists to prove
//!    impossible; the CI gate fails on any non-zero silent count.

use arl_timing::{FaultKind, Route, TimingFault};

/// Sebastiano Vigna's SplitMix64: a tiny, high-quality, seedable stream.
/// Deterministic by construction — the only entropy is the caller's seed.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// The per-fault planning stream: independent of other indices under the
/// same seed, so adding faults never re-rolls existing ones.
fn fault_rng(seed: u64, index: u32) -> SplitMix64 {
    let mut mix = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index as u64 + 1));
    // Discard one output so adjacent indices decorrelate fully.
    mix.next_u64();
    mix
}

/// Plans the `index`-th I/O fault of a chaos campaign against a
/// calibrated durable-operation sequence (see [`arl_sink::parse_io_trace`]).
///
/// The fault kind rotates `kill → short → enospc → rename` so any four
/// consecutive points cover every failure mode, and within each kind the
/// target operation and the torn-prefix length are drawn from the seeded
/// per-index stream (the layer planners' seeding scheme, applied to I/O) — the same seed always
/// aims the same faults at the same ops. Returns `None` when `ops` holds
/// no operation the rotation's kind can target.
pub fn plan_io_fault(
    seed: u64,
    index: u32,
    ops: &[arl_sink::IoOp],
) -> Option<arl_sink::PlannedIoFault> {
    use arl_sink::{IoFault, OpKind, PlannedIoFault};
    // Offset the stream domain from the trace/arpt/port planners so a
    // shared seed never correlates I/O faults with simulator faults.
    let mut rng = fault_rng(seed ^ 0x010F_A417, index);
    let data_ops: Vec<&arl_sink::IoOp> = ops
        .iter()
        .filter(|o| o.kind != OpKind::Rename && o.bytes > 0)
        .collect();
    let rename_ops: Vec<&arl_sink::IoOp> =
        ops.iter().filter(|o| o.kind == OpKind::Rename).collect();
    let pick = |rng: &mut SplitMix64, pool: &[&arl_sink::IoOp]| -> Option<(u64, u64)> {
        if pool.is_empty() {
            return None;
        }
        let op = pool[rng.below(pool.len() as u64) as usize];
        Some((op.op, op.bytes))
    };
    match index % 4 {
        // A SIGKILL mid-write: any durable op can host it.
        0 => {
            let all: Vec<&arl_sink::IoOp> = ops.iter().collect();
            let (op, bytes) = pick(&mut rng, &all)?;
            let keep = rng.below(bytes); // 0 for rename ops (no payload)
            Some(PlannedIoFault {
                op,
                fault: IoFault::Kill { keep },
            })
        }
        1 => {
            let (op, bytes) = pick(&mut rng, &data_ops)?;
            let keep = rng.below(bytes);
            Some(PlannedIoFault {
                op,
                fault: IoFault::ShortWrite { keep },
            })
        }
        2 => {
            let (op, bytes) = pick(&mut rng, &data_ops)?;
            let keep = rng.below(bytes);
            Some(PlannedIoFault {
                op,
                fault: IoFault::Enospc { keep },
            })
        }
        _ => {
            let (op, _) = pick(&mut rng, &rename_ops)?;
            Some(PlannedIoFault {
                op,
                fault: IoFault::InterruptedRename,
            })
        }
    }
}

/// The layer a fault is injected into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layer {
    /// Byte corruption / truncation of a captured `.arltrace` container.
    Trace,
    /// Soft errors in the ARPT array.
    Arpt,
    /// First-level memory-port blackouts and latency spikes.
    Port,
}

impl Layer {
    /// Every layer, in campaign order.
    pub const ALL: [Layer; 3] = [Layer::Trace, Layer::Arpt, Layer::Port];

    /// Stable lowercase label (plan syntax, JSON).
    pub fn label(self) -> &'static str {
        match self {
            Layer::Trace => "trace",
            Layer::Arpt => "arpt",
            Layer::Port => "port",
        }
    }
}

/// One parsed `ARL_FAULT` clause: inject `count` seeded faults into
/// `layer`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LayerPlan {
    /// Target layer.
    pub layer: Layer,
    /// Base seed for the layer's fault stream.
    pub seed: u64,
    /// Faults to inject (indices `0..count`).
    pub count: u32,
}

/// Seed used when `ARL_FAULT` is unset.
pub const DEFAULT_SEED: u64 = 42;

/// Per-layer fault count used when a clause omits `:<count>`.
pub const DEFAULT_COUNT: u32 = 2;

/// A malformed `ARL_FAULT` value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// A clause was not `<layer>:<seed>[:<count>]`.
    Syntax(String),
    /// The layer name is not `trace`, `arpt`, `port`, or `all`.
    UnknownLayer(String),
    /// The seed or count did not parse as an unsigned integer.
    Number(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Syntax(clause) => {
                write!(f, "expected <layer>:<seed>[:<count>], got {clause:?}")
            }
            PlanError::UnknownLayer(layer) => {
                write!(f, "unknown fault layer {layer:?} (trace|arpt|port|all)")
            }
            PlanError::Number(value) => write!(f, "invalid number {value:?} in fault plan"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Parses an `ARL_FAULT` value: comma-separated
/// `<layer>:<seed>[:<count>]` clauses, where `<layer>` is `trace`,
/// `arpt`, `port`, or `all` (which expands to the three layers with the
/// same seed and count, in [`Layer::ALL`] order).
///
/// # Errors
///
/// Returns a [`PlanError`] describing the first malformed clause.
pub fn parse_plan(value: &str) -> Result<Vec<LayerPlan>, PlanError> {
    let mut plans = Vec::new();
    for clause in value.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let mut parts = clause.split(':');
        let layer = parts.next().unwrap_or_default().trim();
        let seed = parts
            .next()
            .ok_or_else(|| PlanError::Syntax(clause.to_string()))?
            .trim();
        let count = parts.next().map(str::trim);
        if parts.next().is_some() {
            return Err(PlanError::Syntax(clause.to_string()));
        }
        let seed: u64 = seed
            .parse()
            .map_err(|_| PlanError::Number(seed.to_string()))?;
        let count: u32 = match count {
            Some(c) => c.parse().map_err(|_| PlanError::Number(c.to_string()))?,
            None => DEFAULT_COUNT,
        };
        let layers: &[Layer] = match layer {
            "trace" => &[Layer::Trace],
            "arpt" => &[Layer::Arpt],
            "port" => &[Layer::Port],
            "all" => &Layer::ALL,
            other => return Err(PlanError::UnknownLayer(other.to_string())),
        };
        plans.extend(layers.iter().map(|&layer| LayerPlan { layer, seed, count }));
    }
    Ok(plans)
}

/// Reads `ARL_FAULT`; unset defaults to `all:DEFAULT_SEED:DEFAULT_COUNT`.
///
/// # Errors
///
/// Returns the [`PlanError`] from [`parse_plan`] when the value is set
/// but malformed.
pub fn plan_from_env() -> Result<Vec<LayerPlan>, PlanError> {
    match std::env::var("ARL_FAULT") {
        Ok(value) => parse_plan(&value),
        Err(_) => Ok(Layer::ALL
            .iter()
            .map(|&layer| LayerPlan {
                layer,
                seed: DEFAULT_SEED,
                count: DEFAULT_COUNT,
            })
            .collect()),
    }
}

// ---- trace-layer faults -----------------------------------------------------

/// One planned corruption of a serialized trace container.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceFault {
    /// XOR `mask` (never zero) into the byte at `offset`.
    FlipByte {
        /// Byte offset into the container.
        offset: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Truncate the container to `len` bytes (always shorter than the
    /// original).
    Truncate {
        /// Bytes to keep.
        len: usize,
    },
}

impl TraceFault {
    /// Stable human-readable description for fault records.
    pub fn describe(&self) -> String {
        match *self {
            TraceFault::FlipByte { offset, mask } => {
                format!("flip byte {offset} mask {mask:#04x}")
            }
            TraceFault::Truncate { len } => format!("truncate to {len} bytes"),
        }
    }
}

/// Plans the `index`-th trace fault under `seed` for a container of
/// `trace_len` bytes. Even indices flip a byte anywhere in the container;
/// odd indices truncate it at an arbitrary offset — together they cover
/// both corruption modes the decoder must reject.
pub fn plan_trace_fault(seed: u64, index: u32, trace_len: usize) -> TraceFault {
    let mut rng = fault_rng(seed, index);
    if index.is_multiple_of(2) {
        let offset = rng.below(trace_len as u64) as usize;
        // 1..=255: a zero mask would be a no-op, not a fault.
        let mask = (rng.below(255) + 1) as u8;
        TraceFault::FlipByte { offset, mask }
    } else {
        TraceFault::Truncate {
            len: rng.below(trace_len as u64) as usize,
        }
    }
}

/// Applies a planned trace fault to a copy of `bytes`.
pub fn apply_trace_fault(bytes: &[u8], fault: &TraceFault) -> Vec<u8> {
    match *fault {
        TraceFault::FlipByte { offset, mask } => {
            let mut out = bytes.to_vec();
            if let Some(b) = out.get_mut(offset) {
                *b ^= mask;
            }
            out
        }
        TraceFault::Truncate { len } => bytes[..len.min(bytes.len())].to_vec(),
    }
}

// ---- timing-layer faults ----------------------------------------------------

/// Materializes the `index`-th ARPT soft error under `seed`. The trigger
/// lookup is drawn from `[1, lookup_horizon]` (a zero horizon — a run
/// that never consults the ARPT — plans a fault that can never fire,
/// which the campaign reports as trivially masked).
pub fn plan_arpt_fault(id: u32, seed: u64, index: u32, lookup_horizon: u64) -> TimingFault {
    let mut rng = fault_rng(seed, index);
    let slot = rng.next_u64();
    let mask = (rng.below(3) + 1) as u8; // 1..=3: never a no-op
    let at_lookup = rng.below(lookup_horizon) + 1;
    TimingFault {
        id,
        kind: FaultKind::ArptSoftError {
            slot,
            mask,
            at_lookup,
        },
    }
}

/// Materializes the `index`-th port fault under `seed`. Even indices plan
/// a blackout, odd indices a latency spike; the target alternates between
/// the data cache and the LVC when `has_lvc` (LVC faults on conventional
/// machines degrade to the data cache inside the timing model). The start
/// cycle is drawn from `[1, cycle_horizon]`.
pub fn plan_port_fault(
    id: u32,
    seed: u64,
    index: u32,
    cycle_horizon: u64,
    has_lvc: bool,
) -> TimingFault {
    let mut rng = fault_rng(seed, index);
    let route = if has_lvc && rng.next_u64() % 2 == 1 {
        Route::Lvc
    } else {
        Route::DataCache
    };
    let start_cycle = rng.below(cycle_horizon) + 1;
    let cycles = rng.below(128) + 1;
    let kind = if index.is_multiple_of(2) {
        FaultKind::PortBlackout {
            route,
            start_cycle,
            cycles,
        }
    } else {
        FaultKind::LatencySpike {
            route,
            start_cycle,
            cycles,
            extra: rng.below(50) + 1,
        }
    };
    TimingFault { id, kind }
}

/// Stable description of a materialized timing fault for fault records.
pub fn describe_timing_fault(fault: &TimingFault) -> String {
    match fault.kind {
        FaultKind::ArptSoftError {
            slot,
            mask,
            at_lookup,
        } => format!("arpt soft error slot {slot:#x} mask {mask:#04b} at lookup {at_lookup}"),
        FaultKind::PortBlackout {
            route,
            start_cycle,
            cycles,
        } => format!("{route:?} blackout cycles {start_cycle}..+{cycles}"),
        FaultKind::LatencySpike {
            route,
            start_cycle,
            cycles,
            extra,
        } => format!("{route:?} +{extra}-cycle latency spike cycles {start_cycle}..+{cycles}"),
    }
}

// ---- outcome classification -------------------------------------------------

/// The observed effect of one injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultOutcome {
    /// The run completed with a functionally identical result and no
    /// recovery activity beyond the fault-free baseline.
    Masked,
    /// A checking layer (trace checksum, typed error) rejected the
    /// corruption before it could affect results.
    Detected,
    /// The pipeline detected the wrong steer and re-dispatched the
    /// reference on the correct path (recoveries above baseline),
    /// finishing with a functionally identical result.
    Recovered,
    /// The run panicked or was otherwise aborted (caught by the
    /// supervisor; never takes the campaign down).
    Fatal,
    /// The run completed, nothing complained, and the functional result
    /// differs — a silent corruption. Always a test/CI failure.
    Silent,
}

impl FaultOutcome {
    /// Every outcome, in severity order.
    pub const ALL: [FaultOutcome; 5] = [
        FaultOutcome::Masked,
        FaultOutcome::Detected,
        FaultOutcome::Recovered,
        FaultOutcome::Fatal,
        FaultOutcome::Silent,
    ];

    /// Stable snake_case label (JSON keys).
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::Detected => "detected",
            FaultOutcome::Recovered => "recovered",
            FaultOutcome::Fatal => "fatal",
            FaultOutcome::Silent => "silent",
        }
    }
}

/// The functional fingerprint of one timing run — every field is
/// invariant under pure timing faults, so any mismatch against the
/// fault-free baseline is a (would-be silent) corruption.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunSignature {
    /// Committed instructions.
    pub instructions: u64,
    /// Committed memory references.
    pub mem_refs: u64,
    /// Peak-RSS proxy of the simulated program.
    pub peak_rss_bytes: u64,
}

/// What one faulty timing run reported.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimingObservation {
    /// Functional fingerprint.
    pub signature: RunSignature,
    /// Completed misprediction recoveries.
    pub recoveries: u64,
}

/// Classifies a timing-layer fault: `faulty == None` means the run
/// panicked (fatal); a signature mismatch is silent; recoveries above
/// the baseline mean the pipeline's recovery path absorbed the fault;
/// anything else was masked.
pub fn classify_timing(
    baseline: &TimingObservation,
    faulty: Option<&TimingObservation>,
) -> FaultOutcome {
    match faulty {
        None => FaultOutcome::Fatal,
        Some(obs) if obs.signature != baseline.signature => FaultOutcome::Silent,
        Some(obs) if obs.recoveries > baseline.recoveries => FaultOutcome::Recovered,
        Some(_) => FaultOutcome::Masked,
    }
}

/// Classifies a trace-layer fault from the decode attempt:
/// `decode_result == None` means the decoder returned a typed error
/// (detected); `Some(true)` means it decoded to a byte-identical replay
/// of the baseline (masked — only possible when the corruption missed
/// live bytes); `Some(false)` means it decoded but replayed differently
/// (silent).
pub fn classify_trace(decode_result: Option<bool>) -> FaultOutcome {
    match decode_result {
        None => FaultOutcome::Detected,
        Some(true) => FaultOutcome::Masked,
        Some(false) => FaultOutcome::Silent,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_non_trivial() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(8);
        assert_ne!(c.next_u64(), xs[0]);
        assert_eq!(SplitMix64::new(1).below(0), 0);
    }

    #[test]
    fn io_fault_planning_is_seeded_rotating_and_in_bounds() {
        use arl_sink::{IoFault, IoOp, OpKind};
        let ops = vec![
            IoOp {
                op: 0,
                kind: OpKind::Append,
                bytes: 120,
                file: "ledger".into(),
            },
            IoOp {
                op: 1,
                kind: OpKind::Write,
                bytes: 4096,
                file: "BENCH_faults.json".into(),
            },
            IoOp {
                op: 2,
                kind: OpKind::Rename,
                bytes: 0,
                file: "BENCH_faults.json".into(),
            },
        ];
        for index in 0..16u32 {
            let planned = plan_io_fault(42, index, &ops).expect("plannable");
            assert_eq!(planned, plan_io_fault(42, index, &ops).unwrap());
            let host = ops.iter().find(|o| o.op == planned.op).unwrap();
            match (index % 4, planned.fault) {
                (0, IoFault::Kill { keep }) => assert!(keep <= host.bytes),
                (1, IoFault::ShortWrite { keep }) | (2, IoFault::Enospc { keep }) => {
                    assert!(host.kind != OpKind::Rename && keep < host.bytes);
                }
                (3, IoFault::InterruptedRename) => assert_eq!(host.kind, OpKind::Rename),
                other => panic!("index {index} planned the wrong kind: {other:?}"),
            }
        }
        // Different seeds must eventually aim differently.
        assert!((0..16).any(|i| plan_io_fault(1, i, &ops) != plan_io_fault(2, i, &ops)));
        // No rename ops → the rename rotation slot yields None.
        assert_eq!(plan_io_fault(42, 3, &ops[..2]), None);
        assert_eq!(plan_io_fault(42, 0, &[]), None);
    }

    #[test]
    fn parse_plan_accepts_the_documented_syntax() {
        assert_eq!(
            parse_plan("trace:7").unwrap(),
            vec![LayerPlan {
                layer: Layer::Trace,
                seed: 7,
                count: DEFAULT_COUNT
            }]
        );
        assert_eq!(
            parse_plan("arpt:1:5, port:2:3").unwrap(),
            vec![
                LayerPlan {
                    layer: Layer::Arpt,
                    seed: 1,
                    count: 5
                },
                LayerPlan {
                    layer: Layer::Port,
                    seed: 2,
                    count: 3
                },
            ]
        );
        let all = parse_plan("all:9:1").unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(
            all.iter().map(|p| p.layer).collect::<Vec<_>>(),
            Layer::ALL.to_vec()
        );
        assert!(all.iter().all(|p| p.seed == 9 && p.count == 1));
        assert_eq!(parse_plan("").unwrap(), vec![]);
    }

    #[test]
    fn parse_plan_rejects_garbage() {
        assert!(matches!(parse_plan("trace"), Err(PlanError::Syntax(_))));
        assert!(matches!(
            parse_plan("cache:1"),
            Err(PlanError::UnknownLayer(_))
        ));
        assert!(matches!(parse_plan("trace:x"), Err(PlanError::Number(_))));
        assert!(matches!(
            parse_plan("trace:1:2:3"),
            Err(PlanError::Syntax(_))
        ));
        // Errors render something useful.
        assert!(parse_plan("trace")
            .unwrap_err()
            .to_string()
            .contains("trace"));
    }

    #[test]
    fn trace_faults_are_deterministic_and_in_range() {
        let len = 1000;
        for index in 0..10 {
            let a = plan_trace_fault(3, index, len);
            let b = plan_trace_fault(3, index, len);
            assert_eq!(a, b);
            match a {
                TraceFault::FlipByte { offset, mask } => {
                    assert_eq!(index % 2, 0);
                    assert!(offset < len);
                    assert_ne!(mask, 0);
                }
                TraceFault::Truncate { len: keep } => {
                    assert_eq!(index % 2, 1);
                    assert!(keep < len);
                }
            }
            assert!(!a.describe().is_empty());
        }
        assert_ne!(plan_trace_fault(3, 0, len), plan_trace_fault(4, 0, len));
    }

    #[test]
    fn apply_trace_fault_mutates_as_planned() {
        let bytes: Vec<u8> = (0..32).collect();
        let flipped = apply_trace_fault(
            &bytes,
            &TraceFault::FlipByte {
                offset: 5,
                mask: 0xFF,
            },
        );
        assert_eq!(flipped.len(), 32);
        assert_eq!(flipped[5], 5 ^ 0xFF);
        assert_eq!(&flipped[..5], &bytes[..5]);
        let cut = apply_trace_fault(&bytes, &TraceFault::Truncate { len: 10 });
        assert_eq!(cut, &bytes[..10]);
        // Out-of-range plans degrade gracefully (trace shrank since
        // planning): no panic.
        let same = apply_trace_fault(
            &bytes,
            &TraceFault::FlipByte {
                offset: 999,
                mask: 1,
            },
        );
        assert_eq!(same, bytes);
    }

    #[test]
    fn timing_faults_materialize_deterministically() {
        let a = plan_arpt_fault(1, 5, 0, 100);
        assert_eq!(a, plan_arpt_fault(1, 5, 0, 100));
        match a.kind {
            FaultKind::ArptSoftError {
                mask, at_lookup, ..
            } => {
                assert!((1..=3).contains(&mask));
                assert!((1..=100).contains(&at_lookup));
            }
            _ => panic!("arpt plan must be a soft error"),
        }
        let blackout = plan_port_fault(2, 5, 0, 1000, true);
        assert!(matches!(blackout.kind, FaultKind::PortBlackout { .. }));
        let spike = plan_port_fault(3, 5, 1, 1000, true);
        assert!(matches!(spike.kind, FaultKind::LatencySpike { .. }));
        for f in [a, blackout, spike] {
            assert!(!describe_timing_fault(&f).is_empty());
        }
        // Conventional machines only ever target the data cache.
        for index in 0..8 {
            let f = plan_port_fault(9, 77, index, 500, false);
            match f.kind {
                FaultKind::PortBlackout { route, .. } | FaultKind::LatencySpike { route, .. } => {
                    assert_eq!(route, Route::DataCache);
                }
                FaultKind::ArptSoftError { .. } => panic!("port plan"),
            }
        }
    }

    #[test]
    fn zero_horizons_still_plan_firable_or_inert_faults() {
        // A zero lookup horizon plans at_lookup == 1 (fires on the first
        // lookup if one ever happens; inert otherwise) — never a panic.
        let f = plan_arpt_fault(1, 2, 0, 0);
        match f.kind {
            FaultKind::ArptSoftError { at_lookup, .. } => assert_eq!(at_lookup, 1),
            _ => panic!("arpt plan"),
        }
    }

    #[test]
    fn classification_matrix() {
        let base = TimingObservation {
            signature: RunSignature {
                instructions: 100,
                mem_refs: 40,
                peak_rss_bytes: 4096,
            },
            recoveries: 2,
        };
        assert_eq!(classify_timing(&base, None), FaultOutcome::Fatal);
        assert_eq!(classify_timing(&base, Some(&base)), FaultOutcome::Masked);
        let recovered = TimingObservation {
            recoveries: 3,
            ..base
        };
        assert_eq!(
            classify_timing(&base, Some(&recovered)),
            FaultOutcome::Recovered
        );
        let silent = TimingObservation {
            signature: RunSignature {
                instructions: 99,
                ..base.signature
            },
            ..base
        };
        assert_eq!(classify_timing(&base, Some(&silent)), FaultOutcome::Silent);

        assert_eq!(classify_trace(None), FaultOutcome::Detected);
        assert_eq!(classify_trace(Some(true)), FaultOutcome::Masked);
        assert_eq!(classify_trace(Some(false)), FaultOutcome::Silent);

        let labels: Vec<&str> = FaultOutcome::ALL.iter().map(|o| o.label()).collect();
        assert_eq!(
            labels,
            vec!["masked", "detected", "recovered", "fatal", "silent"]
        );
    }

    #[test]
    fn layer_labels_are_stable() {
        assert_eq!(Layer::Trace.label(), "trace");
        assert_eq!(Layer::Arpt.label(), "arpt");
        assert_eq!(Layer::Port.label(), "port");
    }
}
