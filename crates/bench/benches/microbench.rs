//! Criterion microbenchmarks for the simulator's hot structures: ARPT
//! lookup/update, cache access, value prediction, the functional
//! simulator's instruction throughput, and the cycle-level pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use arl_core::{Arpt, Capacity, Context, CounterScheme};
use arl_mem::{HeapAllocator, Layout, MemImage};
use arl_sim::Machine;
use arl_timing::{Cache, CacheConfig, MachineConfig, StridePredictor, TimingSim};
use arl_workloads::{workload, Scale};

fn bench_arpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("arpt");
    group.throughput(Throughput::Elements(1));
    let mut limited = Arpt::new(
        CounterScheme::OneBit,
        Context::HYBRID_8_7,
        Capacity::Entries(1 << 15),
    );
    let mut i = 0u64;
    group.bench_function("predict_update_32k_hybrid", |b| {
        b.iter(|| {
            let pc = 0x40_0000 + (i % 4096) * 8;
            let p = limited.predict(pc, i, 0x40_0000 + (i % 7) * 64);
            limited.update(pc, i, 0x40_0000 + (i % 7) * 64, !p);
            i = i.wrapping_add(1);
        })
    });
    let mut unlimited = Arpt::new(
        CounterScheme::OneBit,
        Context::HYBRID_8_24,
        Capacity::Unlimited,
    );
    group.bench_function("predict_update_unlimited", |b| {
        b.iter(|| {
            let pc = 0x40_0000 + (i % 4096) * 8;
            unlimited.update(pc, i, 0, i & 1 == 0);
            i = i.wrapping_add(1);
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let mut l1 = Cache::new(CacheConfig::l1_data(2, 2));
    let mut addr = 0u64;
    group.bench_function("l1_access_streaming", |b| {
        b.iter(|| {
            l1.access(0x1000_0000 + (addr % (1 << 20)));
            addr = addr.wrapping_add(32);
        })
    });
    group.finish();
}

fn bench_value_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_predictor");
    group.throughput(Throughput::Elements(1));
    let mut vp = StridePredictor::table4();
    let mut i = 0i64;
    group.bench_function("update_strided", |b| {
        b.iter(|| {
            vp.update(0x40_0000 + (i as u64 % 512) * 8, i * 4);
            i += 1;
        })
    });
    group.finish();
}

fn bench_mem_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem");
    group.throughput(Throughput::Elements(1));
    let mut image = MemImage::new();
    let mut addr = 0u64;
    group.bench_function("image_write_read_u64", |b| {
        b.iter(|| {
            image.write_u64(0x1000_0000 + (addr % (1 << 16)), addr);
            let v = image.read_u64(0x1000_0000 + (addr % (1 << 16)));
            addr = addr.wrapping_add(8);
            v
        })
    });
    group.bench_function("malloc_free_pairs", |b| {
        b.iter_batched(
            || HeapAllocator::new(&Layout::default()),
            |mut alloc| {
                let mut ptrs = Vec::with_capacity(64);
                for i in 0..64 {
                    ptrs.push(alloc.malloc(16 + (i % 5) * 8).unwrap());
                }
                for p in ptrs {
                    alloc.free(p).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_functional_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_sim");
    let program = workload("compress").unwrap().build(Scale::tiny());
    // Instructions retired per full run (constant for a deterministic
    // program): measure instructions/second.
    let mut probe = Machine::new(&program);
    probe.run(100_000_000).unwrap();
    group.throughput(Throughput::Elements(probe.retired()));
    group.sample_size(20);
    group.bench_function("compress_tiny_full_run", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program);
            m.run(100_000_000).unwrap()
        })
    });
    group.finish();
}

fn bench_timing_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing_sim");
    let program = workload("compress").unwrap().build(Scale::tiny());
    let mut probe = Machine::new(&program);
    probe.run(100_000_000).unwrap();
    group.throughput(Throughput::Elements(probe.retired()));
    group.sample_size(10);
    for config in [
        MachineConfig::baseline_2_0(),
        MachineConfig::decoupled(3, 3),
    ] {
        group.bench_function(format!("compress_tiny_{}", config.name), |b| {
            b.iter(|| TimingSim::run_program(&program, &config))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_arpt,
    bench_cache,
    bench_value_predictor,
    bench_mem_substrate,
    bench_functional_sim,
    bench_timing_sim
);
criterion_main!(benches);
