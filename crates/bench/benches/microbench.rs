//! Microbenchmarks for the simulator's hot structures: ARPT
//! lookup/update, cache access, value prediction, the functional
//! simulator's instruction throughput, and the cycle-level pipeline.
//!
//! Hand-rolled harness (no registry access for Criterion in this build
//! environment): each benchmark runs a warm-up pass, then reports the
//! best-of-N wall-clock throughput. Run with
//! `cargo bench -p arl-bench`.

use std::hint::black_box;
use std::time::Instant;

use arl_core::{Arpt, Capacity, Context, CounterScheme};
use arl_mem::{HeapAllocator, Layout, MemImage};
use arl_sim::Machine;
use arl_timing::{Cache, CacheConfig, MachineConfig, StridePredictor, TimingSim};
use arl_workloads::{workload, Scale};

/// Runs `f` (which performs `elems` operations) `samples` times after one
/// warm-up and prints the fastest per-op rate.
fn bench(name: &str, elems: u64, samples: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let rate = elems as f64 / best;
    println!(
        "{name:<40} {:>12.0} ops/s   ({best:.6} s / {elems} ops)",
        rate
    );
}

fn bench_arpt() {
    let mut limited = Arpt::new(
        CounterScheme::OneBit,
        Context::HYBRID_8_7,
        Capacity::Entries(1 << 15),
    );
    const N: u64 = 1_000_000;
    bench("arpt/predict_update_32k_hybrid", N, 10, || {
        for i in 0..N {
            let pc = 0x40_0000 + (i % 4096) * 8;
            let p = limited.predict(pc, i, 0x40_0000 + (i % 7) * 64);
            limited.update(pc, i, 0x40_0000 + (i % 7) * 64, !p);
        }
    });
    let mut unlimited = Arpt::new(
        CounterScheme::OneBit,
        Context::HYBRID_8_24,
        Capacity::Unlimited,
    );
    bench("arpt/predict_update_unlimited", N, 10, || {
        for i in 0..N {
            let pc = 0x40_0000 + (i % 4096) * 8;
            unlimited.update(pc, i, 0, i & 1 == 0);
        }
    });
}

fn bench_cache() {
    let mut l1 = Cache::new(CacheConfig::l1_data(2, 2));
    const N: u64 = 1_000_000;
    bench("cache/l1_access_streaming", N, 10, || {
        for i in 0..N {
            black_box(l1.access(0x1000_0000 + (i * 32) % (1 << 20)));
        }
    });
}

fn bench_value_predictor() {
    let mut vp = StridePredictor::table4();
    const N: u64 = 1_000_000;
    bench("value_predictor/update_strided", N, 10, || {
        for i in 0..N as i64 {
            vp.update(0x40_0000 + (i as u64 % 512) * 8, i * 4);
        }
    });
}

fn bench_mem_substrate() {
    let mut image = MemImage::new();
    const N: u64 = 1_000_000;
    bench("mem/image_write_read_u64", N, 10, || {
        for i in 0..N {
            let addr = 0x1000_0000 + (i * 8) % (1 << 16);
            image.write_u64(addr, i);
            black_box(image.read_u64(addr));
        }
    });
    const PAIRS: u64 = 64;
    bench("mem/malloc_free_pairs", PAIRS, 200, || {
        let mut alloc = HeapAllocator::new(&Layout::default());
        let mut ptrs = Vec::with_capacity(PAIRS as usize);
        for i in 0..PAIRS {
            ptrs.push(alloc.malloc(16 + (i % 5) * 8).unwrap());
        }
        for p in ptrs {
            alloc.free(p).unwrap();
        }
    });
}

fn bench_functional_sim() {
    let program = workload("compress").unwrap().build(Scale::tiny());
    let mut probe = Machine::new(&program);
    probe.run(100_000_000).unwrap();
    bench(
        "functional_sim/compress_tiny_full_run",
        probe.retired(),
        20,
        || {
            let mut m = Machine::new(&program);
            black_box(m.run(100_000_000).unwrap());
        },
    );
}

fn bench_timing_sim() {
    let program = workload("compress").unwrap().build(Scale::tiny());
    let mut probe = Machine::new(&program);
    probe.run(100_000_000).unwrap();
    for config in [
        MachineConfig::baseline_2_0(),
        MachineConfig::decoupled(3, 3),
    ] {
        bench(
            &format!("timing_sim/compress_tiny_{}", config.name),
            probe.retired(),
            10,
            || {
                black_box(TimingSim::run_program(&program, &config));
            },
        );
    }
}

fn main() {
    bench_arpt();
    bench_cache();
    bench_value_predictor();
    bench_mem_substrate();
    bench_functional_sim();
    bench_timing_sim();
}
