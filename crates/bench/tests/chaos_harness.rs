//! Subprocess-level crash-consistency checks against the real binaries:
//! the ledger fingerprint guard and the hard `ARL_CHECKPOINT` error path
//! in both supervisors (`fault_campaign`, `bench_shard`), plus a
//! one-point `bench_chaos` smoke campaign.
//!
//! These run the actual executables (`CARGO_BIN_EXE_*`) because the
//! guarantees under test are about process exit codes and stderr — the
//! contract CI scripts and the chaos harness itself rely on.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;
use std::process::Command;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("arl-chaosh-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `exe` with a scrubbed `ARL_*` environment plus `envs`, at tiny
/// scale with a single worker thread, returning (exit code or None on
/// signal, stderr).
fn run(exe: &str, dir: &Path, envs: &[(&str, &str)]) -> (Option<i32>, String) {
    let mut cmd = Command::new(exe);
    for (key, _) in std::env::vars_os() {
        if key.to_string_lossy().starts_with("ARL_") {
            cmd.env_remove(key);
        }
    }
    cmd.env("ARL_SCALE", "tiny").env("ARL_THREADS", "1");
    cmd.env("ARL_JSON", dir);
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("spawn binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A resume under a different fault plan must be refused with exit 2,
/// naming both fingerprints and the override knob; `ARL_CHECKPOINT_FORCE`
/// must then accept the ledger. (The regression this pins: supervisors
/// must make an unusable ledger a *hard* error, never a silent
/// run-without-resume-protection.)
#[test]
fn fault_campaign_refuses_a_mismatched_ledger_naming_both() {
    let dir = temp_dir("identity");
    let ckpt = dir.join("ledger.ckpt");
    let ckpt = ckpt.to_str().unwrap();
    let exe = env!("CARGO_BIN_EXE_fault_campaign");
    let base = [
        ("ARL_FAULT", "all:42:1"),
        ("ARL_MAX_JOBS", "1"),
        ("ARL_CHECKPOINT", ckpt),
    ];

    let (code, stderr) = run(exe, &dir, &base);
    assert_eq!(code, Some(0), "seed run must pass:\n{stderr}");

    let mismatched = [
        ("ARL_FAULT", "all:43:1"),
        ("ARL_MAX_JOBS", "1"),
        ("ARL_CHECKPOINT", ckpt),
    ];
    let (code, stderr) = run(exe, &dir, &mismatched);
    assert_eq!(code, Some(2), "mismatched resume must exit 2:\n{stderr}");
    assert!(stderr.contains("cannot open ARL_CHECKPOINT"), "{stderr}");
    assert!(stderr.contains("refusing to merge"), "{stderr}");
    // `all:<seed>:1` expands layer by layer in the rendered fingerprint.
    for plan in [
        "trace:42:1,arpt:42:1,port:42:1",
        "trace:43:1,arpt:43:1,port:43:1",
    ] {
        assert!(
            stderr.contains(plan),
            "refusal must name both identities (missing {plan}):\n{stderr}"
        );
    }
    assert!(stderr.contains("ARL_CHECKPOINT_FORCE"), "{stderr}");

    let forced = [
        ("ARL_FAULT", "all:43:1"),
        ("ARL_MAX_JOBS", "1"),
        ("ARL_CHECKPOINT", ckpt),
        ("ARL_CHECKPOINT_FORCE", "1"),
    ];
    let (code, stderr) = run(exe, &dir, &forced);
    assert_eq!(code, Some(0), "forced resume must pass:\n{stderr}");
    assert!(stderr.contains("ARL_CHECKPOINT_FORCE"), "{stderr}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// An `ARL_CHECKPOINT` that cannot be opened — missing parent directory
/// or a file that is not a v2 ledger — is a hard exit-2 error in both
/// supervisors that honour the knob.
#[test]
fn unopenable_checkpoint_is_a_hard_error_in_both_supervisors() {
    let dir = temp_dir("unopenable");
    let missing = dir.join("no-such-dir").join("ledger.ckpt");
    let garbage = dir.join("garbage.ckpt");
    std::fs::write(&garbage, "not a ledger\n").unwrap();

    for (exe, extra) in [
        (
            env!("CARGO_BIN_EXE_fault_campaign"),
            ("ARL_FAULT", "all:42:1"),
        ),
        (env!("CARGO_BIN_EXE_bench_shard"), ("ARL_SHARD", "2")),
    ] {
        for bad in [&missing, &garbage] {
            let envs = [extra, ("ARL_CHECKPOINT", bad.to_str().unwrap())];
            let (code, stderr) = run(exe, &dir, &envs);
            assert_eq!(
                code,
                Some(2),
                "{exe} with ledger {} must exit 2:\n{stderr}",
                bad.display()
            );
            assert!(stderr.contains("cannot open ARL_CHECKPOINT"), "{stderr}");
        }
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

/// One seeded chaos point end to end through the real `bench_chaos`
/// binary: the campaign must classify it (zero silent, zero fatal),
/// prove byte-identical recovery, pass the fingerprint-guard probe, and
/// emit a deterministic `arl-chaos/v1` document.
#[test]
fn one_point_chaos_campaign_recovers_and_stays_identical() {
    let dir = temp_dir("smoke");
    let envs = [
        ("ARL_CHAOS_POINTS", "1"),
        ("ARL_CHAOS_CHILD", env!("CARGO_BIN_EXE_fault_campaign")),
        ("ARL_CHAOS_DIR", dir.to_str().unwrap()),
    ];
    let (code, stderr) = run(env!("CARGO_BIN_EXE_bench_chaos"), &dir, &envs);
    assert_eq!(code, Some(0), "chaos smoke must pass:\n{stderr}");

    let doc = std::fs::read_to_string(dir.join("BENCH_chaos.json")).expect("chaos doc");
    let doc = arl_stats::Json::parse(&doc).expect("valid json");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("arl-chaos/v1"));
    let totals = doc.get("totals").unwrap();
    assert_eq!(totals.get("silent").unwrap().as_u64(), Some(0));
    assert_eq!(totals.get("fatal").unwrap().as_u64(), Some(0));
    // Point 0 of the seeded rotation is a SIGKILL; it must be the
    // recovered one.
    assert_eq!(totals.get("recovered").unwrap().as_u64(), Some(1));
    assert_eq!(
        doc.get("all_identical").unwrap(),
        &arl_stats::Json::Bool(true)
    );
    let guard = doc.get("identity_guard").unwrap();
    for field in ["refused", "names_both", "force_override"] {
        assert_eq!(
            guard.get(field).unwrap(),
            &arl_stats::Json::Bool(true),
            "identity guard field {field}"
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
