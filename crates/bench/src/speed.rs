//! Replay-throughput benchmark for the timing core (`bench_speed`).
//!
//! Measures replayed instructions per second on the 12-workload suite for
//! the event-driven core and (unless `ARL_SPEED_LEGACY=0`) the legacy
//! cycle-ticking core, emitting `BENCH_speed.json` (schema
//! [`SPEED_SCHEMA`]). The committed copy at the repo root is the speed
//! trajectory the ci gate holds the event core to: a run may not fall
//! below `ARL_SPEED_MIN_RATIO` (default 0.8) of the baseline's
//! per-workload event-over-legacy `speedup` (machine-load-immune; see
//! [`regressions_vs_baseline`]), or of the baseline `event_ips` when
//! legacy timing was skipped.
//!
//! Each workload's trace is captured once and pre-decoded into a
//! [`TraceEntry`] slice, so the measurement times the *simulator*, not
//! trace decode. When both cores run, their [`SimStats`] are asserted
//! equal — every benchmark run doubles as a differential test.
//!
//! Knobs: `ARL_SPEED_WORKLOADS` (comma list filter), `ARL_SPEED_REPS`
//! (best-of, default 2), `ARL_SPEED_LEGACY=0` (skip the slow legacy
//! timing), `ARL_SPEED_BASELINE` (path to a committed baseline to gate
//! against), `ARL_SPEED_MIN_RATIO`, plus the usual `ARL_SCALE`/`ARL_JSON`.

use std::time::Instant;

use arl_sim::{Machine, TraceEntry, TraceSource};
use arl_stats::Json;
use arl_timing::{CoreMode, MachineConfig, SimStats, TimingSim};
use arl_workloads::{suite, Scale};

use crate::runner::{scale_label, write_named_json};

/// `BENCH_speed.json` schema identifier.
pub const SPEED_SCHEMA: &str = "arl-speed/v1";

/// One workload's measurement.
pub struct SpeedRow {
    /// Workload name.
    pub workload: String,
    /// Instructions replayed per timed run.
    pub instructions: u64,
    /// Simulated cycles (identical across cores, asserted).
    pub cycles: u64,
    /// Best-of-reps event-core throughput, instructions/second.
    pub event_ips: f64,
    /// Best-of-reps legacy-core throughput; `None` when legacy was skipped.
    pub legacy_ips: Option<f64>,
}

impl SpeedRow {
    /// Event-over-legacy speedup, when both cores were timed.
    pub fn speedup(&self) -> Option<f64> {
        self.legacy_ips.map(|l| self.event_ips / l)
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload".to_string(), Json::from(self.workload.as_str())),
            ("instructions".to_string(), Json::from(self.instructions)),
            ("cycles".to_string(), Json::from(self.cycles)),
            ("event_ips".to_string(), Json::from(self.event_ips)),
        ];
        if let Some(legacy) = self.legacy_ips {
            pairs.push(("legacy_ips".to_string(), Json::from(legacy)));
        }
        if let Some(speedup) = self.speedup() {
            pairs.push(("speedup".to_string(), Json::from(speedup)));
        }
        Json::Obj(pairs)
    }
}

/// The full benchmark result.
pub struct SpeedReport {
    /// Scale label the suite ran at.
    pub scale: Scale,
    /// Name of the machine config measured.
    pub config_name: String,
    /// Per-workload rows, suite order.
    pub rows: Vec<SpeedRow>,
}

impl SpeedReport {
    /// Suite-aggregate event throughput (total instructions / total time).
    pub fn suite_event_ips(&self) -> f64 {
        let inst: u64 = self.rows.iter().map(|r| r.instructions).sum();
        let secs: f64 = self
            .rows
            .iter()
            .map(|r| r.instructions as f64 / r.event_ips)
            .sum();
        inst as f64 / secs.max(f64::MIN_POSITIVE)
    }

    /// Suite-aggregate legacy throughput, when every row timed legacy.
    pub fn suite_legacy_ips(&self) -> Option<f64> {
        let inst: u64 = self.rows.iter().map(|r| r.instructions).sum();
        let mut secs = 0.0;
        for row in &self.rows {
            secs += row.instructions as f64 / row.legacy_ips?;
        }
        Some(inst as f64 / secs.max(f64::MIN_POSITIVE))
    }

    /// Suite-aggregate event-over-legacy speedup.
    pub fn suite_speedup(&self) -> Option<f64> {
        self.suite_legacy_ips().map(|l| self.suite_event_ips() / l)
    }

    /// The `BENCH_speed.json` document.
    pub fn to_json(&self) -> Json {
        let mut suite_pairs = vec![("event_ips".to_string(), Json::from(self.suite_event_ips()))];
        if let Some(legacy) = self.suite_legacy_ips() {
            suite_pairs.push(("legacy_ips".to_string(), Json::from(legacy)));
        }
        if let Some(speedup) = self.suite_speedup() {
            suite_pairs.push(("speedup".to_string(), Json::from(speedup)));
        }
        Json::obj([
            ("schema", Json::from(SPEED_SCHEMA)),
            ("scale", Json::from(scale_label(self.scale))),
            ("config", Json::from(self.config_name.as_str())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(SpeedRow::to_json).collect()),
            ),
            ("suite", Json::Obj(suite_pairs)),
        ])
    }
}

/// The measured machine config: `ARL_SPEED_CONFIG` selects a Figure 8
/// config by name (e.g. `(2+0)`, `(3+3)`, `(16+0)`); default `(3+3)`.
fn config_from_env() -> MachineConfig {
    let Ok(name) = std::env::var("ARL_SPEED_CONFIG") else {
        return MachineConfig::decoupled(3, 3);
    };
    MachineConfig::figure8_suite()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("ARL_SPEED_CONFIG={name} matches no figure-8 config"))
}

fn workload_filter() -> Option<Vec<String>> {
    let raw = std::env::var("ARL_SPEED_WORKLOADS").ok()?;
    let names: Vec<String> = raw
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

fn reps_from_env() -> u32 {
    std::env::var("ARL_SPEED_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

fn legacy_enabled() -> bool {
    std::env::var("ARL_SPEED_LEGACY").map_or(true, |v| v != "0")
}

/// Times `reps` replays of `entries` under `core`, returning the best
/// throughput and the (rep-invariant) stats.
fn time_core(
    entries: &[TraceEntry],
    config: &MachineConfig,
    core: CoreMode,
    reps: u32,
) -> (f64, SimStats) {
    let mut cfg = config.clone();
    cfg.core = core;
    let mut best = 0.0f64;
    let mut stats = SimStats::default();
    for _ in 0..reps {
        let start = Instant::now();
        let run = TimingSim::run_trace(entries, &cfg);
        let secs = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        best = best.max(run.instructions as f64 / secs);
        stats = run;
    }
    (best, stats)
}

/// Runs the benchmark over the (possibly filtered) suite.
///
/// # Panics
///
/// Panics if a workload fails to execute, if `ARL_SPEED_WORKLOADS` names
/// an unknown workload, or if the two cores' stats diverge (which would
/// mean the event core is broken — the differential suite covers this,
/// but a free check here keeps the committed baseline honest).
pub fn run_speed_suite(scale: Scale) -> SpeedReport {
    let filter = workload_filter();
    let reps = reps_from_env();
    let with_legacy = legacy_enabled();
    let config = config_from_env();
    let mut rows = Vec::new();
    let mut matched = 0usize;
    for spec in suite() {
        if let Some(names) = &filter {
            if !names.iter().any(|n| n == spec.name) {
                continue;
            }
        }
        matched += 1;
        let program = spec.build(scale);
        let mut machine = Machine::new(&program);
        let mut entries = Vec::new();
        while let Some(entry) = machine
            .next_entry()
            .unwrap_or_else(|e| panic!("{}: functional execution failed: {e}", spec.name))
        {
            entries.push(entry);
        }
        let (event_ips, event_stats) = time_core(&entries, &config, CoreMode::Event, reps);
        let legacy_ips = if with_legacy {
            let (ips, legacy_stats) = time_core(&entries, &config, CoreMode::Legacy, reps);
            assert_eq!(
                event_stats, legacy_stats,
                "{}: event and legacy cores diverged",
                spec.name
            );
            Some(ips)
        } else {
            None
        };
        rows.push(SpeedRow {
            workload: spec.name.to_string(),
            instructions: event_stats.instructions,
            cycles: event_stats.cycles,
            event_ips,
            legacy_ips,
        });
    }
    if let Some(names) = &filter {
        assert_eq!(
            matched,
            names.len(),
            "ARL_SPEED_WORKLOADS names unknown workloads: {names:?}"
        );
    }
    SpeedReport {
        scale,
        config_name: config.name.clone(),
        rows,
    }
}

/// Writes the report as `BENCH_speed.json` per the `ARL_JSON` convention.
pub fn write_speed_json(report: &SpeedReport) -> std::io::Result<std::path::PathBuf> {
    write_named_json("BENCH_speed.json", &report.to_json())
}

fn min_ratio() -> f64 {
    std::env::var("ARL_SPEED_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.8)
}

/// Gates `report` against the committed baseline at `path`. Returns the
/// offending rows.
///
/// When a row timed both cores and the baseline row recorded a
/// `speedup`, the gate compares event-over-legacy speedups: the row must
/// reach `min_ratio × baseline speedup`. Both cores share whatever load
/// the machine is under, so the ratio cancels it — absolute throughput
/// on a shared box swings ±30% with background load and would gate on
/// the weather. The absolute `event_ips` floor is kept only as a
/// fallback for legacy-skipped runs (`ARL_SPEED_LEGACY=0`), where no
/// same-run reference exists.
pub fn regressions_vs_baseline(report: &SpeedReport, path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("baseline {path} is not JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SPEED_SCHEMA) => {}
        other => {
            return Err(format!(
                "baseline {path} has schema {other:?}, want {SPEED_SCHEMA}"
            ))
        }
    }
    let ratio = min_ratio();
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("baseline {path} has no rows array"))?;
    let mut failures = Vec::new();
    for row in &report.rows {
        let baseline_row = rows
            .iter()
            .find(|r| r.get("workload").and_then(Json::as_str) == Some(row.workload.as_str()));
        let Some(baseline_row) = baseline_row else {
            continue; // workload not in the baseline (e.g. different scale subset)
        };
        if let (Some(speedup), Some(baseline_speedup)) = (
            row.speedup(),
            baseline_row.get("speedup").and_then(Json::as_f64),
        ) {
            let floor = baseline_speedup * ratio;
            if speedup < floor {
                failures.push(format!(
                    "{}: event/legacy speedup {:.2}x < {:.2}x ({}% of baseline {:.2}x)",
                    row.workload,
                    speedup,
                    floor,
                    (ratio * 100.0) as u32,
                    baseline_speedup,
                ));
            }
            continue;
        }
        let Some(baseline_ips) = baseline_row.get("event_ips").and_then(Json::as_f64) else {
            continue;
        };
        let floor = baseline_ips * ratio;
        if row.event_ips < floor {
            failures.push(format!(
                "{}: {:.0} inst/s < {:.0} ({}% of baseline {:.0})",
                row.workload,
                row.event_ips,
                floor,
                (ratio * 100.0) as u32,
                baseline_ips,
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: Vec<SpeedRow>) -> SpeedReport {
        SpeedReport {
            scale: Scale::default(),
            config_name: "(3+3)".to_string(),
            rows,
        }
    }

    fn row(workload: &str, event_ips: f64, legacy_ips: Option<f64>) -> SpeedRow {
        SpeedRow {
            workload: workload.to_string(),
            instructions: 1_000_000,
            cycles: 200_000,
            event_ips,
            legacy_ips,
        }
    }

    fn baseline_file(tag: &str, rows: Vec<SpeedRow>) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("arl-speed-{tag}-{}.json", std::process::id()));
        std::fs::write(&path, report(rows).to_json().render()).expect("write baseline");
        path
    }

    #[test]
    fn speedup_gate_is_immune_to_shared_machine_load() {
        let baseline = baseline_file("ratio", vec![row("go", 6_000_000.0, Some(2_000_000.0))]);
        let path = baseline.to_str().expect("utf-8 path");
        // Same code on a box under heavy load: both cores at half
        // throughput, so the speedup ratio is unchanged and the gate
        // must pass even though absolute throughput is far below the
        // 0.8 floor.
        let loaded = report(vec![row("go", 3_000_000.0, Some(1_000_000.0))]);
        assert_eq!(
            regressions_vs_baseline(&loaded, path).expect("gate runs"),
            Vec::<String>::new()
        );
        // A genuine hot-loop regression shows up as a speedup drop no
        // matter the load: event core slowed, legacy untouched.
        let regressed = report(vec![row("go", 2_000_000.0, Some(1_000_000.0))]);
        let failures = regressions_vs_baseline(&regressed, path).expect("gate runs");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("speedup"), "{}", failures[0]);
        std::fs::remove_file(&baseline).ok();
    }

    #[test]
    fn absolute_floor_applies_only_when_legacy_was_skipped() {
        let baseline = baseline_file("floor", vec![row("go", 6_000_000.0, Some(2_000_000.0))]);
        let path = baseline.to_str().expect("utf-8 path");
        // Legacy skipped: no same-run reference, so the absolute
        // event_ips floor (0.8 × 6M = 4.8M) gates.
        let slow = report(vec![row("go", 3_000_000.0, None)]);
        let failures = regressions_vs_baseline(&slow, path).expect("gate runs");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("inst/s"), "{}", failures[0]);
        let fast = report(vec![row("go", 5_000_000.0, None)]);
        assert_eq!(
            regressions_vs_baseline(&fast, path).expect("gate runs"),
            Vec::<String>::new()
        );
        // Workloads absent from the baseline are never gated.
        let unknown = report(vec![row("novel", 1.0, None)]);
        assert_eq!(
            regressions_vs_baseline(&unknown, path).expect("gate runs"),
            Vec::<String>::new()
        );
        std::fs::remove_file(&baseline).ok();
    }
}
