//! Replay-throughput benchmark for the timing core (`bench_speed`).
//!
//! Measures replayed instructions per second on the 12-workload suite
//! across the full lever matrix — {event, legacy} core × {compiled,
//! uncompiled} trace — emitting `BENCH_speed.json` (schema
//! [`SPEED_SCHEMA`], `arl-speed/v2`). The headline `speedup` per row is
//! the shipping configuration over the original one: event core on a
//! compiled trace vs the legacy core on an uncompiled trace; the other
//! two cells attribute the win to each lever ([`SpeedRow::core_speedup`]
//! and [`SpeedRow::compiled_speedup`]). All four cells' `SimStats` are
//! asserted equal (`identical:true` in the JSON) — every benchmark run
//! doubles as a compiled-vs-uncompiled differential test.
//!
//! The committed copy at the repo root is the speed trajectory the ci
//! gate holds the event core to: a run may not fall below
//! `ARL_SPEED_MIN_RATIO` (default 0.8) of the baseline's per-workload
//! `speedup` (machine-load-immune; see [`regressions_vs_baseline`]), or
//! of the baseline `event_ips` when legacy timing was skipped.
//!
//! Each workload's trace is captured once (with a compiled section) and
//! pre-decoded into two [`TraceEntry`] slices — hints attached and hints
//! stripped — so the measurement times the *simulator*, not trace decode
//! or model precomputation. Knobs (all warn-and-fallback via
//! [`crate::knob`]): `ARL_SPEED_WORKLOADS` (comma list filter),
//! `ARL_SPEED_REPS` (best-of, default 2), `ARL_SPEED_LEGACY=0` (skip the
//! slow legacy timing), `ARL_SPEED_CONFIG` (Figure 8 config name),
//! `ARL_SPEED_BASELINE` (path to a committed baseline to gate against),
//! `ARL_SPEED_MIN_RATIO`, plus the usual `ARL_SCALE`/`ARL_JSON`.

use std::time::Instant;

use arl_sim::{ModelHints, TraceEntry, TraceSource};
use arl_stats::Json;
use arl_timing::{CoreMode, MachineConfig, SimStats, TimingSim};
use arl_workloads::{suite, Scale};

use crate::knob::{knob_f64, knob_parsed, knob_u64};
use crate::runner::{scale_label, write_named_json};
use crate::INST_CAP;

/// `BENCH_speed.json` schema identifier.
///
/// v2 (this version) times the full lever matrix — core × compiled —
/// and records `identical` per row; v1 timed only event vs legacy on
/// uncompiled entries.
pub const SPEED_SCHEMA: &str = "arl-speed/v2";

/// One workload's measurement across the lever matrix.
pub struct SpeedRow {
    /// Workload name.
    pub workload: String,
    /// Instructions replayed per timed run.
    pub instructions: u64,
    /// Simulated cycles (identical across all cells, asserted).
    pub cycles: u64,
    /// Best-of-reps event-core throughput on the *compiled* trace — the
    /// shipping configuration, and the cell the gate tracks.
    pub event_ips: f64,
    /// Event core on the hint-stripped entries (compiled lever off).
    pub event_uncompiled_ips: f64,
    /// Legacy core on the hint-stripped entries — the original
    /// configuration the headline speedup is measured against. `None`
    /// when legacy was skipped (`ARL_SPEED_LEGACY=0`).
    pub legacy_ips: Option<f64>,
    /// Legacy core on the compiled trace (compiled lever alone).
    pub legacy_compiled_ips: Option<f64>,
    /// All timed cells produced bit-identical `SimStats` (asserted at
    /// measurement time; recorded so the artifact carries the proof).
    pub identical: bool,
}

impl SpeedRow {
    /// Headline speedup: event+compiled over legacy+uncompiled.
    pub fn speedup(&self) -> Option<f64> {
        self.legacy_ips.map(|l| self.event_ips / l)
    }

    /// Core lever alone: event over legacy, both uncompiled.
    pub fn core_speedup(&self) -> Option<f64> {
        self.legacy_ips.map(|l| self.event_uncompiled_ips / l)
    }

    /// Compiled lever alone (on the event core): compiled over
    /// uncompiled entries.
    pub fn compiled_speedup(&self) -> f64 {
        self.event_ips / self.event_uncompiled_ips.max(f64::MIN_POSITIVE)
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload".to_string(), Json::from(self.workload.as_str())),
            ("instructions".to_string(), Json::from(self.instructions)),
            ("cycles".to_string(), Json::from(self.cycles)),
            ("event_ips".to_string(), Json::from(self.event_ips)),
            (
                "event_uncompiled_ips".to_string(),
                Json::from(self.event_uncompiled_ips),
            ),
            (
                "compiled_speedup".to_string(),
                Json::from(self.compiled_speedup()),
            ),
            ("identical".to_string(), Json::from(self.identical)),
        ];
        if let Some(legacy) = self.legacy_ips {
            pairs.push(("legacy_ips".to_string(), Json::from(legacy)));
        }
        if let Some(lc) = self.legacy_compiled_ips {
            pairs.push(("legacy_compiled_ips".to_string(), Json::from(lc)));
        }
        if let Some(speedup) = self.speedup() {
            pairs.push(("speedup".to_string(), Json::from(speedup)));
        }
        if let Some(core) = self.core_speedup() {
            pairs.push(("core_speedup".to_string(), Json::from(core)));
        }
        Json::Obj(pairs)
    }
}

/// The full benchmark result.
pub struct SpeedReport {
    /// Scale label the suite ran at.
    pub scale: Scale,
    /// Name of the machine config measured.
    pub config_name: String,
    /// Per-workload rows, suite order.
    pub rows: Vec<SpeedRow>,
}

/// Geometric mean of `values`; `None` when empty.
fn geomean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in values {
        log_sum += v.max(f64::MIN_POSITIVE).ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / f64::from(n)).exp())
}

impl SpeedReport {
    /// Suite-aggregate event throughput (total instructions / total time)
    /// in the shipping configuration (compiled trace).
    pub fn suite_event_ips(&self) -> f64 {
        let inst: u64 = self.rows.iter().map(|r| r.instructions).sum();
        let secs: f64 = self
            .rows
            .iter()
            .map(|r| r.instructions as f64 / r.event_ips)
            .sum();
        inst as f64 / secs.max(f64::MIN_POSITIVE)
    }

    /// Suite-aggregate legacy (uncompiled) throughput, when every row
    /// timed legacy.
    pub fn suite_legacy_ips(&self) -> Option<f64> {
        let inst: u64 = self.rows.iter().map(|r| r.instructions).sum();
        let mut secs = 0.0;
        for row in &self.rows {
            secs += row.instructions as f64 / row.legacy_ips?;
        }
        Some(inst as f64 / secs.max(f64::MIN_POSITIVE))
    }

    /// Suite-aggregate headline speedup (aggregate-throughput ratio).
    pub fn suite_speedup(&self) -> Option<f64> {
        self.suite_legacy_ips().map(|l| self.suite_event_ips() / l)
    }

    /// Suite geometric-mean headline speedup (every workload weighted
    /// equally — the acceptance number).
    pub fn suite_speedup_geomean(&self) -> Option<f64> {
        let speedups: Option<Vec<f64>> = self.rows.iter().map(SpeedRow::speedup).collect();
        geomean(speedups?.into_iter())
    }

    /// Suite geometric-mean core-lever speedup (event vs legacy, both
    /// uncompiled).
    pub fn suite_core_speedup_geomean(&self) -> Option<f64> {
        let speedups: Option<Vec<f64>> = self.rows.iter().map(SpeedRow::core_speedup).collect();
        geomean(speedups?.into_iter())
    }

    /// Suite geometric-mean compiled-lever speedup (event core).
    pub fn suite_compiled_speedup_geomean(&self) -> Option<f64> {
        geomean(self.rows.iter().map(SpeedRow::compiled_speedup))
    }

    /// The `BENCH_speed.json` document.
    pub fn to_json(&self) -> Json {
        let mut suite_pairs = vec![("event_ips".to_string(), Json::from(self.suite_event_ips()))];
        if let Some(legacy) = self.suite_legacy_ips() {
            suite_pairs.push(("legacy_ips".to_string(), Json::from(legacy)));
        }
        if let Some(speedup) = self.suite_speedup() {
            suite_pairs.push(("speedup".to_string(), Json::from(speedup)));
        }
        if let Some(geo) = self.suite_speedup_geomean() {
            suite_pairs.push(("speedup_geomean".to_string(), Json::from(geo)));
        }
        if let Some(core) = self.suite_core_speedup_geomean() {
            suite_pairs.push(("core_speedup_geomean".to_string(), Json::from(core)));
        }
        if let Some(compiled) = self.suite_compiled_speedup_geomean() {
            suite_pairs.push(("compiled_speedup_geomean".to_string(), Json::from(compiled)));
        }
        Json::obj([
            ("schema", Json::from(SPEED_SCHEMA)),
            ("scale", Json::from(scale_label(self.scale))),
            ("config", Json::from(self.config_name.as_str())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(SpeedRow::to_json).collect()),
            ),
            ("suite", Json::Obj(suite_pairs)),
        ])
    }
}

/// The measured machine config: `ARL_SPEED_CONFIG` selects a Figure 8
/// config by name (e.g. `(2+0)`, `(3+3)`, `(16+0)`); unknown names warn
/// and fall back to the default `(3+3)`.
fn config_from_env() -> MachineConfig {
    knob_parsed(
        "ARL_SPEED_CONFIG",
        std::env::var("ARL_SPEED_CONFIG").ok().as_deref(),
        MachineConfig::decoupled(3, 3),
        "the (3+3) config (valid: figure-8 config names)",
        |name| {
            MachineConfig::figure8_suite()
                .into_iter()
                .find(|c| c.name == name)
        },
    )
}

fn workload_filter() -> Option<Vec<String>> {
    let raw = std::env::var("ARL_SPEED_WORKLOADS").ok()?;
    let names: Vec<String> = raw
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

fn reps_from_env() -> u32 {
    let n = knob_u64(
        "ARL_SPEED_REPS",
        std::env::var("ARL_SPEED_REPS").ok().as_deref(),
        2,
        1,
    );
    u32::try_from(n.min(1_000)).unwrap_or(2)
}

fn legacy_enabled() -> bool {
    crate::knob::knob_bool(
        "ARL_SPEED_LEGACY",
        std::env::var("ARL_SPEED_LEGACY").ok().as_deref(),
        true,
    )
}

/// Times `reps` replays of `entries` under `core`, returning the best
/// throughput and the (rep-invariant) stats.
fn time_core(
    entries: &[TraceEntry],
    config: &MachineConfig,
    core: CoreMode,
    reps: u32,
) -> (f64, SimStats) {
    let mut cfg = config.clone();
    cfg.core = core;
    let mut best = 0.0f64;
    let mut stats = SimStats::default();
    for _ in 0..reps {
        let start = Instant::now();
        let run = TimingSim::run_trace(entries, &cfg);
        let secs = start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        best = best.max(run.instructions as f64 / secs);
        stats = run;
    }
    (best, stats)
}

/// Runs the benchmark over the (possibly filtered) suite.
///
/// # Panics
///
/// Panics if a workload fails to execute or capture, if
/// `ARL_SPEED_WORKLOADS` names an unknown workload, or if any two cells'
/// stats diverge (which would mean the event core or the compiled-trace
/// path is broken — the differential suite covers this, but a free check
/// here keeps the committed baseline honest).
pub fn run_speed_suite(scale: Scale) -> SpeedReport {
    let filter = workload_filter();
    let reps = reps_from_env();
    let with_legacy = legacy_enabled();
    let config = config_from_env();
    let mut rows = Vec::new();
    let mut matched = 0usize;
    for spec in suite() {
        if let Some(names) = &filter {
            if !names.iter().any(|n| n == spec.name) {
                continue;
            }
        }
        matched += 1;
        let program = spec.build(scale);
        // One compiled capture yields both entry streams: hints attached
        // (compiled cells) and hints stripped (uncompiled cells). The
        // streams are identical apart from the model hints, so every
        // cell replays the same instructions.
        let trace = arl_trace::capture_compiled(&program, INST_CAP, 0)
            .unwrap_or_else(|e| panic!("{}: capture failed: {e}", spec.name));
        let mut replayer = arl_trace::Replayer::new(&trace, &program)
            .unwrap_or_else(|e| panic!("{}: trace rejected: {e}", spec.name));
        let mut compiled_entries = Vec::new();
        while let Some(entry) = replayer
            .next_entry()
            .unwrap_or_else(|e| panic!("{}: trace replay failed: {e}", spec.name))
        {
            debug_assert!(entry.model.present, "compiled trace must carry hints");
            compiled_entries.push(entry);
        }
        let plain_entries: Vec<TraceEntry> = compiled_entries
            .iter()
            .map(|e| {
                let mut plain = *e;
                plain.model = ModelHints::NONE;
                plain
            })
            .collect();

        let (event_ips, stats_ec) = time_core(&compiled_entries, &config, CoreMode::Event, reps);
        let (event_uncompiled_ips, stats_eu) =
            time_core(&plain_entries, &config, CoreMode::Event, reps);
        assert_eq!(
            stats_ec, stats_eu,
            "{}: event core diverged between compiled and uncompiled entries",
            spec.name
        );
        let (legacy_ips, legacy_compiled_ips) = if with_legacy {
            let (lu_ips, stats_lu) = time_core(&plain_entries, &config, CoreMode::Legacy, reps);
            let (lc_ips, stats_lc) = time_core(&compiled_entries, &config, CoreMode::Legacy, reps);
            assert_eq!(
                stats_ec, stats_lu,
                "{}: event and legacy cores diverged",
                spec.name
            );
            assert_eq!(
                stats_lu, stats_lc,
                "{}: legacy core diverged between compiled and uncompiled entries",
                spec.name
            );
            (Some(lu_ips), Some(lc_ips))
        } else {
            (None, None)
        };
        rows.push(SpeedRow {
            workload: spec.name.to_string(),
            instructions: stats_ec.instructions,
            cycles: stats_ec.cycles,
            event_ips,
            event_uncompiled_ips,
            legacy_ips,
            legacy_compiled_ips,
            identical: true,
        });
    }
    if let Some(names) = &filter {
        assert_eq!(
            matched,
            names.len(),
            "ARL_SPEED_WORKLOADS names unknown workloads: {names:?}"
        );
    }
    SpeedReport {
        scale,
        config_name: config.name.clone(),
        rows,
    }
}

/// Writes the report as `BENCH_speed.json` per the `ARL_JSON` convention.
pub fn write_speed_json(report: &SpeedReport) -> std::io::Result<std::path::PathBuf> {
    write_named_json("BENCH_speed.json", &report.to_json())
}

fn min_ratio() -> f64 {
    knob_f64(
        "ARL_SPEED_MIN_RATIO",
        std::env::var("ARL_SPEED_MIN_RATIO").ok().as_deref(),
        0.8,
        0.0,
    )
}

/// Gates `report` against the committed baseline at `path`. Returns the
/// offending rows.
///
/// When a row timed both cores and the baseline row recorded a
/// `speedup`, the gate compares headline speedups: the row must reach
/// `min_ratio × baseline speedup`. All cells share whatever load the
/// machine is under, so the ratio cancels it — absolute throughput on a
/// shared box swings ±30% with background load and would gate on the
/// weather. The absolute `event_ips` floor is kept only as a fallback
/// for legacy-skipped runs (`ARL_SPEED_LEGACY=0`), where no same-run
/// reference exists.
pub fn regressions_vs_baseline(report: &SpeedReport, path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("baseline {path} is not JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SPEED_SCHEMA) => {}
        other => {
            return Err(format!(
                "baseline {path} has schema {other:?}, want {SPEED_SCHEMA}"
            ))
        }
    }
    let ratio = min_ratio();
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("baseline {path} has no rows array"))?;
    let mut failures = Vec::new();
    for row in &report.rows {
        let baseline_row = rows
            .iter()
            .find(|r| r.get("workload").and_then(Json::as_str) == Some(row.workload.as_str()));
        let Some(baseline_row) = baseline_row else {
            continue; // workload not in the baseline (e.g. different scale subset)
        };
        if let (Some(speedup), Some(baseline_speedup)) = (
            row.speedup(),
            baseline_row.get("speedup").and_then(Json::as_f64),
        ) {
            let floor = baseline_speedup * ratio;
            if speedup < floor {
                failures.push(format!(
                    "{}: event/legacy speedup {:.2}x < {:.2}x ({}% of baseline {:.2}x)",
                    row.workload,
                    speedup,
                    floor,
                    (ratio * 100.0) as u32,
                    baseline_speedup,
                ));
            }
            continue;
        }
        let Some(baseline_ips) = baseline_row.get("event_ips").and_then(Json::as_f64) else {
            continue;
        };
        let floor = baseline_ips * ratio;
        if row.event_ips < floor {
            failures.push(format!(
                "{}: {:.0} inst/s < {:.0} ({}% of baseline {:.0})",
                row.workload,
                row.event_ips,
                floor,
                (ratio * 100.0) as u32,
                baseline_ips,
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: Vec<SpeedRow>) -> SpeedReport {
        SpeedReport {
            scale: Scale::default(),
            config_name: "(3+3)".to_string(),
            rows,
        }
    }

    fn row(workload: &str, event_ips: f64, legacy_ips: Option<f64>) -> SpeedRow {
        SpeedRow {
            workload: workload.to_string(),
            instructions: 1_000_000,
            cycles: 200_000,
            event_ips,
            event_uncompiled_ips: event_ips * 0.75,
            legacy_ips,
            legacy_compiled_ips: legacy_ips.map(|l| l * 1.1),
            identical: true,
        }
    }

    fn baseline_file(tag: &str, rows: Vec<SpeedRow>) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("arl-speed-{tag}-{}.json", std::process::id()));
        std::fs::write(&path, report(rows).to_json().render()).expect("write baseline");
        path
    }

    #[test]
    fn speedup_gate_is_immune_to_shared_machine_load() {
        let baseline = baseline_file("ratio", vec![row("go", 6_000_000.0, Some(2_000_000.0))]);
        let path = baseline.to_str().expect("utf-8 path");
        // Same code on a box under heavy load: both cores at half
        // throughput, so the speedup ratio is unchanged and the gate
        // must pass even though absolute throughput is far below the
        // 0.8 floor.
        let loaded = report(vec![row("go", 3_000_000.0, Some(1_000_000.0))]);
        assert_eq!(
            regressions_vs_baseline(&loaded, path).expect("gate runs"),
            Vec::<String>::new()
        );
        // A genuine hot-loop regression shows up as a speedup drop no
        // matter the load: event core slowed, legacy untouched.
        let regressed = report(vec![row("go", 2_000_000.0, Some(1_000_000.0))]);
        let failures = regressions_vs_baseline(&regressed, path).expect("gate runs");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("speedup"), "{}", failures[0]);
        std::fs::remove_file(&baseline).ok();
    }

    #[test]
    fn absolute_floor_applies_only_when_legacy_was_skipped() {
        let baseline = baseline_file("floor", vec![row("go", 6_000_000.0, Some(2_000_000.0))]);
        let path = baseline.to_str().expect("utf-8 path");
        // Legacy skipped: no same-run reference, so the absolute
        // event_ips floor (0.8 × 6M = 4.8M) gates.
        let slow = report(vec![row("go", 3_000_000.0, None)]);
        let failures = regressions_vs_baseline(&slow, path).expect("gate runs");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("inst/s"), "{}", failures[0]);
        let fast = report(vec![row("go", 5_000_000.0, None)]);
        assert_eq!(
            regressions_vs_baseline(&fast, path).expect("gate runs"),
            Vec::<String>::new()
        );
        // Workloads absent from the baseline are never gated.
        let unknown = report(vec![row("novel", 1.0, None)]);
        assert_eq!(
            regressions_vs_baseline(&unknown, path).expect("gate runs"),
            Vec::<String>::new()
        );
        std::fs::remove_file(&baseline).ok();
    }

    #[test]
    fn lever_attribution_and_geomeans() {
        let r = row("go", 8_000_000.0, Some(2_000_000.0));
        assert_eq!(r.speedup(), Some(4.0), "headline: event+compiled/legacy");
        assert_eq!(r.core_speedup(), Some(3.0), "core lever alone");
        assert!((r.compiled_speedup() - 4.0 / 3.0).abs() < 1e-12);
        let rep = report(vec![
            row("go", 8_000_000.0, Some(2_000_000.0)),
            row("gcc", 9_000_000.0, Some(1_000_000.0)),
        ]);
        let geo = rep.suite_speedup_geomean().expect("both rows timed legacy");
        assert!((geo - 6.0).abs() < 1e-9, "geomean(4,9) = 6, got {geo}");
        let rendered = rep.to_json().render();
        assert!(rendered.contains("\"schema\":\"arl-speed/v2\""));
        assert!(rendered.contains("\"identical\":true"));
        assert!(rendered.contains("\"speedup_geomean\""));
        assert!(rendered.contains("\"core_speedup_geomean\""));
        assert!(rendered.contains("\"compiled_speedup_geomean\""));
    }

    #[test]
    fn geomean_of_empty_is_none() {
        assert_eq!(geomean(std::iter::empty()), None);
        let no_legacy = report(vec![row("go", 1.0, None)]);
        assert_eq!(no_legacy.suite_speedup_geomean(), None);
        assert_eq!(no_legacy.suite_core_speedup_geomean(), None);
    }
}
