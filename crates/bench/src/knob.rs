//! Unified warn-and-fallback parsing for `ARL_*` environment knobs.
//!
//! Every knob follows one contract, mirroring the long-standing
//! `ARL_SCALE` behaviour: an unset variable silently takes the default, a
//! parsable-but-out-of-range value is clamped with a warning, and an
//! unparsable value warns and falls back to the default — a typo must
//! never silently select the wrong behaviour. `ARL_SHARD`,
//! `ARL_SNAPSHOT_INTERVAL` and `ARL_BACKEND` all route through here
//! (historically the first two had hand-rolled parsers with different
//! zero/invalid handling).

use arl_timing::BackendConfig;

/// Resolves a knob through `parse`: unset → `default`; unparsable →
/// warn on stderr (naming the fallback) and `default`.
pub fn knob_parsed<T>(
    name: &str,
    value: Option<&str>,
    default: T,
    fallback_desc: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    match value {
        None => default,
        Some(v) => match parse(v.trim()) {
            Some(parsed) => parsed,
            None => {
                eprintln!("[arl-bench] ignoring invalid {name}={v:?}; using {fallback_desc}");
                default
            }
        },
    }
}

/// [`knob_parsed`] for unsigned integer knobs, additionally clamping
/// parsed values below `min` (with a warning).
pub fn knob_u64(name: &str, value: Option<&str>, default: u64, min: u64) -> u64 {
    let n = knob_parsed(name, value, default, &default.to_string(), |v| {
        v.parse::<u64>().ok()
    });
    if n < min {
        eprintln!("[arl-bench] clamping {name}={n} to {min}");
        return min;
    }
    n
}

/// [`knob_parsed`] for float knobs (ratios, thresholds), rejecting
/// non-finite values and clamping parsed values below `min` (with a
/// warning).
pub fn knob_f64(name: &str, value: Option<&str>, default: f64, min: f64) -> f64 {
    let n = knob_parsed(name, value, default, &default.to_string(), |v| {
        v.parse::<f64>().ok().filter(|x| x.is_finite())
    });
    if n < min {
        eprintln!("[arl-bench] clamping {name}={n} to {min}");
        return min;
    }
    n
}

/// [`knob_parsed`] for boolean knobs: `0`/`false`/`off` and
/// `1`/`true`/`on` (case-insensitive); anything else warns and takes the
/// default.
pub fn knob_bool(name: &str, value: Option<&str>, default: bool) -> bool {
    knob_parsed(
        name,
        value,
        default,
        if default { "on" } else { "off" },
        |v| match v.to_ascii_lowercase().as_str() {
            "0" | "false" | "off" => Some(false),
            "1" | "true" | "on" => Some(true),
            _ => None,
        },
    )
}

/// Resolves a raw `ARL_TRACE_COMPILED` value: whether bench trace
/// captures embed the precomputed per-instruction model section
/// (version-3 traces). Defaults to on — replays consume the hints and
/// skip model recomputation; stats are bit-identical either way.
pub fn compiled_capture_from_value(value: Option<&str>) -> bool {
    knob_bool("ARL_TRACE_COMPILED", value, true)
}

/// Reads `ARL_TRACE_COMPILED`.
pub fn compiled_capture_from_env() -> bool {
    compiled_capture_from_value(std::env::var("ARL_TRACE_COMPILED").ok().as_deref())
}

/// Resolves a raw `ARL_BACKEND` value to a memory backend: one of the
/// [`BackendConfig::label`]s (case-insensitive); unset means the baseline
/// chain and anything else warns and falls back to it.
pub fn backend_from_value(value: Option<&str>) -> BackendConfig {
    knob_parsed(
        "ARL_BACKEND",
        value,
        BackendConfig::Baseline,
        "the baseline backend (valid: baseline, stacked-memory, stacked-cache, \
         stacked-memcache, burst)",
        BackendConfig::from_label,
    )
}

/// Reads `ARL_BACKEND`.
pub fn backend_from_env() -> BackendConfig {
    backend_from_value(std::env::var("ARL_BACKEND").ok().as_deref())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn knob_parsed_falls_back_on_garbage_only() {
        assert_eq!(knob_parsed("K", None, 7, "7", |v| v.parse().ok()), 7);
        assert_eq!(knob_parsed("K", Some("3"), 7, "7", |v| v.parse().ok()), 3);
        assert_eq!(knob_parsed("K", Some(" 3 "), 7, "7", |v| v.parse().ok()), 3);
        assert_eq!(
            knob_parsed("K", Some("x"), 7, "7", |v| v.parse::<u64>().ok()),
            7
        );
    }

    #[test]
    fn knob_u64_clamps_below_min() {
        assert_eq!(knob_u64("K", Some("0"), 1, 1), 1, "zero clamps to min");
        assert_eq!(
            knob_u64("K", Some("0"), 5, 0),
            0,
            "zero is valid when min is 0"
        );
        assert_eq!(knob_u64("K", Some("9"), 1, 1), 9);
        assert_eq!(knob_u64("K", None, 4, 1), 4);
        assert_eq!(
            knob_u64("K", Some("-3"), 4, 1),
            4,
            "negatives are invalid, not clamped"
        );
    }

    #[test]
    fn knob_f64_clamps_and_rejects_nonfinite() {
        assert_eq!(knob_f64("K", None, 0.8, 0.0), 0.8);
        assert_eq!(knob_f64("K", Some("1.5"), 0.8, 0.0), 1.5);
        assert_eq!(knob_f64("K", Some("-2"), 0.8, 0.0), 0.0, "clamped to min");
        assert_eq!(knob_f64("K", Some("nan"), 0.8, 0.0), 0.8, "NaN falls back");
        assert_eq!(knob_f64("K", Some("inf"), 0.8, 0.0), 0.8, "inf falls back");
        assert_eq!(knob_f64("K", Some("x"), 0.8, 0.0), 0.8);
    }

    #[test]
    fn knob_bool_accepts_the_usual_spellings() {
        for (v, want) in [
            (None, true),
            (Some("1"), true),
            (Some("true"), true),
            (Some("ON"), true),
            (Some("0"), false),
            (Some("false"), false),
            (Some("off"), false),
            (Some("maybe"), true),
        ] {
            assert_eq!(knob_bool("K", v, true), want, "{v:?}");
        }
        assert!(!knob_bool("K", Some("junk"), false), "fallback is default");
    }

    #[test]
    fn compiled_capture_defaults_on() {
        assert!(compiled_capture_from_value(None));
        assert!(!compiled_capture_from_value(Some("0")));
        assert!(compiled_capture_from_value(Some("1")));
        assert!(compiled_capture_from_value(Some("typo")), "warn, stay on");
    }

    #[test]
    fn backend_values_resolve_with_baseline_fallback() {
        assert_eq!(backend_from_value(None), BackendConfig::Baseline);
        assert_eq!(
            backend_from_value(Some("baseline")),
            BackendConfig::Baseline
        );
        assert_eq!(
            backend_from_value(Some("stacked-cache")),
            BackendConfig::StackedCache
        );
        assert_eq!(
            backend_from_value(Some("STACKED-MEMCACHE")),
            BackendConfig::StackedMemCache
        );
        assert_eq!(backend_from_value(Some(" burst ")), BackendConfig::Burst);
        assert_eq!(backend_from_value(Some("hbm3")), BackendConfig::Baseline);
        for backend in BackendConfig::ALL {
            assert_eq!(backend_from_value(Some(backend.label())), backend);
        }
    }
}
