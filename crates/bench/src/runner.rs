//! Parallel experiment runner and structured run records.
//!
//! Every table/figure binary fans its (workload × config) cells out over a
//! [`Pool`] of scoped worker threads, then folds the results back **in
//! cell order**, so the rendered output is byte-identical to a serial run
//! (`ARL_THREADS=1`). On top of the raw results, each cell produces a
//! [`RunRecord`]; the per-experiment [`SuiteReport`] serializes them to
//! JSON (`arl-stats`' hand-rolled [`Json`]) and, when `ARL_JSON` is set,
//! writes a `BENCH_<experiment>.json` trajectory file.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use arl_stats::Json;
use arl_workloads::Scale;

/// A fixed-width pool of scoped worker threads.
///
/// Work items are claimed from a shared counter (dynamic load balancing —
/// timing cells vary ~10× in cost), but results land in a slot vector
/// indexed by cell, so the fold order never depends on scheduling. Cells
/// must be deterministic functions of their input and index; all of this
/// crate's cells are (the simulators take no seeds and share no state).
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count (`0` is clamped to 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Reads `ARL_THREADS`; defaults to all available cores.
    /// `ARL_THREADS=1` reproduces the serial harness exactly; invalid
    /// values fall back to the default (the output never depends on the
    /// worker count, so a fallback is always safe).
    pub fn from_env() -> Pool {
        let value = std::env::var("ARL_THREADS").ok();
        if let Some(v) = &value {
            if v.trim().parse::<usize>().is_err() {
                eprintln!("[arl-bench] ignoring invalid ARL_THREADS={v:?}; using all cores");
            }
        }
        Pool::new(threads_from_value(value.as_deref()))
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning outputs in input
    /// order. `f` receives the cell index alongside the item so cells can
    /// derive per-cell seeds/labels deterministically.
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let jobs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = jobs[i].lock().unwrap().take().expect("each job taken once");
                    let out = f(i, item);
                    *slots[i].lock().unwrap() = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker did not poison the slot")
                    .expect("scope joined every worker")
            })
            .collect()
    }
}

/// Resolves a raw `ARL_THREADS` value to a worker count: a positive
/// integer is honoured (`0` clamps to 1), anything unparsable — or no
/// value at all — falls back to all available cores.
pub fn threads_from_value(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// One (workload × config) cell's structured result.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Workload short name (`"go"`, ...).
    pub workload: String,
    /// Configuration/scheme label (`"(3+3)"`, `"1BIT-HYBRID"`, `"profile"`).
    pub config: String,
    /// How the cell obtained its instruction stream: `"execute"` (live
    /// functional simulation), `"capture"` (live execution recording a
    /// trace), or `"replay"` (trace-driven, no functional execution).
    pub phase: String,
    /// Dynamic instructions the cell simulated.
    pub instructions: u64,
    /// Cycles, for timing cells.
    pub cycles: Option<u64>,
    /// Instructions per cycle, for timing cells.
    pub ipc: Option<f64>,
    /// Prediction accuracy (ARPT/evaluator or in-pipeline), when the cell
    /// predicts anything.
    pub accuracy: Option<f64>,
    /// Host wall-clock seconds the cell took.
    pub wall_seconds: f64,
    /// Peak-RSS proxy: bytes resident in the simulated memory image.
    pub peak_rss_bytes: u64,
}

impl RunRecord {
    /// A record with everything optional unset; cells fill in what they
    /// measured.
    pub fn new(workload: &str, config: &str) -> RunRecord {
        RunRecord {
            workload: workload.to_string(),
            config: config.to_string(),
            phase: "execute".to_string(),
            instructions: 0,
            cycles: None,
            ipc: None,
            accuracy: None,
            wall_seconds: 0.0,
            peak_rss_bytes: 0,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("phase", Json::from(self.phase.as_str())),
            ("instructions", Json::from(self.instructions)),
            ("cycles", Json::from(self.cycles)),
            ("ipc", Json::from(self.ipc)),
            ("accuracy", Json::from(self.accuracy)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
        ])
    }
}

/// Times one cell body and stamps the elapsed wall clock into the record
/// it returns.
pub fn timed_record<T>(
    workload: &str,
    config: &str,
    body: impl FnOnce(&mut RunRecord) -> T,
) -> (T, RunRecord) {
    let mut record = RunRecord::new(workload, config);
    let start = Instant::now();
    let value = body(&mut record);
    record.wall_seconds = start.elapsed().as_secs_f64();
    (value, record)
}

/// Everything one experiment run produced, ready for `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Experiment name (`"figure8"`, `"ablation_lvc"`, ...).
    pub experiment: String,
    /// Human-readable scale (`"tiny"`, `"x1"`, `"x4"`).
    pub scale: String,
    /// Worker threads used.
    pub threads: usize,
    /// Whole-experiment wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-cell records, in cell order.
    pub records: Vec<RunRecord>,
}

/// `BENCH_*.json` schema identifier; bump when the shape changes.
/// v2 added per-record `phase` and the report-level capture/replay
/// wall-clock split for the execute-once/replay-many pipeline.
pub const JSON_SCHEMA: &str = "arl-bench/v2";

/// `BENCH_*_probe.json` schema identifier (the `ARL_PROBE=1` payload).
pub const PROBE_SCHEMA: &str = "arl-probe/v1";

/// Writes an `ARL_PROBE` document as `BENCH_<experiment>_probe.json`,
/// steered by the same `ARL_JSON` convention as [`SuiteReport`]: into the
/// directory when `ARL_JSON` names one, alongside the file when it names a
/// file, and into the working directory when `ARL_JSON` is unset.
pub fn write_probe_json(experiment: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let file_name = format!("BENCH_{experiment}_probe.json");
    let file = match std::env::var_os("ARL_JSON") {
        Some(raw) => {
            let path = PathBuf::from(raw);
            if path.is_dir() {
                path.join(file_name)
            } else {
                match path.parent() {
                    Some(dir) if !dir.as_os_str().is_empty() => dir.join(file_name),
                    _ => PathBuf::from(file_name),
                }
            }
        }
        None => PathBuf::from(file_name),
    };
    std::fs::write(&file, doc.render() + "\n")?;
    Ok(file)
}

impl SuiteReport {
    /// An empty report for `experiment` (records are appended by the
    /// experiment driver).
    pub fn new(experiment: &str, scale: Scale, threads: usize) -> SuiteReport {
        SuiteReport {
            experiment: experiment.to_string(),
            scale: scale_label(scale),
            threads,
            wall_seconds: 0.0,
            records: Vec::new(),
        }
    }

    /// Summed cell wall-clock spent functionally executing workloads
    /// (the `"execute"` and `"capture"` phases).
    pub fn capture_seconds(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase != "replay")
            .map(|r| r.wall_seconds)
            .sum()
    }

    /// Summed cell wall-clock spent replaying captured traces.
    pub fn replay_seconds(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase == "replay")
            .map(|r| r.wall_seconds)
            .sum()
    }

    /// The full `BENCH_*.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(JSON_SCHEMA)),
            ("experiment", Json::from(self.experiment.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("threads", Json::from(self.threads)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("capture_seconds", Json::from(self.capture_seconds())),
            ("replay_seconds", Json::from(self.replay_seconds())),
            (
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }

    /// Writes the report to `path`. If `path` is a directory, writes
    /// `BENCH_<experiment>.json` inside it.
    pub fn write_json(&self, path: &Path) -> std::io::Result<PathBuf> {
        let file = if path.is_dir() {
            path.join(format!("BENCH_{}.json", self.experiment))
        } else {
            path.to_path_buf()
        };
        std::fs::write(&file, self.to_json().render() + "\n")?;
        Ok(file)
    }

    /// Honours `ARL_JSON`: when set, writes the report there (file path,
    /// or directory to get the `BENCH_<experiment>.json` name) and returns
    /// the path written.
    pub fn emit_from_env(&self) -> std::io::Result<Option<PathBuf>> {
        match std::env::var_os("ARL_JSON") {
            Some(path) => self.write_json(Path::new(&path)).map(Some),
            None => Ok(None),
        }
    }
}

fn scale_label(scale: Scale) -> String {
    if scale.is_tiny() {
        "tiny".to_string()
    } else {
        format!("x{}", scale.factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_covers_every_item() {
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let out = pool.map((0..100).collect(), |i, x: i32| {
                assert_eq!(i as i32, x);
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(pool.map(vec![9], |_, x: u8| x + 1), vec![10]);
    }

    #[test]
    fn pool_clamps_zero_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn threads_from_value_handles_edge_cases() {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Explicit counts are honoured; zero clamps to serial.
        assert_eq!(threads_from_value(Some("1")), 1);
        assert_eq!(threads_from_value(Some(" 3 ")), 3);
        assert_eq!(threads_from_value(Some("0")), 1);
        // Oversubscription is allowed — Pool::map caps workers at the
        // cell count, so a huge value is harmless.
        assert_eq!(threads_from_value(Some("4096")), 4096);
        // Unset or invalid values fall back to all cores.
        assert_eq!(threads_from_value(None), default);
        for bad in ["", "lots", "-2", "1.5", "0x8"] {
            assert_eq!(threads_from_value(Some(bad)), default, "value {bad:?}");
        }
    }

    #[test]
    fn oversubscribed_pool_output_matches_serial() {
        // Far more workers than items: identical results, every item
        // processed exactly once.
        let serial = Pool::new(1).map((0..5).collect(), |_, x: i32| x * 10);
        let oversub = Pool::new(64).map((0..5).collect(), |_, x: i32| x * 10);
        assert_eq!(serial, oversub);
    }

    #[test]
    fn report_json_has_the_documented_schema() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 2);
        let ((), record) = timed_record("go", "(2+0)", |r| {
            r.instructions = 1000;
            r.cycles = Some(500);
            r.ipc = Some(2.0);
            r.peak_rss_bytes = 4096;
        });
        report.records.push(record);
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some(JSON_SCHEMA));
        assert_eq!(json.get("scale").unwrap().as_str(), Some("tiny"));
        let records = json.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("phase").unwrap().as_str(), Some("execute"));
        assert_eq!(records[0].get("cycles").unwrap().as_u64(), Some(500));
        assert_eq!(records[0].get("accuracy"), Some(&Json::Null));
        assert!(records[0].get("wall_seconds").unwrap().as_f64().unwrap() >= 0.0);
        assert!(json.get("capture_seconds").unwrap().as_f64().is_some());
        assert!(json.get("replay_seconds").unwrap().as_f64().is_some());
        // The document round-trips through the parser.
        let text = json.render();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn phase_split_sums_capture_and_replay_wall_clock() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 1);
        for (phase, wall) in [("capture", 2.0), ("replay", 0.25), ("replay", 0.5)] {
            let mut r = RunRecord::new("go", "(2+0)");
            r.phase = phase.to_string();
            r.wall_seconds = wall;
            report.records.push(r);
        }
        assert!((report.capture_seconds() - 2.0).abs() < 1e-12);
        assert!((report.replay_seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn write_json_into_directory_uses_bench_name() {
        let dir = std::env::temp_dir().join(format!("arl-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = SuiteReport::new("figure8", Scale::default(), 1);
        let path = report.write_json(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_figure8.json");
        let back = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.get("experiment").unwrap().as_str(), Some("figure8"));
        assert_eq!(back.get("scale").unwrap().as_str(), Some("x1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
