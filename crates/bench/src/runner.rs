//! Parallel experiment runner and structured run records.
//!
//! Every table/figure binary fans its (workload × config) cells out over a
//! [`Pool`] of scoped worker threads, then folds the results back **in
//! cell order**, so the rendered output is byte-identical to a serial run
//! (`ARL_THREADS=1`). On top of the raw results, each cell produces a
//! [`RunRecord`]; the per-experiment [`SuiteReport`] serializes them to
//! JSON (`arl-stats`' hand-rolled [`Json`]) and, when `ARL_JSON` is set,
//! writes a `BENCH_<experiment>.json` trajectory file.

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use arl_stats::Json;
use arl_workloads::Scale;

/// Locks a mutex even when a previous holder panicked: a worker panic
/// must never cascade into `PoisonError` panics on the threads that are
/// still making progress. Every datum behind these locks is written in
/// one assignment, so a poisoned value is never half-updated.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload (the `&str`/`String` the job panicked
/// with, or a placeholder for exotic payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a supervised job failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The job panicked (caught; the suite kept running).
    Panic,
    /// The job finished after its deadline; the late result was discarded.
    /// Worker threads are scoped and cannot be killed mid-cell, so the
    /// watchdog is post-hoc: a stuck job still blocks its worker, but a
    /// merely-slow one is reported instead of silently accepted.
    Timeout,
}

impl FailureKind {
    /// Stable lowercase label (JSON, stderr summaries).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }
}

/// One supervised job's terminal failure, after retries were exhausted.
#[derive(Clone, PartialEq, Debug)]
pub struct JobFailure {
    /// Cell index in the input order.
    pub index: usize,
    /// What went wrong on the last attempt.
    pub kind: FailureKind,
    /// The panic message or deadline description.
    pub message: String,
    /// Attempts made (1 = no retries).
    pub attempts: u32,
}

impl JobFailure {
    /// The `errors` array element for `BENCH_*.json` documents.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::from(self.index)),
            ("kind", Json::from(self.kind.label())),
            ("message", Json::from(self.message.as_str())),
            ("attempts", Json::from(u64::from(self.attempts))),
        ])
    }

    /// One-line stderr summary.
    pub fn summary(&self) -> String {
        format!(
            "job {} failed ({}, {} attempt{}): {}",
            self.index,
            self.kind.label(),
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// Collapses repeated failure records for the same job id: retried and
/// re-collected jobs (a resumed sweep, a supervisor that logs every
/// attempt) would otherwise repeat one job's summary line per attempt.
/// Keeps the record with the most attempts — the most complete account of
/// the job's fate — and normalizes the order to job order, so reports
/// stay deterministic regardless of how the failures were gathered.
pub fn dedupe_failures(failures: &mut Vec<JobFailure>) {
    failures.sort_by(|a, b| a.index.cmp(&b.index).then(b.attempts.cmp(&a.attempts)));
    failures.dedup_by_key(|f| f.index);
}

/// The panic payload [`Pool::map`] raises after **every** job has run
/// when at least one of them panicked: the completed cells are not lost
/// to the first failure, and `run_main` turns this into per-job stderr
/// lines plus a non-zero exit instead of a raw panic trace.
pub struct SuiteFailures(pub Vec<JobFailure>);

impl std::fmt::Debug for SuiteFailures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut failures = self.0.clone();
        dedupe_failures(&mut failures);
        writeln!(f, "{} job(s) failed:", failures.len())?;
        for failure in &failures {
            writeln!(f, "  {}", failure.summary())?;
        }
        Ok(())
    }
}

/// A fixed-width pool of scoped worker threads.
///
/// Work items are claimed from a shared counter (dynamic load balancing —
/// timing cells vary ~10× in cost), but results land in a slot vector
/// indexed by cell, so the fold order never depends on scheduling. Cells
/// must be deterministic functions of their input and index; all of this
/// crate's cells are (the simulators take no seeds and share no state).
///
/// Jobs run supervised: a panicking cell is caught, the remaining cells
/// complete, and the failure surfaces either as a [`SuiteFailures`] panic
/// ([`Pool::map`]) or as per-job `Err` records ([`Pool::try_map`], which
/// additionally enforces the deadline and retry policy).
pub struct Pool {
    threads: usize,
    deadline: Option<Duration>,
    retries: u32,
}

impl Pool {
    /// A pool with an explicit worker count (`0` is clamped to 1), no
    /// deadline, and no retries.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            deadline: None,
            retries: 0,
        }
    }

    /// Reads `ARL_THREADS` (defaults to all available cores),
    /// `ARL_DEADLINE` (per-job deadline in seconds; unset = none), and
    /// `ARL_RETRIES` (bounded retry count for supervised jobs; default 0).
    /// `ARL_THREADS=1` reproduces the serial harness exactly; invalid
    /// values fall back to the default (the output never depends on the
    /// worker count, so a fallback is always safe).
    pub fn from_env() -> Pool {
        let value = std::env::var("ARL_THREADS").ok();
        if let Some(v) = &value {
            if v.trim().parse::<usize>().is_err() {
                eprintln!("[arl-bench] ignoring invalid ARL_THREADS={v:?}; using all cores");
            }
        }
        Pool::new(threads_from_value(value.as_deref()))
            .with_deadline(deadline_from_value(
                std::env::var("ARL_DEADLINE").ok().as_deref(),
            ))
            .with_retries(retries_from_value(
                std::env::var("ARL_RETRIES").ok().as_deref(),
            ))
    }

    /// Sets the per-job deadline for [`Pool::try_map`] jobs.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Pool {
        self.deadline = deadline;
        self
    }

    /// Sets the bounded retry count for [`Pool::try_map`] jobs.
    pub fn with_retries(mut self, retries: u32) -> Pool {
        self.retries = retries;
        self
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning outputs in input
    /// order. `f` receives the cell index alongside the item so cells can
    /// derive per-cell seeds/labels deterministically.
    ///
    /// # Panics
    ///
    /// If any job panics, the panic is caught, **every other job still
    /// runs to completion**, and this panics afterwards with a
    /// [`SuiteFailures`] payload listing each failed cell (`run_main`
    /// catches it and exits non-zero with a per-job summary).
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        let n = items.len();
        let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());
        let run = |i: usize, item: I| -> Option<O> {
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(out) => Some(out),
                Err(payload) => {
                    relock(&failures).push(JobFailure {
                        index: i,
                        kind: FailureKind::Panic,
                        message: panic_message(payload.as_ref()),
                        attempts: 1,
                    });
                    None
                }
            }
        };
        let slots: Vec<Option<O>> = if self.threads == 1 || n <= 1 {
            items
                .into_iter()
                .enumerate()
                .map(|(i, item)| run(i, item))
                .collect()
        } else {
            let jobs: Vec<Mutex<Option<I>>> =
                items.into_iter().map(|i| Mutex::new(Some(i))).collect();
            let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(n) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // A missing item would mean the claim counter
                        // handed the same index out twice; skipping is
                        // strictly safer than panicking the worker.
                        let Some(item) = relock(&jobs[i]).take() else {
                            continue;
                        };
                        let out = run(i, item);
                        *relock(&slots[i]) = out;
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap_or_else(|e| e.into_inner()))
                .collect()
        };
        let mut failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
        if !failures.is_empty() {
            dedupe_failures(&mut failures);
            std::panic::panic_any(SuiteFailures(failures));
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("no failure recorded, so every slot was filled"))
            .collect()
    }

    /// Fully supervised [`Pool::map`]: every job runs under
    /// `catch_unwind`, against the pool's deadline, with up to
    /// `retries` bounded re-attempts (deterministic linear backoff), and
    /// a job that still fails yields an `Err(JobFailure)` **in its slot**
    /// instead of failing the suite — the caller decides how to report it.
    ///
    /// `f` borrows its item (retries re-run the same input). Outputs come
    /// back in input order, exactly one per item.
    pub fn try_map<I, O, F>(&self, items: &[I], f: F) -> Vec<Result<O, JobFailure>>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let supervise = |i: usize, item: &I| -> Result<O, JobFailure> {
            let mut last: Option<JobFailure> = None;
            for attempt in 1..=self.retries + 1 {
                if attempt > 1 {
                    std::thread::sleep(Duration::from_millis(10 * u64::from(attempt - 1)));
                }
                let start = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(out) => match self.deadline {
                        Some(deadline) if start.elapsed() > deadline => {
                            last = Some(JobFailure {
                                index: i,
                                kind: FailureKind::Timeout,
                                message: format!(
                                    "finished after the {:.3}s deadline; result discarded",
                                    deadline.as_secs_f64()
                                ),
                                attempts: attempt,
                            });
                        }
                        _ => return Ok(out),
                    },
                    Err(payload) => {
                        last = Some(JobFailure {
                            index: i,
                            kind: FailureKind::Panic,
                            message: panic_message(payload.as_ref()),
                            attempts: attempt,
                        });
                    }
                }
            }
            Err(last.unwrap_or_else(|| unreachable!("at least one attempt always runs")))
        };
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| supervise(i, item))
                .collect();
        }
        let slots: Vec<Mutex<Option<Result<O, JobFailure>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = supervise(i, &items[i]);
                    *relock(&slots[i]) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("supervise never unwinds, so every slot was filled")
            })
            .collect()
    }
}

/// Resolves a raw `ARL_DEADLINE` value: positive seconds (fractions
/// allowed) become a per-job deadline; unset, zero, or unparsable values
/// mean no deadline (with a warning for the unparsable case).
pub fn deadline_from_value(value: Option<&str>) -> Option<Duration> {
    let v = value?;
    match v.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
        Ok(_) => None,
        Err(_) => {
            eprintln!("[arl-bench] ignoring invalid ARL_DEADLINE={v:?}; no deadline");
            None
        }
    }
}

/// Resolves a raw `ARL_RETRIES` value: a non-negative integer count of
/// re-attempts; unset or unparsable values mean no retries (with a
/// warning for the unparsable case).
pub fn retries_from_value(value: Option<&str>) -> u32 {
    let Some(v) = value else {
        return 0;
    };
    match v.trim().parse::<u32>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("[arl-bench] ignoring invalid ARL_RETRIES={v:?}; no retries");
            0
        }
    }
}

/// Resolves a raw `ARL_THREADS` value to a worker count: a positive
/// integer is honoured (`0` clamps to 1), anything unparsable — or no
/// value at all — falls back to all available cores.
pub fn threads_from_value(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// One (workload × config) cell's structured result.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Workload short name (`"go"`, ...).
    pub workload: String,
    /// Configuration/scheme label (`"(3+3)"`, `"1BIT-HYBRID"`, `"profile"`).
    pub config: String,
    /// How the cell obtained its instruction stream: `"execute"` (live
    /// functional simulation), `"capture"` (live execution recording a
    /// trace), or `"replay"` (trace-driven, no functional execution).
    pub phase: String,
    /// Dynamic instructions the cell simulated.
    pub instructions: u64,
    /// Cycles, for timing cells.
    pub cycles: Option<u64>,
    /// Instructions per cycle, for timing cells.
    pub ipc: Option<f64>,
    /// Prediction accuracy (ARPT/evaluator or in-pipeline), when the cell
    /// predicts anything.
    pub accuracy: Option<f64>,
    /// Host wall-clock seconds the cell took.
    pub wall_seconds: f64,
    /// Peak-RSS proxy: bytes resident in the simulated memory image.
    pub peak_rss_bytes: u64,
}

impl RunRecord {
    /// A record with everything optional unset; cells fill in what they
    /// measured.
    pub fn new(workload: &str, config: &str) -> RunRecord {
        RunRecord {
            workload: workload.to_string(),
            config: config.to_string(),
            phase: "execute".to_string(),
            instructions: 0,
            cycles: None,
            ipc: None,
            accuracy: None,
            wall_seconds: 0.0,
            peak_rss_bytes: 0,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("phase", Json::from(self.phase.as_str())),
            ("instructions", Json::from(self.instructions)),
            ("cycles", Json::from(self.cycles)),
            ("ipc", Json::from(self.ipc)),
            ("accuracy", Json::from(self.accuracy)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
        ])
    }
}

/// Times one cell body and stamps the elapsed wall clock into the record
/// it returns.
pub fn timed_record<T>(
    workload: &str,
    config: &str,
    body: impl FnOnce(&mut RunRecord) -> T,
) -> (T, RunRecord) {
    let mut record = RunRecord::new(workload, config);
    let start = Instant::now();
    let value = body(&mut record);
    record.wall_seconds = start.elapsed().as_secs_f64();
    (value, record)
}

/// Everything one experiment run produced, ready for `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Experiment name (`"figure8"`, `"ablation_lvc"`, ...).
    pub experiment: String,
    /// Human-readable scale (`"tiny"`, `"x1"`, `"x4"`).
    pub scale: String,
    /// Worker threads used.
    pub threads: usize,
    /// Whole-experiment wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-cell records, in cell order.
    pub records: Vec<RunRecord>,
    /// Supervised jobs that failed (panic/timeout) after retries. Only
    /// serialized when non-empty, so fault-free runs stay byte-identical
    /// to the unsupervised harness.
    pub errors: Vec<JobFailure>,
}

/// `BENCH_*.json` schema identifier; bump when the shape changes.
/// v2 added per-record `phase` and the report-level capture/replay
/// wall-clock split for the execute-once/replay-many pipeline.
pub const JSON_SCHEMA: &str = "arl-bench/v2";

/// `BENCH_*_probe.json` schema identifier (the `ARL_PROBE=1` payload).
pub const PROBE_SCHEMA: &str = "arl-probe/v1";

/// Writes an `ARL_PROBE` document as `BENCH_<experiment>_probe.json`,
/// steered by the same `ARL_JSON` convention as [`SuiteReport`]: into the
/// directory when `ARL_JSON` names one, alongside the file when it names a
/// file, and into the working directory when `ARL_JSON` is unset.
pub fn write_probe_json(experiment: &str, doc: &Json) -> std::io::Result<PathBuf> {
    write_named_json(&format!("BENCH_{experiment}_probe.json"), doc)
}

/// Writes `doc` as `file_name`, resolved by the `ARL_JSON` convention
/// (into the directory it names, alongside the file it names, or into
/// the working directory when unset).
pub fn write_named_json(file_name: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let file = match std::env::var_os("ARL_JSON") {
        Some(raw) => {
            let path = PathBuf::from(raw);
            if path.is_dir() {
                path.join(file_name)
            } else {
                match path.parent() {
                    Some(dir) if !dir.as_os_str().is_empty() => dir.join(file_name),
                    _ => PathBuf::from(file_name),
                }
            }
        }
        None => PathBuf::from(file_name),
    };
    std::fs::write(&file, doc.render() + "\n")?;
    Ok(file)
}

impl SuiteReport {
    /// An empty report for `experiment` (records are appended by the
    /// experiment driver).
    pub fn new(experiment: &str, scale: Scale, threads: usize) -> SuiteReport {
        SuiteReport {
            experiment: experiment.to_string(),
            scale: scale_label(scale),
            threads,
            wall_seconds: 0.0,
            records: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Summed cell wall-clock spent functionally executing workloads
    /// (the `"execute"` and `"capture"` phases).
    pub fn capture_seconds(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase != "replay")
            .map(|r| r.wall_seconds)
            .sum()
    }

    /// Summed cell wall-clock spent replaying captured traces.
    pub fn replay_seconds(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase == "replay")
            .map(|r| r.wall_seconds)
            .sum()
    }

    /// The full `BENCH_*.json` document. The `errors` array (supervised
    /// job failures) only appears when at least one job failed, keeping
    /// clean-run documents byte-identical to the pre-supervision schema.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::from(JSON_SCHEMA)),
            ("experiment", Json::from(self.experiment.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("threads", Json::from(self.threads)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("capture_seconds", Json::from(self.capture_seconds())),
            ("replay_seconds", Json::from(self.replay_seconds())),
            (
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ];
        if !self.errors.is_empty() {
            pairs.push((
                "errors",
                Json::Arr(self.errors.iter().map(JobFailure::to_json).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Writes the report to `path`. If `path` is a directory, writes
    /// `BENCH_<experiment>.json` inside it.
    pub fn write_json(&self, path: &Path) -> std::io::Result<PathBuf> {
        let file = if path.is_dir() {
            path.join(format!("BENCH_{}.json", self.experiment))
        } else {
            path.to_path_buf()
        };
        std::fs::write(&file, self.to_json().render() + "\n")?;
        Ok(file)
    }

    /// Honours `ARL_JSON`: when set, writes the report there (file path,
    /// or directory to get the `BENCH_<experiment>.json` name) and returns
    /// the path written.
    pub fn emit_from_env(&self) -> std::io::Result<Option<PathBuf>> {
        match std::env::var_os("ARL_JSON") {
            Some(path) => self.write_json(Path::new(&path)).map(Some),
            None => Ok(None),
        }
    }
}

/// Append-only per-job completion log backing `ARL_CHECKPOINT` resume.
///
/// Each finished job appends one `<key>\t<compact-json>\n` line and the
/// file is flushed immediately, so a killed sweep loses at most the job
/// it was executing. On reopen, completed jobs are looked up by key and
/// their recorded payloads are merged back **verbatim** — a resumed sweep
/// therefore re-runs only the missing jobs and its merged output is
/// byte-identical to an uninterrupted run, provided the payloads contain
/// no wall-clock fields. A trailing partial line (torn write at kill
/// time) is detected and ignored, which simply re-runs that one job.
pub struct Checkpoint {
    path: PathBuf,
    done: HashMap<String, String>,
}

impl Checkpoint {
    /// Opens (or starts) the completion log at `path`, loading every
    /// intact entry already recorded.
    ///
    /// # Errors
    ///
    /// I/O errors other than the file not existing yet.
    pub fn open(path: &Path) -> std::io::Result<Checkpoint> {
        let mut done = HashMap::new();
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    // A torn line is missing its tab or carries cut-off
                    // JSON; either way it fails these checks and the job
                    // is simply re-run on resume.
                    if let Some((key, payload)) = line.split_once('\t') {
                        if Json::parse(payload).is_ok() {
                            done.insert(key.to_string(), payload.to_string());
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            done,
        })
    }

    /// Honours `ARL_CHECKPOINT`: opens the log it names, or `None` when
    /// the variable is unset.
    ///
    /// # Errors
    ///
    /// I/O errors from [`Checkpoint::open`].
    pub fn from_env() -> std::io::Result<Option<Checkpoint>> {
        match std::env::var_os("ARL_CHECKPOINT") {
            Some(path) => Checkpoint::open(Path::new(&path)).map(Some),
            None => Ok(None),
        }
    }

    /// The payload recorded for `key`, if that job already completed.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.done.get(key).map(String::as_str)
    }

    /// Completed jobs on record.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Records `key` as complete with `payload`, appending to the log and
    /// flushing before returning.
    ///
    /// # Errors
    ///
    /// I/O errors opening, appending to, or flushing the log.
    pub fn record(&mut self, key: &str, payload: &Json) -> std::io::Result<()> {
        let rendered = payload.render();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{key}\t{rendered}")?;
        file.flush()?;
        self.done.insert(key.to_string(), rendered);
        Ok(())
    }
}

pub(crate) fn scale_label(scale: Scale) -> String {
    if scale.is_tiny() {
        "tiny".to_string()
    } else {
        format!("x{}", scale.factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_covers_every_item() {
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let out = pool.map((0..100).collect(), |i, x: i32| {
                assert_eq!(i as i32, x);
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(pool.map(vec![9], |_, x: u8| x + 1), vec![10]);
    }

    #[test]
    fn pool_clamps_zero_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn threads_from_value_handles_edge_cases() {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Explicit counts are honoured; zero clamps to serial.
        assert_eq!(threads_from_value(Some("1")), 1);
        assert_eq!(threads_from_value(Some(" 3 ")), 3);
        assert_eq!(threads_from_value(Some("0")), 1);
        // Oversubscription is allowed — Pool::map caps workers at the
        // cell count, so a huge value is harmless.
        assert_eq!(threads_from_value(Some("4096")), 4096);
        // Unset or invalid values fall back to all cores.
        assert_eq!(threads_from_value(None), default);
        for bad in ["", "lots", "-2", "1.5", "0x8"] {
            assert_eq!(threads_from_value(Some(bad)), default, "value {bad:?}");
        }
    }

    #[test]
    fn oversubscribed_pool_output_matches_serial() {
        // Far more workers than items: identical results, every item
        // processed exactly once.
        let serial = Pool::new(1).map((0..5).collect(), |_, x: i32| x * 10);
        let oversub = Pool::new(64).map((0..5).collect(), |_, x: i32| x * 10);
        assert_eq!(serial, oversub);
    }

    #[test]
    fn report_json_has_the_documented_schema() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 2);
        let ((), record) = timed_record("go", "(2+0)", |r| {
            r.instructions = 1000;
            r.cycles = Some(500);
            r.ipc = Some(2.0);
            r.peak_rss_bytes = 4096;
        });
        report.records.push(record);
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some(JSON_SCHEMA));
        assert_eq!(json.get("scale").unwrap().as_str(), Some("tiny"));
        let records = json.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("phase").unwrap().as_str(), Some("execute"));
        assert_eq!(records[0].get("cycles").unwrap().as_u64(), Some(500));
        assert_eq!(records[0].get("accuracy"), Some(&Json::Null));
        assert!(records[0].get("wall_seconds").unwrap().as_f64().unwrap() >= 0.0);
        assert!(json.get("capture_seconds").unwrap().as_f64().is_some());
        assert!(json.get("replay_seconds").unwrap().as_f64().is_some());
        // The document round-trips through the parser.
        let text = json.render();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn phase_split_sums_capture_and_replay_wall_clock() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 1);
        for (phase, wall) in [("capture", 2.0), ("replay", 0.25), ("replay", 0.5)] {
            let mut r = RunRecord::new("go", "(2+0)");
            r.phase = phase.to_string();
            r.wall_seconds = wall;
            report.records.push(r);
        }
        assert!((report.capture_seconds() - 2.0).abs() < 1e-12);
        assert!((report.replay_seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn panicking_job_fails_the_map_but_every_other_job_completes() {
        for threads in [1, 4] {
            let completed = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                Pool::new(threads).map((0..8).collect(), |_, x: i32| {
                    if x == 3 {
                        panic!("job {x} exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    x
                })
            }));
            let payload = result.expect_err("a panicking job must fail the map");
            let failures = payload
                .downcast::<SuiteFailures>()
                .expect("map panics with SuiteFailures");
            assert_eq!(failures.0.len(), 1);
            assert_eq!(failures.0[0].index, 3);
            assert_eq!(failures.0[0].kind, FailureKind::Panic);
            assert!(failures.0[0].message.contains("job 3 exploded"));
            // The failure did not take the suite down with it.
            assert_eq!(completed.load(Ordering::Relaxed), 7, "threads={threads}");
            assert!(format!("{:?}", failures).contains("job 3 failed"));
        }
    }

    #[test]
    fn try_map_turns_panics_into_error_records() {
        for threads in [1, 4] {
            let out = Pool::new(threads).try_map(&(0..6).collect::<Vec<i32>>(), |i, x| {
                if *x == 2 {
                    panic!("bad cell");
                }
                i as i32 + *x
            });
            assert_eq!(out.len(), 6);
            for (i, slot) in out.iter().enumerate() {
                if i == 2 {
                    let failure = slot.as_ref().expect_err("cell 2 panicked");
                    assert_eq!(failure.kind, FailureKind::Panic);
                    assert_eq!(failure.attempts, 1);
                    assert!(failure.message.contains("bad cell"));
                } else {
                    assert_eq!(*slot.as_ref().expect("cell succeeded"), 2 * i as i32);
                }
            }
        }
    }

    #[test]
    fn try_map_retries_until_a_job_succeeds() {
        let attempts = AtomicUsize::new(0);
        let out = Pool::new(1).with_retries(3).try_map(&[()], |_, ()| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            7u32
        });
        assert_eq!(out[0].as_ref().copied(), Ok(7));
        assert_eq!(attempts.load(Ordering::Relaxed), 3);

        // Retries exhausted: the last failure is reported with its
        // attempt count.
        let out = Pool::new(1).with_retries(2).try_map(&[()], |_, ()| -> u32 {
            panic!("always");
        });
        let failure = out[0].as_ref().expect_err("job never succeeds");
        assert_eq!(failure.attempts, 3);
        assert_eq!(failure.kind, FailureKind::Panic);
    }

    #[test]
    fn try_map_reports_deadline_overruns_as_timeouts() {
        let out = Pool::new(2)
            .with_deadline(Some(Duration::from_millis(1)))
            .try_map(&[false, true], |i, slow| {
                if *slow {
                    std::thread::sleep(Duration::from_millis(30));
                }
                i
            });
        assert_eq!(out[0].as_ref().copied(), Ok(0));
        let failure = out[1].as_ref().expect_err("slow job misses the deadline");
        assert_eq!(failure.kind, FailureKind::Timeout);
        assert!(failure.message.contains("deadline"));
        let json = failure.to_json();
        assert_eq!(json.get("kind").unwrap().as_str(), Some("timeout"));
        assert_eq!(json.get("index").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn dedupe_failures_keeps_one_record_per_job() {
        let failure = |index, attempts, message: &str| JobFailure {
            index,
            kind: FailureKind::Panic,
            message: message.into(),
            attempts,
        };
        // Job 2 recorded once per attempt, out of order; job 0 once.
        let mut failures = vec![
            failure(2, 1, "first attempt"),
            failure(0, 1, "lone"),
            failure(2, 3, "final attempt"),
            failure(2, 2, "second attempt"),
        ];
        dedupe_failures(&mut failures);
        assert_eq!(failures.len(), 2);
        assert_eq!((failures[0].index, failures[0].attempts), (0, 1));
        // The surviving record is the most-attempted one, job order.
        assert_eq!((failures[1].index, failures[1].attempts), (2, 3));
        assert_eq!(failures[1].message, "final attempt");

        // The stderr rendering collapses the same way without mutating
        // the payload it summarizes.
        let suite = SuiteFailures(vec![failure(4, 1, "boom"), failure(4, 2, "boom again")]);
        let rendered = format!("{suite:?}");
        assert!(rendered.starts_with("1 job(s) failed:"));
        assert_eq!(rendered.matches("job 4 failed").count(), 1);
        assert!(rendered.contains("boom again"));
        assert_eq!(suite.0.len(), 2);
    }

    #[test]
    fn report_errors_only_serialize_when_present() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 1);
        assert_eq!(report.to_json().get("errors"), None);
        report.errors.push(JobFailure {
            index: 4,
            kind: FailureKind::Panic,
            message: "boom".into(),
            attempts: 2,
        });
        let errors = report.to_json();
        let errors = errors.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].get("message").unwrap().as_str(), Some("boom"));
        assert_eq!(errors[0].get("attempts").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn env_knob_parsers_handle_edge_cases() {
        assert_eq!(deadline_from_value(None), None);
        assert_eq!(
            deadline_from_value(Some("2.5")),
            Some(Duration::from_secs_f64(2.5))
        );
        assert_eq!(deadline_from_value(Some("0")), None);
        assert_eq!(deadline_from_value(Some("soon")), None);
        assert_eq!(retries_from_value(None), 0);
        assert_eq!(retries_from_value(Some(" 3 ")), 3);
        assert_eq!(retries_from_value(Some("many")), 0);
    }

    #[test]
    fn checkpoint_records_resume_and_ignore_torn_lines() {
        let dir = std::env::temp_dir().join(format!("arl-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.ckpt");

        let mut ckpt = Checkpoint::open(&path).unwrap();
        assert!(ckpt.is_empty());
        ckpt.record("go/0", &Json::obj([("cycles", Json::from(100u64))]))
            .unwrap();
        ckpt.record("gcc/1", &Json::obj([("cycles", Json::from(200u64))]))
            .unwrap();

        // Simulate a kill mid-append: a torn trailing line.
        {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(file, "perl/2\t{{\"cyc").unwrap();
        }

        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("go/0"), Some(r#"{"cycles":100}"#));
        assert_eq!(reopened.get("gcc/1"), Some(r#"{"cycles":200}"#));
        // The torn job reads as not-done, so a resume re-runs it.
        assert_eq!(reopened.get("perl/2"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_into_directory_uses_bench_name() {
        let dir = std::env::temp_dir().join(format!("arl-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = SuiteReport::new("figure8", Scale::default(), 1);
        let path = report.write_json(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_figure8.json");
        let back = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.get("experiment").unwrap().as_str(), Some("figure8"));
        assert_eq!(back.get("scale").unwrap().as_str(), Some("x1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
