//! Parallel experiment runner and structured run records.
//!
//! Every table/figure binary fans its (workload × config) cells out over a
//! [`Pool`] of scoped worker threads, then folds the results back **in
//! cell order**, so the rendered output is byte-identical to a serial run
//! (`ARL_THREADS=1`). On top of the raw results, each cell produces a
//! [`RunRecord`]; the per-experiment [`SuiteReport`] serializes them to
//! JSON (`arl-stats`' hand-rolled [`Json`]) and, when `ARL_JSON` is set,
//! writes a `BENCH_<experiment>.json` trajectory file.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use arl_stats::Json;
use arl_workloads::Scale;

/// Locks a mutex even when a previous holder panicked: a worker panic
/// must never cascade into `PoisonError` panics on the threads that are
/// still making progress. Every datum behind these locks is written in
/// one assignment, so a poisoned value is never half-updated.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload (the `&str`/`String` the job panicked
/// with, or a placeholder for exotic payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a supervised job failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The job panicked (caught; the suite kept running).
    Panic,
    /// The job finished after its deadline; the late result was discarded.
    /// Worker threads are scoped and cannot be killed mid-cell, so the
    /// watchdog is post-hoc: a stuck job still blocks its worker, but a
    /// merely-slow one is reported instead of silently accepted.
    Timeout,
}

impl FailureKind {
    /// Stable lowercase label (JSON, stderr summaries).
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }
}

/// One supervised job's terminal failure, after retries were exhausted.
#[derive(Clone, PartialEq, Debug)]
pub struct JobFailure {
    /// Cell index in the input order.
    pub index: usize,
    /// What went wrong on the last attempt.
    pub kind: FailureKind,
    /// The panic message or deadline description.
    pub message: String,
    /// Attempts made (1 = no retries).
    pub attempts: u32,
}

impl JobFailure {
    /// The `errors` array element for `BENCH_*.json` documents.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("index", Json::from(self.index)),
            ("kind", Json::from(self.kind.label())),
            ("message", Json::from(self.message.as_str())),
            ("attempts", Json::from(u64::from(self.attempts))),
        ])
    }

    /// One-line stderr summary.
    pub fn summary(&self) -> String {
        format!(
            "job {} failed ({}, {} attempt{}): {}",
            self.index,
            self.kind.label(),
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// Collapses repeated failure records for the same job id: retried and
/// re-collected jobs (a resumed sweep, a supervisor that logs every
/// attempt) would otherwise repeat one job's summary line per attempt.
/// Keeps the record with the most attempts — the most complete account of
/// the job's fate — and normalizes the order to job order, so reports
/// stay deterministic regardless of how the failures were gathered.
pub fn dedupe_failures(failures: &mut Vec<JobFailure>) {
    failures.sort_by(|a, b| a.index.cmp(&b.index).then(b.attempts.cmp(&a.attempts)));
    failures.dedup_by_key(|f| f.index);
}

/// The panic payload [`Pool::map`] raises after **every** job has run
/// when at least one of them panicked: the completed cells are not lost
/// to the first failure, and `run_main` turns this into per-job stderr
/// lines plus a non-zero exit instead of a raw panic trace.
pub struct SuiteFailures(pub Vec<JobFailure>);

impl std::fmt::Debug for SuiteFailures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut failures = self.0.clone();
        dedupe_failures(&mut failures);
        writeln!(f, "{} job(s) failed:", failures.len())?;
        for failure in &failures {
            writeln!(f, "  {}", failure.summary())?;
        }
        Ok(())
    }
}

/// A fixed-width pool of scoped worker threads.
///
/// Work items are claimed from a shared counter (dynamic load balancing —
/// timing cells vary ~10× in cost), but results land in a slot vector
/// indexed by cell, so the fold order never depends on scheduling. Cells
/// must be deterministic functions of their input and index; all of this
/// crate's cells are (the simulators take no seeds and share no state).
///
/// Jobs run supervised: a panicking cell is caught, the remaining cells
/// complete, and the failure surfaces either as a [`SuiteFailures`] panic
/// ([`Pool::map`]) or as per-job `Err` records ([`Pool::try_map`], which
/// additionally enforces the deadline and retry policy).
pub struct Pool {
    threads: usize,
    deadline: Option<Duration>,
    retries: u32,
}

impl Pool {
    /// A pool with an explicit worker count (`0` is clamped to 1), no
    /// deadline, and no retries.
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            deadline: None,
            retries: 0,
        }
    }

    /// Reads `ARL_THREADS` (defaults to all available cores),
    /// `ARL_DEADLINE` (per-job deadline in seconds; unset = none), and
    /// `ARL_RETRIES` (bounded retry count for supervised jobs; default 0).
    /// `ARL_THREADS=1` reproduces the serial harness exactly; invalid
    /// values fall back to the default (the output never depends on the
    /// worker count, so a fallback is always safe).
    pub fn from_env() -> Pool {
        let value = std::env::var("ARL_THREADS").ok();
        if let Some(v) = &value {
            if v.trim().parse::<usize>().is_err() {
                eprintln!("[arl-bench] ignoring invalid ARL_THREADS={v:?}; using all cores");
            }
        }
        Pool::new(threads_from_value(value.as_deref()))
            .with_deadline(deadline_from_value(
                std::env::var("ARL_DEADLINE").ok().as_deref(),
            ))
            .with_retries(retries_from_value(
                std::env::var("ARL_RETRIES").ok().as_deref(),
            ))
    }

    /// Sets the per-job deadline for [`Pool::try_map`] jobs.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Pool {
        self.deadline = deadline;
        self
    }

    /// Sets the bounded retry count for [`Pool::try_map`] jobs.
    pub fn with_retries(mut self, retries: u32) -> Pool {
        self.retries = retries;
        self
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning outputs in input
    /// order. `f` receives the cell index alongside the item so cells can
    /// derive per-cell seeds/labels deterministically.
    ///
    /// # Panics
    ///
    /// If any job panics, the panic is caught, **every other job still
    /// runs to completion**, and this panics afterwards with a
    /// [`SuiteFailures`] payload listing each failed cell (`run_main`
    /// catches it and exits non-zero with a per-job summary).
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> O + Sync,
    {
        let n = items.len();
        let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());
        let run = |i: usize, item: I| -> Option<O> {
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(out) => Some(out),
                Err(payload) => {
                    relock(&failures).push(JobFailure {
                        index: i,
                        kind: FailureKind::Panic,
                        message: panic_message(payload.as_ref()),
                        attempts: 1,
                    });
                    None
                }
            }
        };
        let slots: Vec<Option<O>> = if self.threads == 1 || n <= 1 {
            items
                .into_iter()
                .enumerate()
                .map(|(i, item)| run(i, item))
                .collect()
        } else {
            let jobs: Vec<Mutex<Option<I>>> =
                items.into_iter().map(|i| Mutex::new(Some(i))).collect();
            let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.threads.min(n) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // A missing item would mean the claim counter
                        // handed the same index out twice; skipping is
                        // strictly safer than panicking the worker.
                        let Some(item) = relock(&jobs[i]).take() else {
                            continue;
                        };
                        let out = run(i, item);
                        *relock(&slots[i]) = out;
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap_or_else(|e| e.into_inner()))
                .collect()
        };
        let mut failures = failures.into_inner().unwrap_or_else(|e| e.into_inner());
        if !failures.is_empty() {
            dedupe_failures(&mut failures);
            std::panic::panic_any(SuiteFailures(failures));
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("no failure recorded, so every slot was filled"))
            .collect()
    }

    /// Fully supervised [`Pool::map`]: every job runs under
    /// `catch_unwind`, against the pool's deadline, with up to
    /// `retries` bounded re-attempts (deterministic linear backoff), and
    /// a job that still fails yields an `Err(JobFailure)` **in its slot**
    /// instead of failing the suite — the caller decides how to report it.
    ///
    /// `f` borrows its item (retries re-run the same input). Outputs come
    /// back in input order, exactly one per item.
    pub fn try_map<I, O, F>(&self, items: &[I], f: F) -> Vec<Result<O, JobFailure>>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let supervise = |i: usize, item: &I| -> Result<O, JobFailure> {
            let mut last: Option<JobFailure> = None;
            for attempt in 1..=self.retries + 1 {
                if attempt > 1 {
                    std::thread::sleep(Duration::from_millis(10 * u64::from(attempt - 1)));
                }
                let start = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(out) => match self.deadline {
                        Some(deadline) if start.elapsed() > deadline => {
                            last = Some(JobFailure {
                                index: i,
                                kind: FailureKind::Timeout,
                                message: format!(
                                    "finished after the {:.3}s deadline; result discarded",
                                    deadline.as_secs_f64()
                                ),
                                attempts: attempt,
                            });
                        }
                        _ => return Ok(out),
                    },
                    Err(payload) => {
                        last = Some(JobFailure {
                            index: i,
                            kind: FailureKind::Panic,
                            message: panic_message(payload.as_ref()),
                            attempts: attempt,
                        });
                    }
                }
            }
            Err(last.unwrap_or_else(|| unreachable!("at least one attempt always runs")))
        };
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| supervise(i, item))
                .collect();
        }
        let slots: Vec<Mutex<Option<Result<O, JobFailure>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = supervise(i, &items[i]);
                    *relock(&slots[i]) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("supervise never unwinds, so every slot was filled")
            })
            .collect()
    }
}

/// Resolves a raw `ARL_DEADLINE` value: positive seconds (fractions
/// allowed) become a per-job deadline; unset, zero, or unparsable values
/// mean no deadline (with a warning for the unparsable case).
pub fn deadline_from_value(value: Option<&str>) -> Option<Duration> {
    let v = value?;
    match v.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
        Ok(_) => None,
        Err(_) => {
            eprintln!("[arl-bench] ignoring invalid ARL_DEADLINE={v:?}; no deadline");
            None
        }
    }
}

/// Resolves a raw `ARL_RETRIES` value: a non-negative integer count of
/// re-attempts; unset or unparsable values mean no retries (with a
/// warning for the unparsable case).
pub fn retries_from_value(value: Option<&str>) -> u32 {
    let Some(v) = value else {
        return 0;
    };
    match v.trim().parse::<u32>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("[arl-bench] ignoring invalid ARL_RETRIES={v:?}; no retries");
            0
        }
    }
}

/// Resolves a raw `ARL_THREADS` value to a worker count: a positive
/// integer is honoured (`0` clamps to 1), anything unparsable — or no
/// value at all — falls back to all available cores.
pub fn threads_from_value(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// One (workload × config) cell's structured result.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Workload short name (`"go"`, ...).
    pub workload: String,
    /// Configuration/scheme label (`"(3+3)"`, `"1BIT-HYBRID"`, `"profile"`).
    pub config: String,
    /// How the cell obtained its instruction stream: `"execute"` (live
    /// functional simulation), `"capture"` (live execution recording a
    /// trace), or `"replay"` (trace-driven, no functional execution).
    pub phase: String,
    /// Dynamic instructions the cell simulated.
    pub instructions: u64,
    /// Cycles, for timing cells.
    pub cycles: Option<u64>,
    /// Instructions per cycle, for timing cells.
    pub ipc: Option<f64>,
    /// Prediction accuracy (ARPT/evaluator or in-pipeline), when the cell
    /// predicts anything.
    pub accuracy: Option<f64>,
    /// Host wall-clock seconds the cell took.
    pub wall_seconds: f64,
    /// Peak-RSS proxy: bytes resident in the simulated memory image.
    pub peak_rss_bytes: u64,
}

impl RunRecord {
    /// A record with everything optional unset; cells fill in what they
    /// measured.
    pub fn new(workload: &str, config: &str) -> RunRecord {
        RunRecord {
            workload: workload.to_string(),
            config: config.to_string(),
            phase: "execute".to_string(),
            instructions: 0,
            cycles: None,
            ipc: None,
            accuracy: None,
            wall_seconds: 0.0,
            peak_rss_bytes: 0,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("phase", Json::from(self.phase.as_str())),
            ("instructions", Json::from(self.instructions)),
            ("cycles", Json::from(self.cycles)),
            ("ipc", Json::from(self.ipc)),
            ("accuracy", Json::from(self.accuracy)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
        ])
    }
}

/// Times one cell body and stamps the elapsed wall clock into the record
/// it returns.
pub fn timed_record<T>(
    workload: &str,
    config: &str,
    body: impl FnOnce(&mut RunRecord) -> T,
) -> (T, RunRecord) {
    let mut record = RunRecord::new(workload, config);
    let start = Instant::now();
    let value = body(&mut record);
    record.wall_seconds = start.elapsed().as_secs_f64();
    (value, record)
}

/// Everything one experiment run produced, ready for `BENCH_*.json`.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Experiment name (`"figure8"`, `"ablation_lvc"`, ...).
    pub experiment: String,
    /// Human-readable scale (`"tiny"`, `"x1"`, `"x4"`).
    pub scale: String,
    /// Worker threads used.
    pub threads: usize,
    /// Whole-experiment wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-cell records, in cell order.
    pub records: Vec<RunRecord>,
    /// Supervised jobs that failed (panic/timeout) after retries. Only
    /// serialized when non-empty, so fault-free runs stay byte-identical
    /// to the unsupervised harness.
    pub errors: Vec<JobFailure>,
}

/// `BENCH_*.json` schema identifier; bump when the shape changes.
/// v2 added per-record `phase` and the report-level capture/replay
/// wall-clock split for the execute-once/replay-many pipeline.
pub const JSON_SCHEMA: &str = "arl-bench/v2";

/// `BENCH_*_probe.json` schema identifier (the `ARL_PROBE=1` payload).
pub const PROBE_SCHEMA: &str = "arl-probe/v1";

/// Writes an `ARL_PROBE` document as `BENCH_<experiment>_probe.json`,
/// steered by the same `ARL_JSON` convention as [`SuiteReport`]: into the
/// directory when `ARL_JSON` names one, alongside the file when it names a
/// file, and into the working directory when `ARL_JSON` is unset.
pub fn write_probe_json(experiment: &str, doc: &Json) -> std::io::Result<PathBuf> {
    write_named_json(&format!("BENCH_{experiment}_probe.json"), doc)
}

/// Writes `doc` as `file_name`, resolved by the `ARL_JSON` convention
/// (into the directory it names, alongside the file it names, or into
/// the working directory when unset).
pub fn write_named_json(file_name: &str, doc: &Json) -> std::io::Result<PathBuf> {
    let file = match std::env::var_os("ARL_JSON") {
        Some(raw) => {
            let path = PathBuf::from(raw);
            if path.is_dir() {
                path.join(file_name)
            } else {
                match path.parent() {
                    Some(dir) if !dir.as_os_str().is_empty() => dir.join(file_name),
                    _ => PathBuf::from(file_name),
                }
            }
        }
        None => PathBuf::from(file_name),
    };
    arl_sink::durable_write(&file, (doc.render() + "\n").as_bytes())?;
    Ok(file)
}

impl SuiteReport {
    /// An empty report for `experiment` (records are appended by the
    /// experiment driver).
    pub fn new(experiment: &str, scale: Scale, threads: usize) -> SuiteReport {
        SuiteReport {
            experiment: experiment.to_string(),
            scale: scale_label(scale),
            threads,
            wall_seconds: 0.0,
            records: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Summed cell wall-clock spent functionally executing workloads
    /// (the `"execute"` and `"capture"` phases).
    pub fn capture_seconds(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase != "replay")
            .map(|r| r.wall_seconds)
            .sum()
    }

    /// Summed cell wall-clock spent replaying captured traces.
    pub fn replay_seconds(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase == "replay")
            .map(|r| r.wall_seconds)
            .sum()
    }

    /// The full `BENCH_*.json` document. The `errors` array (supervised
    /// job failures) only appears when at least one job failed, keeping
    /// clean-run documents byte-identical to the pre-supervision schema.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::from(JSON_SCHEMA)),
            ("experiment", Json::from(self.experiment.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("threads", Json::from(self.threads)),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("capture_seconds", Json::from(self.capture_seconds())),
            ("replay_seconds", Json::from(self.replay_seconds())),
            (
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ];
        if !self.errors.is_empty() {
            pairs.push((
                "errors",
                Json::Arr(self.errors.iter().map(JobFailure::to_json).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Writes the report to `path`. If `path` is a directory, writes
    /// `BENCH_<experiment>.json` inside it.
    pub fn write_json(&self, path: &Path) -> std::io::Result<PathBuf> {
        let file = if path.is_dir() {
            path.join(format!("BENCH_{}.json", self.experiment))
        } else {
            path.to_path_buf()
        };
        arl_sink::durable_write(&file, (self.to_json().render() + "\n").as_bytes())?;
        Ok(file)
    }

    /// Honours `ARL_JSON`: when set, writes the report there (file path,
    /// or directory to get the `BENCH_<experiment>.json` name) and returns
    /// the path written.
    pub fn emit_from_env(&self) -> std::io::Result<Option<PathBuf>> {
        match std::env::var_os("ARL_JSON") {
            Some(path) => self.write_json(Path::new(&path)).map(Some),
            None => Ok(None),
        }
    }
}

/// Ledger format tag; the first token of every v2 checkpoint header.
pub const CHECKPOINT_SCHEMA: &str = "arl-ckpt/v2";

/// Identity fingerprint of the sweep that owns a checkpoint ledger.
///
/// The fingerprint names everything that makes recorded payloads
/// meaningful for a resume: the experiment, its configuration (backend,
/// shard plan, fault plan, …), the workload set, and — where the sweep
/// replays a captured trace — that trace's checksum. Two sweeps with
/// different fingerprints must never merge through one ledger; payloads
/// recorded under one configuration are silently wrong under another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunIdentity {
    experiment: String,
    fields: Vec<(String, String)>,
}

impl RunIdentity {
    /// A fingerprint for `experiment` with no fields yet.
    pub fn new(experiment: &str) -> RunIdentity {
        RunIdentity {
            experiment: experiment.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds one `key = value` fingerprint field (builder style). Field
    /// order is part of the rendered identity, so callers must add
    /// fields in a fixed order.
    pub fn field(mut self, key: &str, value: impl std::fmt::Display) -> RunIdentity {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Compact JSON rendering; this exact string is what the ledger
    /// header carries and what identity comparison is defined over.
    pub fn render(&self) -> String {
        Json::obj([
            ("experiment", Json::from(self.experiment.as_str())),
            (
                "fields",
                Json::obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
                ),
            ),
        ])
        .render()
    }
}

fn checksum_hex(body: &str) -> String {
    format!("{:016x}", arl_trace::fnv1a64(body.as_bytes()))
}

/// Why a ledger file could not be parsed as a v2 ledger.
enum LedgerDamage {
    /// No newline at all: the process died while writing the header.
    /// There can be no entries, so the ledger restarts empty.
    TornHeader,
    /// The header line is present but unreadable (wrong magic, failed
    /// checksum, unparsable identity). Resuming would risk merging
    /// foreign data, so this is a hard error.
    Corrupt(String),
}

struct ParsedLedger {
    /// The header line exactly as stored (no trailing newline).
    header: String,
    /// The identity JSON carried by the header.
    identity: String,
    /// `(key, payload)` pairs in record order, duplicates included.
    entries: Vec<(String, String)>,
    /// Byte length of the valid prefix; anything beyond is torn/corrupt.
    good_bytes: u64,
    /// Whether a torn or corrupt tail was dropped.
    dropped_tail: bool,
}

fn parse_ledger(text: &str) -> Result<ParsedLedger, LedgerDamage> {
    let Some(header_end) = text.find('\n') else {
        return Err(LedgerDamage::TornHeader);
    };
    let header = &text[..header_end];
    let parts: Vec<&str> = header.split('\t').collect();
    let [magic, identity, chk] = parts.as_slice() else {
        return Err(LedgerDamage::Corrupt(format!(
            "header has {} tab-separated fields, expected 3",
            parts.len()
        )));
    };
    if *magic != CHECKPOINT_SCHEMA {
        return Err(LedgerDamage::Corrupt(format!(
            "header magic {magic:?} is not {CHECKPOINT_SCHEMA:?}"
        )));
    }
    if *chk != checksum_hex(&header[..header.len() - chk.len() - 1]) {
        return Err(LedgerDamage::Corrupt(
            "header checksum mismatch".to_string(),
        ));
    }
    match Json::parse(identity) {
        Ok(doc) if doc.get("experiment").and_then(Json::as_str).is_some() => {}
        _ => {
            return Err(LedgerDamage::Corrupt(
                "header identity is not a fingerprint object".to_string(),
            ));
        }
    }

    let mut entries: Vec<(String, String)> = Vec::new();
    let mut offset = header_end + 1;
    let mut dropped_tail = false;
    while offset < text.len() {
        let Some(line_end) = text[offset..].find('\n').map(|i| offset + i) else {
            // Torn final line: a kill mid-append. Its job re-runs.
            dropped_tail = true;
            break;
        };
        let line = &text[offset..line_end];
        let parsed = line.rsplit_once('\t').and_then(|(body, chk)| {
            if chk != checksum_hex(body) {
                return None;
            }
            let (seq, rest) = body.split_once('\t')?;
            let (key, payload) = rest.split_once('\t')?;
            (seq.parse::<u64>().ok()? == entries.len() as u64).then_some((key, payload))
        });
        match parsed {
            Some((key, payload)) => entries.push((key.to_string(), payload.to_string())),
            None => {
                // A failed checksum or broken sequence invalidates this
                // entry and everything after it: entries past a corrupt
                // point may depend on state the corruption destroyed
                // (e.g. shard resume chains), so the tail is dropped
                // wholesale rather than cherry-picked.
                dropped_tail = true;
                break;
            }
        }
        offset = line_end + 1;
    }
    Ok(ParsedLedger {
        header: header.to_string(),
        identity: identity.to_string(),
        entries,
        good_bytes: offset as u64,
        dropped_tail,
    })
}

/// A read-only parse of a checkpoint ledger (nothing is truncated or
/// written). Lets a supervisor count surviving entries in a ledger it
/// does not own — e.g. the chaos harness auditing a killed child.
pub struct LedgerView {
    /// Identity JSON from the header.
    pub identity: String,
    /// `(key, payload)` in record order, duplicates included.
    pub entries: Vec<(String, String)>,
    /// Whether a torn or corrupt tail follows the valid prefix.
    pub torn_tail: bool,
}

impl LedgerView {
    /// Distinct completed keys (what a resume would skip).
    pub fn live(&self) -> usize {
        let mut keys: Vec<&str> = self.entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }
}

/// Append-only per-job completion ledger backing `ARL_CHECKPOINT` resume.
///
/// # Format (v2)
///
/// ```text
/// arl-ckpt/v2\t<identity-json>\t<fnv1a64-hex>
/// <seq>\t<key>\t<compact-json>\t<fnv1a64-hex>
/// ```
///
/// The header fingerprints the run (see [`RunIdentity`]); `open` refuses
/// to resume under a different fingerprint unless forced, naming both
/// identities. Each entry carries a monotonic sequence number and an
/// FNV-1a64 checksum over `<seq>\t<key>\t<payload>`, so a torn append, a
/// flipped byte, or a truncated-but-still-valid-JSON payload all fail
/// verification; the valid prefix is kept and the damaged tail is
/// physically truncated on open — affected jobs re-run, nothing corrupt
/// is ever merged.
///
/// # Durability
///
/// The handle stays open for the ledger's lifetime and every append goes
/// through [`arl_sink::append_durable`] (`write` + `sync_data`), so a
/// SIGKILL loses at most the in-flight append — and a torn in-flight
/// append is exactly what the checksums catch on reopen. Payloads are
/// merged back **verbatim** on resume, so a resumed sweep's output is
/// byte-identical to an uninterrupted run provided payloads contain no
/// wall-clock fields.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: std::fs::File,
    header: String,
    done: HashMap<String, String>,
    /// First-recorded order of live keys (compaction preserves it).
    order: Vec<String>,
    next_seq: u64,
}

impl Checkpoint {
    fn header_line(identity: &RunIdentity) -> String {
        let body = format!("{CHECKPOINT_SCHEMA}\t{}", identity.render());
        let chk = checksum_hex(&body);
        format!("{body}\t{chk}")
    }

    fn open_handle(path: &Path) -> std::io::Result<std::fs::File> {
        std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
    }

    /// Opens (or starts) the ledger at `path` for the run identified by
    /// `identity`, loading every intact entry already recorded and
    /// truncating any torn or corrupt tail.
    ///
    /// # Errors
    ///
    /// I/O errors; an unreadable (non-v2 or checksum-failing) header; or
    /// a fingerprint mismatch when `force` is false — the error names
    /// both identities so the operator can see exactly what differed.
    pub fn open(path: &Path, identity: &RunIdentity, force: bool) -> std::io::Result<Checkpoint> {
        let mut file = Self::open_handle(path)?;
        // Read as bytes and decode lossily: a non-UTF-8 byte (disk
        // corruption) must cost the tail from its line onward, not make
        // the whole ledger unreadable. Replacement chars corrupt the
        // damaged line's checksum, so `parse_ledger` drops it; offsets
        // before the first invalid byte are unshifted, so `good_bytes`
        // stays a valid file offset for the truncation below.
        let raw = {
            use std::io::Read as _;
            let mut raw = Vec::new();
            file.read_to_end(&mut raw)?;
            raw
        };
        let text = String::from_utf8_lossy(&raw);
        let expected_header = Self::header_line(identity);
        let fresh = |file: &mut std::fs::File| -> std::io::Result<()> {
            file.set_len(0)?;
            arl_sink::append_durable(file, path, format!("{expected_header}\n").as_bytes())
        };
        if text.is_empty() {
            fresh(&mut file)?;
            return Ok(Checkpoint {
                path: path.to_path_buf(),
                file,
                header: expected_header,
                done: HashMap::new(),
                order: Vec::new(),
                next_seq: 0,
            });
        }
        let parsed = match parse_ledger(&text) {
            Ok(parsed) => parsed,
            Err(LedgerDamage::TornHeader) => {
                eprintln!(
                    "[arl-bench] checkpoint {}: torn header (crash during creation); \
                     restarting the ledger",
                    path.display()
                );
                fresh(&mut file)?;
                return Ok(Checkpoint {
                    path: path.to_path_buf(),
                    file,
                    header: expected_header,
                    done: HashMap::new(),
                    order: Vec::new(),
                    next_seq: 0,
                });
            }
            Err(LedgerDamage::Corrupt(why)) => {
                return Err(std::io::Error::other(format!(
                    "checkpoint {} is not a readable {CHECKPOINT_SCHEMA} ledger: {why}",
                    path.display()
                )));
            }
        };
        if parsed.identity != identity.render() {
            if !force {
                return Err(std::io::Error::other(format!(
                    "checkpoint {} was written by a different run; refusing to merge.\n  \
                     ledger identity:  {}\n  current identity: {}\n  \
                     set ARL_CHECKPOINT_FORCE=1 to resume it anyway",
                    path.display(),
                    parsed.identity,
                    identity.render()
                )));
            }
            eprintln!(
                "[arl-bench] ARL_CHECKPOINT_FORCE: resuming ledger {} (identity {}) under \
                 current identity {}",
                path.display(),
                parsed.identity,
                identity.render()
            );
        }
        if parsed.dropped_tail {
            eprintln!(
                "[arl-bench] checkpoint {}: dropping torn/corrupt tail after {} intact entries",
                path.display(),
                parsed.entries.len()
            );
            file.set_len(parsed.good_bytes)?;
            file.sync_data()?;
        }
        let next_seq = parsed.entries.len() as u64;
        let mut done = HashMap::new();
        let mut order = Vec::new();
        for (key, payload) in parsed.entries {
            if done.insert(key.clone(), payload).is_none() {
                order.push(key);
            }
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            file,
            header: parsed.header,
            done,
            order,
            next_seq,
        })
    }

    /// Honours `ARL_CHECKPOINT` (+ `ARL_CHECKPOINT_FORCE`): opens the
    /// ledger it names for `identity`, or `None` when unset.
    ///
    /// # Errors
    ///
    /// I/O and identity errors from [`Checkpoint::open`].
    pub fn from_env(identity: &RunIdentity) -> std::io::Result<Option<Checkpoint>> {
        match std::env::var_os("ARL_CHECKPOINT") {
            Some(path) => Checkpoint::open(Path::new(&path), identity, force_from_env()).map(Some),
            None => Ok(None),
        }
    }

    /// Parses an existing ledger without opening it for writing (nothing
    /// is truncated); `Err` for a missing file or unreadable header.
    pub fn inspect(path: &Path) -> std::io::Result<LedgerView> {
        // Lossy for the same reason as `open`: flipped bytes must read
        // as a damaged tail, not an unreadable ledger.
        let text = String::from_utf8_lossy(&std::fs::read(path)?).into_owned();
        match parse_ledger(&text) {
            Ok(parsed) => Ok(LedgerView {
                identity: parsed.identity,
                entries: parsed.entries,
                torn_tail: parsed.dropped_tail,
            }),
            Err(LedgerDamage::TornHeader) => Err(std::io::Error::other(format!(
                "checkpoint {} has a torn header",
                path.display()
            ))),
            Err(LedgerDamage::Corrupt(why)) => Err(std::io::Error::other(format!(
                "checkpoint {} is not a readable {CHECKPOINT_SCHEMA} ledger: {why}",
                path.display()
            ))),
        }
    }

    /// The payload recorded for `key`, if that job already completed.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.done.get(key).map(String::as_str)
    }

    /// Completed jobs on record.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Records `key` as complete with `payload`: one checksummed,
    /// sequence-numbered line durably appended through the open handle.
    ///
    /// # Errors
    ///
    /// I/O errors appending or syncing, or a key containing the line
    /// separators (`\t`/`\n`) the format reserves.
    pub fn record(&mut self, key: &str, payload: &Json) -> std::io::Result<()> {
        if key.contains('\t') || key.contains('\n') {
            return Err(std::io::Error::other(format!(
                "checkpoint key {key:?} contains a reserved separator"
            )));
        }
        let rendered = payload.render();
        let body = format!("{}\t{key}\t{rendered}", self.next_seq);
        let chk = checksum_hex(&body);
        arl_sink::append_durable(
            &mut self.file,
            &self.path,
            format!("{body}\t{chk}\n").as_bytes(),
        )?;
        self.next_seq += 1;
        if self.done.insert(key.to_string(), rendered).is_none() {
            self.order.push(key.to_string());
        }
        Ok(())
    }

    /// Rewrites the ledger to exactly one entry per live key (first-
    /// recorded order, latest payload, resequenced from 0), dropping
    /// superseded duplicates — e.g. intermediate shard-state blobs — that
    /// long campaign ledgers accumulate. The rewrite is an atomic
    /// publication ([`arl_sink::durable_write`]), so a crash mid-compact
    /// leaves the previous ledger intact.
    ///
    /// # Errors
    ///
    /// I/O errors from the rewrite or from reopening the handle.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let mut text = format!("{}\n", self.header);
        for (seq, key) in self.order.iter().enumerate() {
            let Some(payload) = self.done.get(key) else {
                continue;
            };
            let body = format!("{seq}\t{key}\t{payload}");
            let chk = checksum_hex(&body);
            text.push_str(&format!("{body}\t{chk}\n"));
        }
        arl_sink::durable_write(&self.path, text.as_bytes())?;
        // The old handle points at the replaced inode; reopen.
        self.file = Self::open_handle(&self.path)?;
        self.next_seq = self.order.len() as u64;
        Ok(())
    }
}

/// Reads `ARL_CHECKPOINT_FORCE` (any value but `0`/empty arms it).
pub fn force_from_env() -> bool {
    std::env::var("ARL_CHECKPOINT_FORCE")
        .map(|v| !v.trim().is_empty() && v.trim() != "0")
        .unwrap_or(false)
}

pub(crate) fn scale_label(scale: Scale) -> String {
    if scale.is_tiny() {
        "tiny".to_string()
    } else {
        format!("x{}", scale.factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn map_preserves_order_and_covers_every_item() {
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let out = pool.map((0..100).collect(), |i, x: i32| {
                assert_eq!(i as i32, x);
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let pool = Pool::new(4);
        assert_eq!(pool.map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(pool.map(vec![9], |_, x: u8| x + 1), vec![10]);
    }

    #[test]
    fn pool_clamps_zero_threads() {
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn threads_from_value_handles_edge_cases() {
        let default = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Explicit counts are honoured; zero clamps to serial.
        assert_eq!(threads_from_value(Some("1")), 1);
        assert_eq!(threads_from_value(Some(" 3 ")), 3);
        assert_eq!(threads_from_value(Some("0")), 1);
        // Oversubscription is allowed — Pool::map caps workers at the
        // cell count, so a huge value is harmless.
        assert_eq!(threads_from_value(Some("4096")), 4096);
        // Unset or invalid values fall back to all cores.
        assert_eq!(threads_from_value(None), default);
        for bad in ["", "lots", "-2", "1.5", "0x8"] {
            assert_eq!(threads_from_value(Some(bad)), default, "value {bad:?}");
        }
    }

    #[test]
    fn oversubscribed_pool_output_matches_serial() {
        // Far more workers than items: identical results, every item
        // processed exactly once.
        let serial = Pool::new(1).map((0..5).collect(), |_, x: i32| x * 10);
        let oversub = Pool::new(64).map((0..5).collect(), |_, x: i32| x * 10);
        assert_eq!(serial, oversub);
    }

    #[test]
    fn report_json_has_the_documented_schema() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 2);
        let ((), record) = timed_record("go", "(2+0)", |r| {
            r.instructions = 1000;
            r.cycles = Some(500);
            r.ipc = Some(2.0);
            r.peak_rss_bytes = 4096;
        });
        report.records.push(record);
        let json = report.to_json();
        assert_eq!(json.get("schema").unwrap().as_str(), Some(JSON_SCHEMA));
        assert_eq!(json.get("scale").unwrap().as_str(), Some("tiny"));
        let records = json.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("phase").unwrap().as_str(), Some("execute"));
        assert_eq!(records[0].get("cycles").unwrap().as_u64(), Some(500));
        assert_eq!(records[0].get("accuracy"), Some(&Json::Null));
        assert!(records[0].get("wall_seconds").unwrap().as_f64().unwrap() >= 0.0);
        assert!(json.get("capture_seconds").unwrap().as_f64().is_some());
        assert!(json.get("replay_seconds").unwrap().as_f64().is_some());
        // The document round-trips through the parser.
        let text = json.render();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn phase_split_sums_capture_and_replay_wall_clock() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 1);
        for (phase, wall) in [("capture", 2.0), ("replay", 0.25), ("replay", 0.5)] {
            let mut r = RunRecord::new("go", "(2+0)");
            r.phase = phase.to_string();
            r.wall_seconds = wall;
            report.records.push(r);
        }
        assert!((report.capture_seconds() - 2.0).abs() < 1e-12);
        assert!((report.replay_seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn panicking_job_fails_the_map_but_every_other_job_completes() {
        for threads in [1, 4] {
            let completed = AtomicUsize::new(0);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                Pool::new(threads).map((0..8).collect(), |_, x: i32| {
                    if x == 3 {
                        panic!("job {x} exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    x
                })
            }));
            let payload = result.expect_err("a panicking job must fail the map");
            let failures = payload
                .downcast::<SuiteFailures>()
                .expect("map panics with SuiteFailures");
            assert_eq!(failures.0.len(), 1);
            assert_eq!(failures.0[0].index, 3);
            assert_eq!(failures.0[0].kind, FailureKind::Panic);
            assert!(failures.0[0].message.contains("job 3 exploded"));
            // The failure did not take the suite down with it.
            assert_eq!(completed.load(Ordering::Relaxed), 7, "threads={threads}");
            assert!(format!("{:?}", failures).contains("job 3 failed"));
        }
    }

    #[test]
    fn try_map_turns_panics_into_error_records() {
        for threads in [1, 4] {
            let out = Pool::new(threads).try_map(&(0..6).collect::<Vec<i32>>(), |i, x| {
                if *x == 2 {
                    panic!("bad cell");
                }
                i as i32 + *x
            });
            assert_eq!(out.len(), 6);
            for (i, slot) in out.iter().enumerate() {
                if i == 2 {
                    let failure = slot.as_ref().expect_err("cell 2 panicked");
                    assert_eq!(failure.kind, FailureKind::Panic);
                    assert_eq!(failure.attempts, 1);
                    assert!(failure.message.contains("bad cell"));
                } else {
                    assert_eq!(*slot.as_ref().expect("cell succeeded"), 2 * i as i32);
                }
            }
        }
    }

    #[test]
    fn try_map_retries_until_a_job_succeeds() {
        let attempts = AtomicUsize::new(0);
        let out = Pool::new(1).with_retries(3).try_map(&[()], |_, ()| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            7u32
        });
        assert_eq!(out[0].as_ref().copied(), Ok(7));
        assert_eq!(attempts.load(Ordering::Relaxed), 3);

        // Retries exhausted: the last failure is reported with its
        // attempt count.
        let out = Pool::new(1).with_retries(2).try_map(&[()], |_, ()| -> u32 {
            panic!("always");
        });
        let failure = out[0].as_ref().expect_err("job never succeeds");
        assert_eq!(failure.attempts, 3);
        assert_eq!(failure.kind, FailureKind::Panic);
    }

    #[test]
    fn try_map_reports_deadline_overruns_as_timeouts() {
        let out = Pool::new(2)
            .with_deadline(Some(Duration::from_millis(1)))
            .try_map(&[false, true], |i, slow| {
                if *slow {
                    std::thread::sleep(Duration::from_millis(30));
                }
                i
            });
        assert_eq!(out[0].as_ref().copied(), Ok(0));
        let failure = out[1].as_ref().expect_err("slow job misses the deadline");
        assert_eq!(failure.kind, FailureKind::Timeout);
        assert!(failure.message.contains("deadline"));
        let json = failure.to_json();
        assert_eq!(json.get("kind").unwrap().as_str(), Some("timeout"));
        assert_eq!(json.get("index").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn dedupe_failures_keeps_one_record_per_job() {
        let failure = |index, attempts, message: &str| JobFailure {
            index,
            kind: FailureKind::Panic,
            message: message.into(),
            attempts,
        };
        // Job 2 recorded once per attempt, out of order; job 0 once.
        let mut failures = vec![
            failure(2, 1, "first attempt"),
            failure(0, 1, "lone"),
            failure(2, 3, "final attempt"),
            failure(2, 2, "second attempt"),
        ];
        dedupe_failures(&mut failures);
        assert_eq!(failures.len(), 2);
        assert_eq!((failures[0].index, failures[0].attempts), (0, 1));
        // The surviving record is the most-attempted one, job order.
        assert_eq!((failures[1].index, failures[1].attempts), (2, 3));
        assert_eq!(failures[1].message, "final attempt");

        // The stderr rendering collapses the same way without mutating
        // the payload it summarizes.
        let suite = SuiteFailures(vec![failure(4, 1, "boom"), failure(4, 2, "boom again")]);
        let rendered = format!("{suite:?}");
        assert!(rendered.starts_with("1 job(s) failed:"));
        assert_eq!(rendered.matches("job 4 failed").count(), 1);
        assert!(rendered.contains("boom again"));
        assert_eq!(suite.0.len(), 2);
    }

    #[test]
    fn report_errors_only_serialize_when_present() {
        let mut report = SuiteReport::new("unit", Scale::tiny(), 1);
        assert_eq!(report.to_json().get("errors"), None);
        report.errors.push(JobFailure {
            index: 4,
            kind: FailureKind::Panic,
            message: "boom".into(),
            attempts: 2,
        });
        let errors = report.to_json();
        let errors = errors.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].get("message").unwrap().as_str(), Some("boom"));
        assert_eq!(errors[0].get("attempts").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn env_knob_parsers_handle_edge_cases() {
        assert_eq!(deadline_from_value(None), None);
        assert_eq!(
            deadline_from_value(Some("2.5")),
            Some(Duration::from_secs_f64(2.5))
        );
        assert_eq!(deadline_from_value(Some("0")), None);
        assert_eq!(deadline_from_value(Some("soon")), None);
        assert_eq!(retries_from_value(None), 0);
        assert_eq!(retries_from_value(Some(" 3 ")), 3);
        assert_eq!(retries_from_value(Some("many")), 0);
    }

    fn ckpt_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arl-ckpt-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn unit_identity() -> RunIdentity {
        RunIdentity::new("unit")
            .field("backend", "baseline")
            .field("workloads", "go,gcc,perl")
    }

    #[test]
    fn checkpoint_records_resume_and_truncate_torn_tails() {
        let dir = ckpt_dir("torn");
        let path = dir.join("jobs.ckpt");
        let identity = unit_identity();

        let mut ckpt = Checkpoint::open(&path, &identity, false).unwrap();
        assert!(ckpt.is_empty());
        ckpt.record("go/0", &Json::obj([("cycles", Json::from(100u64))]))
            .unwrap();
        ckpt.record("gcc/1", &Json::obj([("cycles", Json::from(200u64))]))
            .unwrap();
        drop(ckpt);

        // Simulate a kill mid-append: a torn trailing line.
        let intact = std::fs::read(&path).unwrap();
        {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(file, "2\tperl/2\t{{\"cyc").unwrap();
        }

        let reopened = Checkpoint::open(&path, &identity, false).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("go/0"), Some(r#"{"cycles":100}"#));
        assert_eq!(reopened.get("gcc/1"), Some(r#"{"cycles":200}"#));
        // The torn job reads as not-done, so a resume re-runs it …
        assert_eq!(reopened.get("perl/2"), None);
        drop(reopened);
        // … and the torn bytes were physically truncated away.
        assert_eq!(std::fs::read(&path).unwrap(), intact);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_refuses_a_mismatched_identity_naming_both() {
        let dir = ckpt_dir("identity");
        let path = dir.join("jobs.ckpt");
        let theirs = unit_identity();
        Checkpoint::open(&path, &theirs, false)
            .unwrap()
            .record("go/0", &Json::from(1u64))
            .unwrap();

        let ours = RunIdentity::new("unit")
            .field("backend", "burst")
            .field("workloads", "go,gcc,perl");
        let err = Checkpoint::open(&path, &ours, false).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(&theirs.render()),
            "names ledger identity: {msg}"
        );
        assert!(
            msg.contains(&ours.render()),
            "names current identity: {msg}"
        );
        assert!(
            msg.contains("ARL_CHECKPOINT_FORCE"),
            "names override: {msg}"
        );

        // The override resumes anyway, keeping the recorded entries.
        let forced = Checkpoint::open(&path, &ours, true).unwrap();
        assert_eq!(forced.get("go/0"), Some("1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_restarts_over_a_torn_header_and_rejects_foreign_files() {
        let dir = ckpt_dir("header");
        let identity = unit_identity();

        // A crash during creation leaves a header with no newline: the
        // ledger restarts empty (nothing could have been recorded).
        let torn = dir.join("torn.ckpt");
        std::fs::write(&torn, CHECKPOINT_SCHEMA.as_bytes()).unwrap();
        let ckpt = Checkpoint::open(&torn, &identity, false).unwrap();
        assert!(ckpt.is_empty());
        drop(ckpt);

        // A file that is not a v2 ledger at all is a hard error, not a
        // silent fresh start — it might be someone else's data.
        let foreign = dir.join("foreign.ckpt");
        std::fs::write(&foreign, b"go/0\t{\"cycles\":100}\n").unwrap();
        let err = Checkpoint::open(&foreign, &identity, false).unwrap_err();
        assert!(err.to_string().contains(CHECKPOINT_SCHEMA), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compaction_keeps_latest_payloads_and_stays_resumable() {
        let dir = ckpt_dir("compact");
        let path = dir.join("jobs.ckpt");
        let identity = unit_identity();

        let mut ckpt = Checkpoint::open(&path, &identity, false).unwrap();
        for round in 0..5u64 {
            ckpt.record("state", &Json::from(round)).unwrap();
        }
        ckpt.record("go/0", &Json::from(7u64)).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        ckpt.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(
            after < before,
            "compaction shrinks the ledger: {after} >= {before}"
        );
        assert_eq!(ckpt.len(), 2);
        assert_eq!(ckpt.get("state"), Some("4"), "latest payload survives");
        // Appends keep working on the compacted ledger …
        ckpt.record("gcc/1", &Json::from(9u64)).unwrap();
        drop(ckpt);
        // … and a reopen sees the full live set.
        let reopened = Checkpoint::open(&path, &identity, false).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.get("state"), Some("4"));
        assert_eq!(reopened.get("gcc/1"), Some("9"));
        let view = Checkpoint::inspect(&path).unwrap();
        assert_eq!(view.live(), 3);
        assert!(!view.torn_tail);
        assert_eq!(view.identity, identity.render());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_numeric_payload_is_rejected_not_merged() {
        // Regression for the v1 design flaw: a payload cut short can
        // still be valid JSON (`456` → `45`), so JSON-parsability alone
        // must never gate a merge. The v2 checksum catches it.
        let dir = ckpt_dir("cutshort");
        let path = dir.join("jobs.ckpt");
        let identity = unit_identity();
        let mut ckpt = Checkpoint::open(&path, &identity, false).unwrap();
        ckpt.record("go/0", &Json::from(456u64)).unwrap();
        drop(ckpt);
        let bytes = std::fs::read(&path).unwrap();
        // Cut the final entry short so its payload reads `45…` — drop
        // enough of the tail that the checksum (and newline) are gone.
        std::fs::write(&path, &bytes[..bytes.len() - 21]).unwrap();
        let reopened = Checkpoint::open(&path, &identity, false).unwrap();
        assert_eq!(reopened.get("go/0"), None, "cut-short payload re-runs");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_into_directory_uses_bench_name() {
        let dir = std::env::temp_dir().join(format!("arl-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = SuiteReport::new("figure8", Scale::default(), 1);
        let path = report.write_json(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_figure8.json");
        let back = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.get("experiment").unwrap().as_str(), Some("figure8"));
        assert_eq!(back.get("scale").unwrap().as_str(), Some("x1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
