//! Regenerates **Figure 5**: 1BIT-HYBRID accuracy as the ARPT shrinks
//! (unlimited, 64K, 32K, 16K, 8K entries), without and with compiler
//! hints.
//!
//! Paper reference: accuracy degrades with table size for the
//! large-footprint programs (go, gcc, vortex, tomcatv); a 32K-entry table
//! already exceeds 99.9%; compiler hints recover the losses and make the
//! ARPT size-insensitive.

use arl_bench::{evaluate_program, fmt_pct, profile_workload, scale_from_env};
use arl_core::{Capacity, Context, EvalConfig, HintTable, PredictorKind};
use arl_stats::TableBuilder;
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let capacities: [(&str, Capacity); 5] = [
        ("inf", Capacity::Unlimited),
        ("64K", Capacity::Entries(1 << 16)),
        ("32K", Capacity::Entries(1 << 15)),
        ("16K", Capacity::Entries(1 << 14)),
        ("8K", Capacity::Entries(1 << 13)),
    ];
    let mut header: Vec<String> = vec!["Benchmark".into()];
    for (name, _) in &capacities {
        header.push(name.to_string());
        header.push(format!("{name}+hints"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);

    for spec in suite() {
        // The hint source is the paper's profile-derived upper bound.
        let report = profile_workload(spec, scale);
        let hints = HintTable::from_profile(&report.profiler);
        let mut row = vec![spec.spec_name.to_string()];
        for (_, capacity) in &capacities {
            for with_hints in [false, true] {
                let eval = evaluate_program(
                    &report.program,
                    spec.name,
                    EvalConfig {
                        kind: PredictorKind::OneBit,
                        context: Context::HYBRID_8_24,
                        capacity: *capacity,
                        hints: with_hints.then(|| hints.clone()),
                    },
                );
                row.push(fmt_pct(eval.stats.accuracy(), 2));
            }
        }
        table.row(&row);
    }
    println!("Figure 5: 1BIT-HYBRID accuracy vs ARPT size, without/with compiler hints");
    println!("{}", table.render());
}
