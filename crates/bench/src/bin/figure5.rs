//! Regenerates **Figure 5**: 1BIT-HYBRID accuracy as the ARPT shrinks
//! (unlimited, 64K, 32K, 16K, 8K entries), without and with compiler
//! hints.
//!
//! Paper reference: accuracy degrades with table size for the
//! large-footprint programs (go, gcc, vortex, tomcatv); a 32K-entry table
//! already exceeds 99.9%; compiler hints recover the losses and make the
//! ARPT size-insensitive.

fn main() {
    arl_bench::run_main(arl_bench::figure5);
}
