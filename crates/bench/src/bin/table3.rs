//! Regenerates **Table 3**: number of entries occupied in an unlimited
//! ARPT under each context scheme, with the percentage increase over
//! pc-only indexing.
//!
//! Paper reference: context bits multiply the entry count (GBH +4–26%,
//! CID −15–83%, hybrid +38–336%), with the large-code benchmarks
//! (go, gcc, vortex) occupying the most entries.

fn main() {
    arl_bench::run_main(arl_bench::table3);
}
