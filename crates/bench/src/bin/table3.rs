//! Regenerates **Table 3**: number of entries occupied in an unlimited
//! ARPT under each context scheme, with the percentage increase over
//! pc-only indexing.
//!
//! Paper reference: context bits multiply the entry count (GBH +4–26%,
//! CID −15–83%, hybrid +38–336%), with the large-code benchmarks
//! (go, gcc, vortex) occupying the most entries.

use arl_bench::{evaluate_program, scale_from_env};
use arl_core::{Capacity, Context, EvalConfig, PredictorKind};
use arl_stats::TableBuilder;
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let contexts: [(&str, Context); 4] = [
        ("pc-only", Context::None),
        ("w/ GBH", Context::Gbh { bits: 8 }),
        ("w/ CID", Context::Cid { bits: 24 }),
        ("w/ Hybrid", Context::HYBRID_8_24),
    ];
    let mut table = TableBuilder::new(&["Bench.", "pc-only", "w/ GBH", "w/ CID", "w/ Hybrid"]);
    for spec in suite() {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        let mut base = 0usize;
        for (i, (_, context)) in contexts.iter().enumerate() {
            let report = evaluate_program(
                &program,
                spec.name,
                EvalConfig {
                    kind: PredictorKind::OneBit,
                    context: *context,
                    capacity: Capacity::Unlimited,
                    hints: None,
                },
            );
            let occupied = report.arpt_occupied.unwrap_or(0);
            if i == 0 {
                base = occupied;
                row.push(occupied.to_string());
            } else {
                let pct = if base > 0 {
                    100.0 * (occupied as f64 - base as f64) / base as f64
                } else {
                    0.0
                };
                row.push(format!("{occupied} ({pct:+.0}%)"));
            }
        }
        table.row(&row);
    }
    println!("Table 3: entries occupied in an unlimited ARPT (dynamic instructions only)");
    println!("{}", table.render());
}
