//! Ablation (paper Section 4.3): region-misprediction recovery policy —
//! branch-style squash vs the paper's assumed selective re-issue — across
//! penalties. With >99.9% prediction accuracy the policy barely matters,
//! which is the paper's implicit argument for tolerating the simpler
//! hardware.

fn main() {
    arl_bench::run_main(arl_bench::ablation_recovery);
}
