//! Ablation (paper Section 4.3): region-misprediction recovery policy —
//! branch-style squash vs the paper's assumed selective re-issue — across
//! penalties. With >99.9% prediction accuracy the policy barely matters,
//! which is the paper's implicit argument for tolerating the simpler
//! hardware.

use arl_bench::scale_from_env;
use arl_stats::TableBuilder;
use arl_timing::{MachineConfig, RecoveryMode, TimingSim};
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let variants: Vec<(String, RecoveryMode, u64)> = vec![
        ("selective,p1".into(), RecoveryMode::SelectiveReissue, 1),
        ("selective,p5".into(), RecoveryMode::SelectiveReissue, 5),
        ("squash,p1".into(), RecoveryMode::Squash, 1),
        ("squash,p5".into(), RecoveryMode::Squash, 5),
    ];
    let mut header = vec!["Benchmark".to_string(), "mispred/1K refs".into()];
    header.extend(variants.iter().map(|(n, _, _)| n.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);

    for spec in suite() {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        let mut base = 0u64;
        for (i, (name, recovery, penalty)) in variants.iter().enumerate() {
            let mut config = MachineConfig::decoupled(3, 3);
            config.recovery = *recovery;
            config.region_mispredict_penalty = *penalty;
            config.name = name.clone();
            let stats = TimingSim::run_program(&program, &config);
            if i == 0 {
                base = stats.cycles;
                let mispredict_rate =
                    1000.0 * stats.region_mispredicts as f64 / stats.mem_refs.max(1) as f64;
                row.push(format!("{mispredict_rate:.2}"));
            }
            row.push(format!("{:.4}", base as f64 / stats.cycles as f64));
        }
        table.row(&row);
    }
    println!("Ablation: recovery policy × penalty, slowdown relative to selective/p1");
    println!("{}", table.render());
}
