//! Diagnostic: full SimStats dump for one workload × a few configs.

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".into());
    arl_bench::run_main(|opts| arl_bench::probe(opts, &name));
}
