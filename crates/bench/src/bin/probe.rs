//! Diagnostic: full SimStats dump for one workload × a few configs.

use arl_bench::scale_from_env;
use arl_timing::{MachineConfig, TimingSim};
use arl_workloads::workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".into());
    let spec = workload(&name).expect("workload");
    let program = spec.build(scale_from_env());
    for config in [
        MachineConfig::baseline_2_0(),
        MachineConfig::conventional(16, 2),
        MachineConfig::decoupled(3, 3),
    ] {
        let s = TimingSim::run_program(&program, &config);
        println!(
            "{:8} cycles={} ipc={:.2} mem={} lvaq={} fwd(lsq/lvaq)={}/{} rob_stall={} q_stall={} vp={}@{:.2} l1={:.3} l2m={}",
            s.config_name,
            s.cycles,
            s.ipc(),
            s.mem_refs,
            s.lvaq_refs,
            s.lsq_forwards,
            s.lvaq_forwards,
            s.rob_stall_cycles,
            s.queue_stall_cycles,
            s.value_predictions,
            s.value_pred_accuracy(),
            s.dcache.hit_rate(),
            s.l2.misses,
        );
    }
}
