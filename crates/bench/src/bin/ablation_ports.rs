//! Ablation: how should the data cache's bandwidth be *implemented*?
//!
//! The paper assumes perfect multi-porting and explicitly defers the cost
//! question ("the studied models in this paper assume perfect
//! multi-porting"); its related work proposes the cheaper structures
//! compared here — Sohi & Franklin's interleaved banks and Wilson et
//! al.'s line buffer. This ablation quantifies how much of the ideal
//! 4-port performance each alternative retains, and how a (3+3)
//! data-decoupled design with *banked* caches fares.

use arl_bench::scale_from_env;
use arl_stats::TableBuilder;
use arl_timing::{MachineConfig, TimingSim};
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let mut configs: Vec<MachineConfig> = Vec::new();
    configs.push(MachineConfig::conventional(1, 2));
    let mut lb = MachineConfig::conventional(1, 2);
    lb.dcache = lb.dcache.with_line_buffer();
    lb.name = "(1+lbuf)".into();
    configs.push(lb);
    let mut banked = MachineConfig::conventional(4, 2);
    banked.dcache = banked.dcache.with_banks(4);
    banked.name = "(4-bank)".into();
    configs.push(banked);
    configs.push(MachineConfig::conventional(4, 2));
    let mut split_banked = MachineConfig::decoupled(3, 3);
    split_banked.dcache = split_banked.dcache.with_banks(4);
    split_banked.name = "(3b+3)".into();
    configs.push(split_banked);
    configs.push(MachineConfig::decoupled(3, 3));

    let mut header = vec!["Benchmark".to_string()];
    header.extend(configs.iter().map(|c| c.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);

    let mut sums = vec![0.0; configs.len()];
    let suite = suite();
    for spec in &suite {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        let mut base = 0u64;
        for (i, config) in configs.iter().enumerate() {
            let stats = TimingSim::run_program(&program, config);
            if i == 0 {
                base = stats.cycles;
            }
            let speedup = base as f64 / stats.cycles as f64;
            sums[i] += speedup;
            row.push(format!("{speedup:.3}"));
        }
        table.row(&row);
    }
    let mut avg = vec!["Average".to_string()];
    for s in &sums {
        avg.push(format!("{:.3}", s / suite.len() as f64));
    }
    table.row(&avg);
    println!("Ablation: bandwidth implementations, speedup over a 1-ported cache");
    println!("{}", table.render());
    println!(
        "Reading: a 4-banked array recovers most of ideal 4-porting; a line\n\
         buffer gives a single-ported array a second effective port; banked\n\
         data caches compose with data decoupling."
    );
}
