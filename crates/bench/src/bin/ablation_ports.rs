//! Ablation: how should the data cache's bandwidth be *implemented*?
//!
//! The paper assumes perfect multi-porting and explicitly defers the cost
//! question ("the studied models in this paper assume perfect
//! multi-porting"); its related work proposes the cheaper structures
//! compared here — Sohi & Franklin's interleaved banks and Wilson et
//! al.'s line buffer. This ablation quantifies how much of the ideal
//! 4-port performance each alternative retains, and how a (3+3)
//! data-decoupled design with *banked* caches fares.

fn main() {
    arl_bench::run_main(arl_bench::ablation_ports);
}
