//! Memory-backend sweep: every composable backend against the split-port
//! question, with per-cell stall attribution (`BENCH_backends.json`).

fn main() {
    arl_bench::run_backends_main();
}
