//! Seeded fault-injection campaign: corrupts traces, flips ARPT state,
//! and degrades memory ports per `ARL_FAULT`, classifying every outcome
//! as masked/detected/recovered/fatal/silent. Exits non-zero on any
//! fatal or silent fault (silent corruptions are the failure the
//! campaign exists to rule out) or any failed job.

fn main() {
    arl_bench::run_faults_main();
}
