//! Regenerates **Table 1**: per-benchmark dynamic instruction count and
//! load/store percentages.
//!
//! Paper reference (SPEC95 on PISA): counts of 220M–684M with loads 14–32%
//! and stores 6–22% of all instructions. Our synthetic analogs run at a
//! reduced default scale (≈0.5–2M instructions); the load/store *mix* is
//! the comparable quantity.

use arl_bench::{fmt_millions, profile_suite, scale_from_env};
use arl_stats::TableBuilder;

fn main() {
    let scale = scale_from_env();
    let mut table = TableBuilder::new(&["Benchmark", "Inst. count", "Loads %", "Stores %", "Refs"]);
    for report in profile_suite(scale) {
        let c = &report.character;
        table.row(&[
            report.spec.spec_name.to_string(),
            fmt_millions(c.instructions),
            format!("{:.0}", c.load_pct()),
            format!("{:.0}", c.store_pct()),
            fmt_millions(c.references()),
        ]);
    }
    println!("Table 1: workload characterization (synthetic SPEC95 analogs)");
    println!("{}", table.render());
}
