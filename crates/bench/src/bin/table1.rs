//! Regenerates **Table 1**: per-benchmark dynamic instruction count and
//! load/store percentages.
//!
//! Paper reference (SPEC95 on PISA): counts of 220M–684M with loads 14–32%
//! and stores 6–22% of all instructions. Our synthetic analogs run at a
//! reduced default scale (≈0.5–2M instructions); the load/store *mix* is
//! the comparable quantity.

fn main() {
    arl_bench::run_main(arl_bench::table1);
}
