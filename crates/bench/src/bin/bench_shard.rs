//! Snapshot-sharded replay benchmark: serial vs chained-shard wall clock
//! plus the kill-resume recovery measurement (`BENCH_shard.json`).

fn main() {
    arl_bench::run_shard_main();
}
