//! Regenerates **Figure 2**: breakdown of static memory instructions by
//! the set of regions they access at run time ("D", "H", "S", "D/H",
//! "D/S", "H/S", "D/H/S"), plus the dynamic share of multi-region
//! instructions.
//!
//! Paper reference: most static memory instructions are single-region
//! (only 1.8% / 1.9% multi-region for integer / FP); the stack-only class
//! exceeds 50% of static instructions on average; multi-region
//! instructions account for 0–9.6% of dynamic references.

use arl_bench::{fmt_pct, profile_suite, scale_from_env};
use arl_mem::RegionSet;
use arl_stats::TableBuilder;

fn main() {
    let scale = scale_from_env();
    let mut header: Vec<String> = vec!["Benchmark".into(), "Static".into()];
    header.extend(RegionSet::CLASS_LABELS.iter().map(|l| format!("{l} %")));
    header.push("Multi(dyn) %".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);

    let reports = profile_suite(scale);
    let mut sum_multi_static = [0.0f64; 2];
    let mut counts = [0u32; 2];
    for report in &reports {
        let b = &report.breakdown;
        let total = b.static_total();
        let mut row = vec![report.spec.spec_name.to_string(), total.to_string()];
        for (i, _) in RegionSet::CLASS_LABELS.iter().enumerate() {
            row.push(format!(
                "{:.1}",
                100.0 * b.static_counts[i] as f64 / total.max(1) as f64
            ));
        }
        row.push(fmt_pct(b.dynamic_multi_region_fraction(), 2));
        table.row(&row);
        let idx = report.spec.is_fp as usize;
        sum_multi_static[idx] += b.static_multi_region_fraction();
        counts[idx] += 1;
    }
    println!("Figure 2: static memory instructions by accessed-region class");
    println!("{}", table.render());
    println!(
        "Average static multi-region fraction: integer {} | floating-point {}",
        fmt_pct(sum_multi_static[0] / counts[0].max(1) as f64, 2),
        fmt_pct(sum_multi_static[1] / counts[1].max(1) as f64, 2),
    );
    let avg_stack: f64 = reports
        .iter()
        .map(|r| r.breakdown.static_fraction("S"))
        .sum::<f64>()
        / reports.len() as f64;
    println!(
        "Average stack-only share of static instructions: {}",
        fmt_pct(avg_stack, 1)
    );
}
