//! Regenerates **Figure 2**: breakdown of static memory instructions by
//! the set of regions they access at run time ("D", "H", "S", "D/H",
//! "D/S", "H/S", "D/H/S"), plus the dynamic share of multi-region
//! instructions.
//!
//! Paper reference: most static memory instructions are single-region
//! (only 1.8% / 1.9% multi-region for integer / FP); the stack-only class
//! exceeds 50% of static instructions on average; multi-region
//! instructions account for 0–9.6% of dynamic references.

fn main() {
    arl_bench::run_main(arl_bench::figure2);
}
