//! Ablation (paper footnote 8): 2-bit hysteresis ARPT vs the 1-bit
//! last-region scheme. The paper omits the 2-bit data because "their
//! performance is consistently lower than that of 1-bit schemes".

fn main() {
    arl_bench::run_main(arl_bench::ablation_twobit);
}
