//! Ablation (paper footnote 8): 2-bit hysteresis ARPT vs the 1-bit
//! last-region scheme. The paper omits the 2-bit data because "their
//! performance is consistently lower than that of 1-bit schemes".

use arl_bench::{evaluate_program, fmt_pct, scale_from_env};
use arl_core::{Capacity, Context, EvalConfig, PredictorKind};
use arl_stats::TableBuilder;
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let mut table = TableBuilder::new(&["Benchmark", "1BIT", "2BIT", "1BIT-HYB", "2BIT-HYB"]);
    let mut wins = [0u32; 2];
    for spec in suite() {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        let mut accs = Vec::new();
        for (kind, context) in [
            (PredictorKind::OneBit, Context::None),
            (PredictorKind::TwoBit, Context::None),
            (PredictorKind::OneBit, Context::HYBRID_8_24),
            (PredictorKind::TwoBit, Context::HYBRID_8_24),
        ] {
            let report = evaluate_program(
                &program,
                spec.name,
                EvalConfig {
                    kind,
                    context,
                    capacity: Capacity::Unlimited,
                    hints: None,
                },
            );
            accs.push(report.stats.accuracy());
            row.push(fmt_pct(report.stats.accuracy(), 3));
        }
        if accs[0] >= accs[1] {
            wins[0] += 1;
        }
        if accs[2] >= accs[3] {
            wins[1] += 1;
        }
        table.row(&row);
    }
    println!("Ablation: 1-bit vs 2-bit ARPT entries (unlimited table)");
    println!("{}", table.render());
    println!(
        "1-bit ≥ 2-bit on {}/12 workloads (plain) and {}/12 (hybrid context)",
        wins[0], wins[1]
    );
}
