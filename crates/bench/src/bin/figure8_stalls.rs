//! Renders the **Figure 8 stall-attribution** companion table: for every
//! Figure 8 memory-system configuration, where the suite's commit-blocked
//! cycles go (fetch-dry, FU-full, ROB-full, execute/memory latency,
//! memory-port contention, store ordering, ARPT redirect).
//!
//! The useful fraction plus the eight stall categories account for every
//! simulated cycle — the probe layer attributes each cycle exactly once —
//! so rows sum to 100%. Set `ARL_PROBE=1` to also get the raw per-cell
//! histograms as `BENCH_figure8_stalls_probe.json`.

fn main() {
    arl_bench::run_main(arl_bench::figure8_stalls);
}
