//! Regenerates **Figure 8**: performance of the Figure 8 memory-system
//! configurations relative to the (2+0) baseline.
//!
//! Paper reference: (16+0) gains 33% (integer) / 25% (FP) over (2+0);
//! (3+0) 2-cycle gains 21%/14%; (4+0) 3-cycle gains 25%/20%; (2+2) matches
//! (4+0) for integer codes but trails for FP; (2+3) only helps stack-heavy
//! integer programs; (3+3) reaches the (16+0) level for integer programs
//! and the (4+0) level for FP.

use arl_bench::scale_from_env;
use arl_stats::{BarChart, TableBuilder};
use arl_timing::{MachineConfig, TimingSim};
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let configs = MachineConfig::figure8_suite();
    let mut header: Vec<String> = vec!["Benchmark".into()];
    header.extend(configs.iter().map(|c| c.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);

    let mut speedup_sums = vec![[0.0f64; 2]; configs.len()];
    let mut counts = [0u32; 2];
    let mut chart = BarChart::new("Figure 8: average speedup over (2+0)", 48);
    for spec in suite() {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        let mut base_cycles = 0u64;
        for (i, config) in configs.iter().enumerate() {
            let stats = TimingSim::run_program(&program, config);
            if i == 0 {
                base_cycles = stats.cycles;
            }
            let speedup = base_cycles as f64 / stats.cycles as f64;
            row.push(format!("{speedup:.3}"));
            speedup_sums[i][spec.is_fp as usize] += speedup;
        }
        counts[spec.is_fp as usize] += 1;
        table.row(&row);
    }
    let mut int_row = vec!["Int avg".to_string()];
    let mut fp_row = vec!["FP avg".to_string()];
    for (i, s) in speedup_sums.iter().enumerate() {
        let int_avg = s[0] / counts[0] as f64;
        let fp_avg = s[1] / counts[1] as f64;
        int_row.push(format!("{int_avg:.3}"));
        fp_row.push(format!("{fp_avg:.3}"));
        chart.bar(&format!("{} int", configs[i].name), int_avg);
        chart.bar(&format!("{} fp", configs[i].name), fp_avg);
        chart.gap();
    }
    table.row(&int_row);
    table.row(&fp_row);
    println!("Figure 8: speedup over the (2+0) baseline (higher is better)");
    println!("{}", table.render());
    println!("{}", chart.render());
}
