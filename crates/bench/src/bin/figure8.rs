//! Regenerates **Figure 8**: performance of the Figure 8 memory-system
//! configurations relative to the (2+0) baseline.
//!
//! Paper reference: (16+0) gains 33% (integer) / 25% (FP) over (2+0);
//! (3+0) 2-cycle gains 21%/14%; (4+0) 3-cycle gains 25%/20%; (2+2) matches
//! (4+0) for integer codes but trails for FP; (2+3) only helps stack-heavy
//! integer programs; (3+3) reaches the (16+0) level for integer programs
//! and the (4+0) level for FP.

fn main() {
    arl_bench::run_main(arl_bench::figure8);
}
