//! Ablation (paper Section 4.4): "the (2+0) configuration with a 128 KB
//! data cache produces little performance improvement over the same
//! configuration with a 64 KB data cache (by less than 1%)" — the baseline
//! is bandwidth-bound, not capacity-bound.

fn main() {
    arl_bench::run_main(arl_bench::ablation_l1size);
}
