//! Ablation (paper Section 4.4): "the (2+0) configuration with a 128 KB
//! data cache produces little performance improvement over the same
//! configuration with a 64 KB data cache (by less than 1%)" — the baseline
//! is bandwidth-bound, not capacity-bound.

use arl_bench::scale_from_env;
use arl_stats::TableBuilder;
use arl_timing::{MachineConfig, TimingSim};
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let mut table = TableBuilder::new(&["Benchmark", "64KB cycles", "128KB cycles", "gain %"]);
    let mut total_gain = 0.0;
    let suite = suite();
    for spec in &suite {
        let program = spec.build(scale);
        let base = TimingSim::run_program(&program, &MachineConfig::baseline_2_0());
        let mut big = MachineConfig::baseline_2_0();
        big.dcache.size_bytes = 128 * 1024;
        big.name = "(2+0)/128KB".into();
        let wide = TimingSim::run_program(&program, &big);
        let gain = 100.0 * (base.cycles as f64 / wide.cycles as f64 - 1.0);
        total_gain += gain;
        table.row(&[
            spec.spec_name.to_string(),
            base.cycles.to_string(),
            wide.cycles.to_string(),
            format!("{gain:+.2}"),
        ]);
    }
    println!("Ablation: doubling the baseline L1 capacity (ports stay at 2)");
    println!("{}", table.render());
    println!(
        "Average gain: {:+.2}% — capacity is not the baseline's bottleneck",
        total_gain / suite.len() as f64
    );
}
