//! Regenerates **Figure 4**: percentage of dynamic memory references
//! correctly classified into stack / non-stack by the five schemes over an
//! unlimited ARPT: STATIC, 1BIT, 1BIT-GBH, 1BIT-CID, 1BIT-HYBRID
//! (8-bit GBH ⊕ 24-bit CID).
//!
//! Paper reference: the static rules alone cover >50% of references; 1BIT
//! beats the single-context variants on most programs; 1BIT-HYBRID is best
//! overall at 99.89% (integer) / 100.0% (FP).

use arl_bench::{evaluate_program, fmt_pct, scale_from_env};
use arl_core::{EvalConfig, Source};
use arl_stats::TableBuilder;
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let schemes = EvalConfig::figure4_schemes();
    let mut header: Vec<&str> = vec!["Benchmark", "Static-cover %"];
    header.extend(schemes.iter().map(|(n, _)| *n));
    let mut table = TableBuilder::new(&header);
    let mut sums = vec![[0.0f64; 2]; schemes.len()];
    let mut counts = [0u32; 2];
    for spec in suite() {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        let mut static_cover = String::new();
        for (i, (_, config)) in schemes.iter().enumerate() {
            let report = evaluate_program(&program, spec.name, config.clone());
            if i == 0 {
                static_cover = fmt_pct(report.stats.coverage(Source::Static), 1);
            }
            row.push(fmt_pct(report.stats.accuracy(), 2));
            sums[i][spec.is_fp as usize] += report.stats.accuracy();
        }
        row.insert(1, static_cover);
        table.row(&row);
        counts[spec.is_fp as usize] += 1;
    }
    let mut int_row = vec!["Int avg".to_string(), String::new()];
    let mut fp_row = vec!["FP avg".to_string(), String::new()];
    for s in &sums {
        int_row.push(fmt_pct(s[0] / counts[0] as f64, 2));
        fp_row.push(fmt_pct(s[1] / counts[1] as f64, 2));
    }
    table.row(&int_row);
    table.row(&fp_row);
    println!("Figure 4: dynamic classification accuracy (unlimited ARPT)");
    println!("{}", table.render());
}
