//! Regenerates **Figure 4**: percentage of dynamic memory references
//! correctly classified into stack / non-stack by the five schemes over an
//! unlimited ARPT: STATIC, 1BIT, 1BIT-GBH, 1BIT-CID, 1BIT-HYBRID
//! (8-bit GBH ⊕ 24-bit CID).
//!
//! Paper reference: the static rules alone cover >50% of references; 1BIT
//! beats the single-context variants on most programs; 1BIT-HYBRID is best
//! overall at 99.89% (integer) / 100.0% (FP).

fn main() {
    arl_bench::run_main(arl_bench::figure4);
}
