//! Ablation (paper Section 3.3): stack-cache hit rate vs LVC size. The
//! paper cites its companion study: "A 4-KB stack cache achieved over
//! 99.5% hit rate for the SPEC95 benchmark programs, with an average of
//! about 99.9%".

fn main() {
    arl_bench::run_main(arl_bench::ablation_lvc);
}
