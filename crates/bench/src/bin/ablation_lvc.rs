//! Ablation (paper Section 3.3): stack-cache hit rate vs LVC size. The
//! paper cites its companion study: "A 4-KB stack cache achieved over
//! 99.5% hit rate for the SPEC95 benchmark programs, with an average of
//! about 99.9%".

use arl_bench::scale_from_env;
use arl_stats::TableBuilder;
use arl_timing::{CacheConfig, MachineConfig, TimingSim};
use arl_workloads::suite;

fn main() {
    let scale = scale_from_env();
    let sizes = [1u64, 2, 4, 8];
    let mut header = vec!["Benchmark".to_string()];
    header.extend(sizes.iter().map(|k| format!("{k}KB hit%")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    let mut avg = vec![0.0f64; sizes.len()];
    let suite = suite();
    for spec in &suite {
        let program = spec.build(scale);
        let mut row = vec![spec.spec_name.to_string()];
        for (i, kb) in sizes.iter().enumerate() {
            let mut config = MachineConfig::decoupled(2, 2);
            config.lvc = Some(CacheConfig {
                size_bytes: kb * 1024,
                ..CacheConfig::lvc(2)
            });
            config.name = format!("(2+2)/{kb}KB");
            let stats = TimingSim::run_program(&program, &config);
            let rate = stats.lvc.expect("decoupled machine").hit_rate();
            avg[i] += rate;
            row.push(format!("{:.2}", 100.0 * rate));
        }
        table.row(&row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for a in &avg {
        avg_row.push(format!("{:.2}", 100.0 * a / suite.len() as f64));
    }
    table.row(&avg_row);
    println!("Ablation: Local Variable Cache hit rate vs size (direct-mapped, 1-cycle)");
    println!("{}", table.render());
}
