//! Prints **Table 4**: the base machine model, as configured in
//! `arl-timing` — a direct parameter dump so the reproduction's model is
//! auditable against the paper's.

fn main() {
    arl_bench::run_main(arl_bench::table4);
}
