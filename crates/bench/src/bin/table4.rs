//! Prints **Table 4**: the base machine model, as configured in
//! `arl-timing` — a direct parameter dump so the reproduction's model is
//! auditable against the paper's.

use arl_stats::TableBuilder;
use arl_timing::MachineConfig;

fn main() {
    let c = MachineConfig::baseline_2_0();
    let mut t = TableBuilder::new(&["Parameter", "Value"]);
    t.row(&["Issue width", &c.issue_width.to_string()]);
    t.row(&["No. of regs", "32 GPRs / 32 FPRs"]);
    t.row(&["ROB/LSQ size", &format!("{}/{}", c.rob_size, c.lsq_size)]);
    t.row(&[
        "Func. units",
        &format!(
            "{} int + {} FP ALUs, {} int + {} FP MULT/DIV",
            c.int_alus, c.fp_alus, c.int_mul_div, c.fp_mul_div
        ),
    ]);
    t.row(&["Value pred.", "Stride-based, 16K-entry table"]);
    t.row(&[
        "L1 D-cache",
        &format!(
            "{}-way set-assoc. {} KB, {}-cycle hit",
            c.dcache.assoc,
            c.dcache.size_bytes / 1024,
            c.dcache.hit_latency
        ),
    ]);
    t.row(&[
        "L2 D-cache",
        &format!(
            "{}-way, {} KB, {}-cycle access",
            c.l2.assoc,
            c.l2.size_bytes / 1024,
            c.l2.hit_latency
        ),
    ]);
    t.row(&[
        "Memory",
        &format!("{}-cycle access, fully interleaved", c.memory_latency),
    ]);
    let lvc = arl_timing::CacheConfig::lvc(2);
    t.row(&[
        "LV Cache",
        &format!(
            "direct-mapped, {} KB, {}-cycle access",
            lvc.size_bytes / 1024,
            lvc.hit_latency
        ),
    ]);
    t.row(&[
        "ARPT",
        &format!("{}K 1-bit entries", (1u64 << c.arpt_log2_entries) / 1024),
    ]);
    t.row(&["I-cache", "perfect, 1-cycle"]);
    t.row(&["Branch pred.", "perfect"]);
    t.row(&["Inst. latencies", "MIPS R10000-flavoured"]);
    println!("Table 4: base machine model");
    println!("{}", t.render());
}
