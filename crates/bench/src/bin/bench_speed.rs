//! Replay-throughput benchmark across the lever matrix: {event, legacy}
//! core × {compiled, uncompiled} trace, instructions/second per workload.
//!
//! Prints a table, writes `BENCH_speed.json` (schema `arl-speed/v2`),
//! and — when `ARL_SPEED_BASELINE` points at a committed baseline —
//! exits non-zero if any measured workload's headline speedup regresses
//! below `ARL_SPEED_MIN_RATIO` (default 0.8) of the baseline's.

use arl_bench::{regressions_vs_baseline, run_speed_suite};

fn main() {
    let scale = arl_bench::scale_from_env();
    let report = run_speed_suite(scale);

    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14} {:>9} {:>7} {:>7}",
        "workload", "inst", "event i/s", "event-unc i/s", "legacy i/s", "speedup", "core", "cmpld"
    );
    for row in &report.rows {
        let legacy = row
            .legacy_ips
            .map_or_else(|| "-".to_string(), |v| format!("{v:.0}"));
        let speedup = row
            .speedup()
            .map_or_else(|| "-".to_string(), |v| format!("{v:.1}x"));
        let core = row
            .core_speedup()
            .map_or_else(|| "-".to_string(), |v| format!("{v:.1}x"));
        println!(
            "{:<10} {:>12} {:>14.0} {:>14.0} {:>14} {:>9} {:>7} {:>6.1}x",
            row.workload,
            row.instructions,
            row.event_ips,
            row.event_uncompiled_ips,
            legacy,
            speedup,
            core,
            row.compiled_speedup(),
        );
    }
    let suite_speedup = report
        .suite_speedup_geomean()
        .map_or_else(|| "-".to_string(), |v| format!("{v:.2}x"));
    println!(
        "suite: event {:.0} inst/s, geomean speedup {suite_speedup}",
        report.suite_event_ips()
    );

    match arl_bench::write_speed_json(&report) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("[bench_speed] failed to write BENCH_speed.json: {e}");
            std::process::exit(1);
        }
    }

    if let Ok(baseline) = std::env::var("ARL_SPEED_BASELINE") {
        match regressions_vs_baseline(&report, &baseline) {
            Ok(failures) if failures.is_empty() => {
                println!("speed gate: ok vs {baseline}");
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("[bench_speed] regression: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("[bench_speed] {e}");
                std::process::exit(1);
            }
        }
    }
}
