//! Regenerates **Table 2**: average number (and standard deviation) of
//! data, heap, and stack accesses in the last 32 and 64 instructions.
//!
//! Paper reference: averages D 4.79 / H 1.77 / S 4.77 at window 32 (doubled
//! at 64); data or stack leads in every program; heap accesses are bursty
//! (stddev > mean) in most programs that have them; FP programs have
//! near-zero heap traffic.

fn main() {
    arl_bench::run_main(arl_bench::table2);
}
