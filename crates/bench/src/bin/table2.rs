//! Regenerates **Table 2**: average number (and standard deviation) of
//! data, heap, and stack accesses in the last 32 and 64 instructions.
//!
//! Paper reference: averages D 4.79 / H 1.77 / S 4.77 at window 32 (doubled
//! at 64); data or stack leads in every program; heap accesses are bursty
//! (stddev > mean) in most programs that have them; FP programs have
//! near-zero heap traffic.

use arl_bench::{profile_suite, scale_from_env};
use arl_mem::Region;
use arl_stats::TableBuilder;

fn main() {
    let scale = scale_from_env();
    let mut table = TableBuilder::new(&[
        "Benchmark",
        "W32 Data",
        "W32 Heap",
        "W32 Stack",
        "W64 Data",
        "W64 Heap",
        "W64 Stack",
    ]);
    let reports = profile_suite(scale);
    let mut avg = [[0.0f64; 3]; 2];
    for report in &reports {
        let mut row = vec![report.spec.spec_name.to_string()];
        for (wi, w) in report.windows.iter().enumerate() {
            for (ri, region) in Region::DATA_REGIONS.iter().enumerate() {
                row.push(format!("{:.2} ({:.2})", w.mean(*region), w.stddev(*region)));
                avg[wi][ri] += w.mean(*region);
            }
        }
        table.row(&row);
    }
    let n = reports.len() as f64;
    let mut avg_row = vec!["Average".to_string()];
    for w in &avg {
        for v in w {
            avg_row.push(format!("{:.2}", v / n));
        }
    }
    table.row(&avg_row);
    println!("Table 2: mean (stddev) of per-region accesses in 32/64-instruction windows");
    println!("{}", table.render());

    // The paper's burstiness observations, with the distribution's direct
    // clustering evidence (fraction of windows with zero accesses).
    println!("Strictly bursty regions (mean < stddev) and idle-window fractions, window 32:");
    for report in &reports {
        let w = &report.windows[0];
        let bursty: Vec<&str> = Region::DATA_REGIONS
            .iter()
            .filter(|&&r| w.mean(r) > 0.01 && w.is_strictly_bursty(r))
            .map(|r| r.letter())
            .collect();
        let idle: Vec<String> = Region::DATA_REGIONS
            .iter()
            .map(|&r| format!("{}:{:.0}%", r.letter(), 100.0 * w.idle_fraction(r)))
            .collect();
        println!(
            "  {:<12} bursty[{}]  idle windows {}",
            report.spec.spec_name,
            bursty.join(","),
            idle.join(" ")
        );
    }
}
