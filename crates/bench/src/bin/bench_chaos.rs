//! Crash-consistency chaos campaign: SIGKILL and I/O-fault the
//! `fault_campaign` pipeline at seeded points, then prove recovery is
//! loud, exactly-once, and byte-identical. See `arl_bench::chaos`.

fn main() {
    arl_bench::run_chaos_main();
}
