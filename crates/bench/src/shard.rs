//! Snapshot-sharded trace replay (`bench_shard` binary and the
//! `ARL_SHARD` experiment knob).
//!
//! A v2 `.arltrace` captured with snapshots has `S + 1` independent
//! segments. This module groups those segments into `M` contiguous
//! *shard jobs* and replays them as a chain: each job opens a
//! [`Replayer::open_span`] over its segment group, resumes the timing
//! model from the previous job's exported machine-state blob, and exports
//! its own blob for the next. The final job's [`SimStats`] are the whole
//! run's — **bit-identical** to an unsharded replay (the shard
//! differential suite holds this to `==` on every workload, both cores).
//!
//! Machine state is config-dependent (ARPT geometry, cache contents,
//! in-flight pipeline), so shard jobs of one (workload × config) cell are
//! *chained*, not parallel: the payoff is not intra-cell parallelism but
//! shard-granular fault tolerance. With `ARL_CHECKPOINT` set, every
//! completed non-final shard appends its state blob to the ledger, and an
//! interrupted cell resumes from the last recorded shard instead of cycle
//! zero — [`replay_sharded_supervised`] is exactly-once over shard jobs.
//!
//! Knobs: `ARL_SHARD` (shard jobs per cell, default 1 = unsharded),
//! `ARL_SNAPSHOT_INTERVAL` (capture-time snapshot cadence in
//! instructions, default [`DEFAULT_SNAPSHOT_INTERVAL`]; 0 disables).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use arl_asm::Program;
use arl_stats::Json;
use arl_timing::{MachineConfig, Recorder, SimStats, TimingSim};
use arl_trace::{Replayer, Trace};
use arl_workloads::workload;

use crate::runner::{scale_label, write_named_json, Checkpoint, RunIdentity};
use crate::{capture_trace_snapshotted, timing_trace, ExperimentOptions};

/// `BENCH_shard.json` schema identifier.
pub const SHARD_SCHEMA: &str = "arl-shard/v1";

/// Default `ARL_SNAPSHOT_INTERVAL`: one snapshot per million retired
/// instructions — coarse enough to stay invisible in container size,
/// fine enough that default-scale workloads shard into several segments.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 1_000_000;

/// Resolves a raw `ARL_SHARD` value: a positive integer is the shard-job
/// count per (workload × config) cell; unset means 1 (unsharded); zero is
/// clamped to 1 and anything unparsable warns and replays unsharded.
/// Routed through [`crate::knob_u64`] like every other `ARL_*` knob.
pub fn shard_from_value(value: Option<&str>) -> usize {
    crate::knob_u64("ARL_SHARD", value, 1, 1) as usize
}

/// Reads `ARL_SHARD`.
pub fn shard_from_env() -> usize {
    shard_from_value(std::env::var("ARL_SHARD").ok().as_deref())
}

/// Resolves a raw `ARL_SNAPSHOT_INTERVAL` value: instructions between
/// snapshot records at capture time; 0 disables snapshots; unset or
/// unparsable values use [`DEFAULT_SNAPSHOT_INTERVAL`]. Routed through
/// [`crate::knob_u64`] like every other `ARL_*` knob.
pub fn snapshot_interval_from_value(value: Option<&str>) -> u64 {
    crate::knob_u64("ARL_SNAPSHOT_INTERVAL", value, DEFAULT_SNAPSHOT_INTERVAL, 0)
}

/// Reads `ARL_SNAPSHOT_INTERVAL`.
pub fn snapshot_interval_from_env() -> u64 {
    snapshot_interval_from_value(std::env::var("ARL_SNAPSHOT_INTERVAL").ok().as_deref())
}

/// Groups `segments` trace segments into at most `shards` contiguous,
/// balanced shard jobs. Returns `(start, end)` *boundary* pairs in
/// [`Replayer::open_span`] coordinates: job `i` replays boundaries
/// `[start, end)`. The job count is `min(shards.max(1), segments)`; sizes
/// differ by at most one segment, larger groups first.
pub fn shard_plan(segments: u64, shards: usize) -> Vec<(u64, u64)> {
    let jobs = (shards.max(1) as u64).min(segments.max(1));
    let base = segments / jobs;
    let extra = segments % jobs;
    let mut plan = Vec::with_capacity(jobs as usize);
    let mut at = 0u64;
    for i in 0..jobs {
        let size = base + u64::from(i < extra);
        plan.push((at, at + size));
        at += size;
    }
    debug_assert_eq!(at, segments);
    plan
}

/// An FNV-1a 64 fingerprint of the *full* `Debug` rendering of a
/// [`SimStats`] — every counter, nested cache stats included. Two runs
/// fingerprint equal iff their stats are field-for-field identical, so
/// the `BENCH_shard.json` document can prove bit-identity in one number.
pub fn stats_fingerprint(stats: &SimStats) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{stats:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

/// One shard job's result before probe-genericity is erased.
struct SpanRun {
    stats: SimStats,
    state: Option<Vec<u8>>,
    recorder: Option<Recorder>,
}

/// Replays boundaries `[span.0, span.1)` as one shard job.
#[allow(clippy::too_many_arguments)]
fn replay_span(
    program: &Program,
    trace: &Trace,
    name: &str,
    config: &MachineConfig,
    span: (u64, u64),
    resume: Option<&[u8]>,
    final_shard: bool,
    probe: bool,
) -> SpanRun {
    let mut replayer = Replayer::open_span(trace, program, span.0, span.1).unwrap_or_else(|e| {
        panic!(
            "workload {name} shard span [{}, {}) rejected: {e}",
            span.0, span.1
        )
    });
    if probe {
        let run = TimingSim::run_segment_probed(
            &mut replayer,
            config,
            resume,
            final_shard,
            Recorder::new(),
        )
        .unwrap_or_else(|e| panic!("workload {name} shard replay failed: {e}"));
        SpanRun {
            stats: run.stats,
            state: run.state,
            recorder: Some(run.probe),
        }
    } else {
        let run = TimingSim::run_segment(&mut replayer, config, resume, final_shard)
            .unwrap_or_else(|e| panic!("workload {name} shard replay failed: {e}"));
        SpanRun {
            stats: run.stats,
            state: run.state,
            recorder: None,
        }
    }
}

/// The stitched result of a sharded replay.
pub struct ShardedReplay {
    /// Whole-run statistics (the final shard's cumulative view) —
    /// bit-identical to an unsharded replay of the same trace.
    pub stats: SimStats,
    /// Per-shard recorders merged in shard order, when probing was on —
    /// identical to a serial probed run's recorder.
    pub recorder: Option<Recorder>,
    /// The boundary plan that was replayed (after clamping to the
    /// available segments).
    pub plan: Vec<(u64, u64)>,
    /// Shard jobs replayed by *this* invocation.
    pub executed: usize,
    /// Shard jobs served from the checkpoint ledger instead of replayed.
    pub skipped: usize,
    /// Wall seconds per executed shard job, in execution order.
    pub shard_walls: Vec<f64>,
}

/// Replays `trace` as `shards` chained shard jobs, stitching the result.
///
/// # Panics
///
/// Panics if the trace does not replay cleanly against `program` — the
/// same contract as [`timing_trace`](crate::timing_trace).
pub fn replay_sharded(
    program: &Program,
    trace: &Trace,
    name: &str,
    config: &MachineConfig,
    shards: usize,
    probe: bool,
) -> ShardedReplay {
    let plan = shard_plan(trace.snapshot_count() + 1, shards);
    let mut state: Option<Vec<u8>> = None;
    let mut merged = probe.then(Recorder::new);
    let mut stats: Option<SimStats> = None;
    let mut walls = Vec::with_capacity(plan.len());
    for (i, &span) in plan.iter().enumerate() {
        let final_shard = i + 1 == plan.len();
        let start = Instant::now();
        let run = replay_span(
            program,
            trace,
            name,
            config,
            span,
            state.as_deref(),
            final_shard,
            probe,
        );
        walls.push(start.elapsed().as_secs_f64());
        if let (Some(m), Some(r)) = (&mut merged, &run.recorder) {
            m.merge(r);
        }
        state = run.state;
        stats = Some(run.stats);
    }
    let executed = plan.len();
    ShardedReplay {
        stats: stats.unwrap_or_else(|| panic!("workload {name}: empty shard plan")),
        recorder: merged,
        plan,
        executed,
        skipped: 0,
        shard_walls: walls,
    }
}

fn shard_key(scope: &str, shard: usize, shards: usize) -> String {
    format!("shard/{scope}/{shard}of{shards}")
}

/// [`replay_sharded`], supervised by a [`Checkpoint`] ledger: every
/// completed non-final shard records its machine-state blob under
/// `shard/<scope>/<i>of<M>`, and a later invocation with the same ledger
/// and scope resumes after the last recorded shard instead of replaying
/// from cycle zero — exactly-once over shard jobs.
///
/// `max_shard_jobs` caps the shard jobs *executed this invocation* (the
/// kill-resume gates interrupt deterministically with it); when the cap
/// strikes before the final shard, the function returns `None` and the
/// ledger holds everything needed to resume. Supervised replays are
/// always unprobed: a resumed run cannot reconstruct the recorders of
/// shards it skipped, so offering a probe here would silently under-count.
///
/// # Panics
///
/// Panics if the trace does not replay cleanly, if a ledger entry for
/// this scope is corrupt or disagrees with the plan, or if the ledger
/// cannot be appended to.
#[allow(clippy::too_many_arguments)]
pub fn replay_sharded_supervised(
    program: &Program,
    trace: &Trace,
    name: &str,
    config: &MachineConfig,
    shards: usize,
    ledger: &mut Checkpoint,
    scope: &str,
    max_shard_jobs: Option<usize>,
) -> Option<ShardedReplay> {
    let plan = shard_plan(trace.snapshot_count() + 1, shards);
    let jobs = plan.len();

    // Resume after the *latest* recorded non-final shard: its payload
    // carries the exact machine state the next shard must start from.
    let mut first = 0usize;
    let mut state: Option<Vec<u8>> = None;
    for i in (0..jobs.saturating_sub(1)).rev() {
        let key = shard_key(scope, i, jobs);
        let Some(payload) = ledger.get(&key) else {
            continue;
        };
        let doc = Json::parse(payload)
            .unwrap_or_else(|e| panic!("corrupt shard ledger entry for {key}: {e}"));
        let recorded_jobs = doc.get("shards").and_then(Json::as_u64);
        if recorded_jobs != Some(jobs as u64) {
            panic!(
                "shard ledger entry {key} was recorded for {recorded_jobs:?} shard jobs, \
                 this plan has {jobs}"
            );
        }
        let hex = doc
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("shard ledger entry {key} has no state blob"));
        state = Some(
            from_hex(hex).unwrap_or_else(|| panic!("shard ledger entry {key} state is not hex")),
        );
        first = i + 1;
        break;
    }

    let mut executed = 0usize;
    let mut walls = Vec::new();
    let mut stats: Option<SimStats> = None;
    for (i, &span) in plan.iter().enumerate().skip(first) {
        if let Some(cap) = max_shard_jobs {
            if executed >= cap {
                return None; // interrupted; the ledger carries the resume point
            }
        }
        let final_shard = i + 1 == jobs;
        let start = Instant::now();
        let run = replay_span(
            program,
            trace,
            name,
            config,
            span,
            state.as_deref(),
            final_shard,
            false,
        );
        walls.push(start.elapsed().as_secs_f64());
        executed += 1;
        if let Some(blob) = &run.state {
            let key = shard_key(scope, i, jobs);
            let payload = Json::obj([
                ("schema", Json::from(SHARD_SCHEMA)),
                ("shard", Json::from(i)),
                ("shards", Json::from(jobs)),
                ("span", Json::Arr(vec![span.0.into(), span.1.into()])),
                ("instructions", Json::from(run.stats.instructions)),
                ("cycles", Json::from(run.stats.cycles)),
                ("state", Json::from(to_hex(blob))),
            ]);
            ledger
                .record(&key, &payload)
                .unwrap_or_else(|e| panic!("failed to checkpoint {key}: {e}"));
        }
        state = run.state;
        stats = Some(run.stats);
    }
    Some(ShardedReplay {
        stats: stats.unwrap_or_else(|| {
            panic!("workload {name}: every shard was already checkpointed but none was final")
        }),
        recorder: None,
        plan,
        executed,
        skipped: first,
        shard_walls: walls,
    })
}

/// A finished shard benchmark: rendered text, the `arl-shard/v1`
/// document, and whether stitched and serial results diverged.
pub struct ShardBenchRun {
    /// The exact bytes the binary prints to stdout.
    pub text: String,
    /// The `BENCH_shard.json` payload.
    pub doc: Json,
    /// True when any stitched result was not bit-identical to serial.
    pub failed: bool,
}

/// The ledger fingerprint for one shard benchmark: the workload, config,
/// scale, snapshot cadence, shard-job count, and — because recorded
/// shard-state blobs are only meaningful for the exact capture they were
/// replayed from — the FNV-1a64 checksum of the trace container.
pub fn shard_identity(
    workload: &str,
    config_name: &str,
    scale: &str,
    interval: u64,
    shards: usize,
    trace_checksum: u64,
) -> RunIdentity {
    RunIdentity::new("shard")
        .field("workload", workload)
        .field("config", config_name)
        .field("scale", scale)
        .field("snapshot_interval", interval)
        .field("shards", shards)
        .field("trace", format!("{trace_checksum:016x}"))
}

/// Runs the shard benchmark on one workload: captures a snapshotted
/// trace, times a serial replay and an `shards`-way sharded replay,
/// asserts bit-identity, and — when a ledger path is given — additionally
/// times an interrupt-then-resume cycle (`shards − 1` jobs, "crash",
/// resume) to measure what shard-granular recovery saves over restarting.
/// The ledger opens *after* capture so its identity can fingerprint the
/// trace checksum.
///
/// # Errors
///
/// Ledger I/O failures or an identity mismatch ([`Checkpoint::open`]).
pub fn shard_bench_with(
    opts: &ExperimentOptions,
    workload_name: &str,
    shards: usize,
    interval: u64,
    ledger_path: Option<&Path>,
    force: bool,
) -> std::io::Result<ShardBenchRun> {
    let spec = workload(workload_name)
        .unwrap_or_else(|| panic!("ARL_SHARD_WORKLOAD={workload_name} matches no suite workload"));
    let config = MachineConfig::decoupled(3, 3);
    let scale = scale_label(opts.scale);

    let program = spec.build(opts.scale);
    let capture_start = Instant::now();
    let trace = capture_trace_snapshotted(&program, spec.name, interval);
    let capture_wall = capture_start.elapsed().as_secs_f64();

    let mut ledger = match ledger_path {
        Some(path) => {
            let identity = shard_identity(
                spec.name,
                &config.name,
                &scale,
                interval,
                shards,
                arl_trace::fnv1a64(trace.as_bytes()),
            );
            Some(Checkpoint::open(path, &identity, force)?)
        }
        None => None,
    };

    let serial_start = Instant::now();
    let serial = timing_trace(&program, &trace, spec.name, &config);
    let serial_wall = serial_start.elapsed().as_secs_f64();

    let sharded_start = Instant::now();
    let sharded = replay_sharded(&program, &trace, spec.name, &config, shards, false);
    let sharded_wall = sharded_start.elapsed().as_secs_f64();
    let identical = serial == sharded.stats;

    // Optional kill-resume measurement against the ledger: run all but
    // the last shard job, "crash", then resume. The resumed invocation
    // replays exactly one job, so (serial_wall / resume_wall) is the
    // recovery speedup sharding buys at this cadence.
    let mut resume_pairs: Option<Vec<(String, Json)>> = None;
    let mut resume_identical = true;
    if let Some(ckpt) = ledger.as_mut() {
        let scope = format!(
            "{}/{}/{}/interval={}",
            spec.name, config.name, scale, interval
        );
        let jobs = sharded.plan.len();
        let interrupted = replay_sharded_supervised(
            &program,
            &trace,
            spec.name,
            &config,
            shards,
            ckpt,
            &scope,
            Some(jobs.saturating_sub(1)),
        );
        let resume_start = Instant::now();
        let resumed = replay_sharded_supervised(
            &program, &trace, spec.name, &config, shards, ckpt, &scope, None,
        )
        .unwrap_or_else(|| panic!("{}: uncapped resume cannot be interrupted", spec.name));
        let resume_wall = resume_start.elapsed().as_secs_f64();
        resume_identical = resumed.stats == serial;
        resume_pairs = Some(vec![
            ("interrupted".to_string(), Json::from(interrupted.is_none())),
            ("executed".to_string(), Json::from(resumed.executed)),
            ("skipped".to_string(), Json::from(resumed.skipped)),
            ("wall_seconds".to_string(), Json::from(resume_wall)),
            (
                "speedup_vs_serial".to_string(),
                Json::from(serial_wall / resume_wall.max(f64::MIN_POSITIVE)),
            ),
            ("identical".to_string(), Json::from(resume_identical)),
        ]);
    }

    let mut pairs = vec![
        ("schema".to_string(), Json::from(SHARD_SCHEMA)),
        ("scale".to_string(), Json::from(scale.as_str())),
        ("workload".to_string(), Json::from(spec.name)),
        ("config".to_string(), Json::from(config.name.as_str())),
        ("snapshot_interval".to_string(), Json::from(interval)),
        ("snapshots".to_string(), Json::from(trace.snapshot_count())),
        ("shards".to_string(), Json::from(sharded.plan.len())),
        ("instructions".to_string(), Json::from(serial.instructions)),
        ("cycles".to_string(), Json::from(serial.cycles)),
        (
            "fingerprint".to_string(),
            Json::from(format!("{:#018x}", stats_fingerprint(&serial))),
        ),
        (
            "stitched_fingerprint".to_string(),
            Json::from(format!("{:#018x}", stats_fingerprint(&sharded.stats))),
        ),
        ("identical".to_string(), Json::from(identical)),
        ("capture_wall_seconds".to_string(), Json::from(capture_wall)),
        ("serial_wall_seconds".to_string(), Json::from(serial_wall)),
        ("sharded_wall_seconds".to_string(), Json::from(sharded_wall)),
        (
            "shard_wall_seconds".to_string(),
            Json::Arr(sharded.shard_walls.iter().map(|&w| Json::from(w)).collect()),
        ),
    ];
    if let Some(resume) = resume_pairs {
        pairs.push(("resume".to_string(), Json::Obj(resume)));
    }
    let doc = Json::Obj(pairs);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "Shard bench: {} at scale {}, config {}, snapshot interval {} ({} snapshots)",
        spec.name,
        scale,
        config.name,
        interval,
        trace.snapshot_count()
    );
    let _ = writeln!(
        text,
        "  serial   {:>8} cycles in {serial_wall:.3}s",
        serial.cycles
    );
    let _ = writeln!(
        text,
        "  sharded  {:>8} cycles in {sharded_wall:.3}s over {} chained shard job(s) — {}",
        sharded.stats.cycles,
        sharded.plan.len(),
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    if let Some(resume) = doc.get("resume") {
        let _ = writeln!(
            text,
            "  resume   1 job in {:.3}s ({:.1}x vs serial restart) — {}",
            resume
                .get("wall_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            resume
                .get("speedup_vs_serial")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            if resume_identical {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        );
    }

    Ok(ShardBenchRun {
        text,
        doc,
        failed: !identical || !resume_identical,
    })
}

/// The `bench_shard` binary's `main`: reads `ARL_SHARD` (default 3 when
/// unset — a serial "sweep" would measure nothing), `ARL_SHARD_WORKLOAD`
/// (default `gcc`, the longest suite workload), `ARL_SNAPSHOT_INTERVAL`,
/// `ARL_SCALE`, and `ARL_CHECKPOINT` (enables the kill-resume
/// measurement); prints the comparison; writes `BENCH_shard.json` when
/// `ARL_JSON` is set; exits non-zero if stitched and serial diverge.
pub fn run_shard_main() {
    let opts = ExperimentOptions::from_env();
    let shards = if std::env::var_os("ARL_SHARD").is_some() {
        shard_from_env()
    } else {
        3
    };
    let workload_name = std::env::var("ARL_SHARD_WORKLOAD").unwrap_or_else(|_| "gcc".to_string());
    let interval = snapshot_interval_from_env();
    let ledger_path = std::env::var_os("ARL_CHECKPOINT").map(PathBuf::from);
    // An unusable or mismatched ledger the user explicitly asked for is
    // a hard error — running on without resume protection would silently
    // discard the guarantee they requested.
    let run = match shard_bench_with(
        &opts,
        &workload_name,
        shards,
        interval,
        ledger_path.as_deref(),
        crate::runner::force_from_env(),
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("[arl-bench] cannot open ARL_CHECKPOINT: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", run.text);
    if std::env::var_os("ARL_JSON").is_some() {
        match write_named_json("BENCH_shard.json", &run.doc) {
            Ok(path) => eprintln!("[arl-bench] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[arl-bench] failed to write ARL_JSON: {e}");
                std::process::exit(1);
            }
        }
    }
    if run.failed {
        eprintln!("[arl-bench] shard bench FAILED: stitched replay diverged from serial");
        std::process::exit(1);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_is_balanced_contiguous_and_clamped() {
        assert_eq!(shard_plan(1, 1), vec![(0, 1)]);
        assert_eq!(shard_plan(1, 8), vec![(0, 1)], "clamps to segment count");
        assert_eq!(shard_plan(5, 0), vec![(0, 5)], "zero shards means one job");
        assert_eq!(shard_plan(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        // Exhaustive: contiguity, coverage, and balance for small cases.
        for segments in 1u64..=32 {
            for shards in 1usize..=10 {
                let plan = shard_plan(segments, shards);
                assert_eq!(plan.len(), shards.min(segments as usize));
                assert_eq!(plan[0].0, 0);
                assert_eq!(plan[plan.len() - 1].1, segments);
                for pair in plan.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "contiguous");
                }
                let sizes: Vec<u64> = plan.iter().map(|(a, b)| b - a).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "balanced: {sizes:?}");
                assert!(min >= 1, "no empty shard job");
            }
        }
    }

    #[test]
    fn hex_round_trips() {
        let blob: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(from_hex(&to_hex(&blob)).unwrap(), blob);
        assert_eq!(from_hex(""), Some(Vec::new()));
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digits");
    }

    #[test]
    fn env_value_parsers_handle_edge_cases() {
        assert_eq!(shard_from_value(None), 1);
        assert_eq!(shard_from_value(Some("4")), 4);
        assert_eq!(shard_from_value(Some(" 2 ")), 2);
        assert_eq!(shard_from_value(Some("0")), 1);
        assert_eq!(shard_from_value(Some("many")), 1);
        assert_eq!(
            snapshot_interval_from_value(None),
            DEFAULT_SNAPSHOT_INTERVAL
        );
        assert_eq!(snapshot_interval_from_value(Some("5000")), 5_000);
        assert_eq!(snapshot_interval_from_value(Some("0")), 0, "0 disables");
        assert_eq!(
            snapshot_interval_from_value(Some("soon")),
            DEFAULT_SNAPSHOT_INTERVAL
        );
    }

    #[test]
    fn fingerprint_separates_distinct_stats() {
        let a = SimStats::default();
        let mut b = SimStats::default();
        assert_eq!(stats_fingerprint(&a), stats_fingerprint(&b));
        b.cycles = 1;
        assert_ne!(stats_fingerprint(&a), stats_fingerprint(&b));
    }
}
