//! # arl-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), backed by the
//! shared runners in this library:
//!
//! * [`profile_suite`] / [`ProfileReport`] — one functional-simulation pass
//!   per workload with every Section 3 profiler attached (drives Table 1,
//!   Figure 2, Table 2).
//! * [`evaluate`] — prediction-accuracy runs for arbitrary
//!   [`EvalConfig`]s (drives Figure 4, Table 3, Figure 5 and the 2-bit
//!   ablation).
//! * [`capture_trace`] / [`evaluate_trace`] / [`timing_trace`] — the
//!   execute-once/replay-many pipeline: each workload runs functionally
//!   once per experiment and the config sweep replays its `.arltrace`
//!   capture (`ARL_TRACE=live` restores per-cell re-execution; outputs
//!   are byte-identical either way).
//! * [`Pool`] and the experiment entry points ([`figure8`], [`table1`],
//!   ...) — every binary fans its (workload × config) cells across a
//!   scoped thread pool (`ARL_THREADS`; default all cores) and folds
//!   results in cell order, so output is byte-identical to a serial run.
//! * [`SuiteReport`] — structured [`RunRecord`]s per cell (tagged with a
//!   capture/replay/execute `phase`), written as `BENCH_<experiment>.json`
//!   when `ARL_JSON` is set.
//! * [`scale_from_env`] — every binary honours `ARL_SCALE` (an integer
//!   iteration multiplier; `tiny` for smoke runs) so results can be
//!   reproduced at larger scales without recompiling.
//! * [`timing_trace_probed`] / [`figure8_stalls`] — the opt-in
//!   cycle-level observability layer: `ARL_PROBE=1` attaches an
//!   `arl-timing` `Recorder` to every timing cell and additionally writes
//!   `BENCH_<experiment>_probe.json` (schema [`PROBE_SCHEMA`]) without
//!   perturbing any table or record.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p arl-bench --bin figure4
//! ARL_SCALE=4 cargo run --release -p arl-bench --bin table2
//! ARL_THREADS=8 ARL_JSON=out/ cargo run --release -p arl-bench --bin figure8
//! ```

mod backends;
mod chaos;
mod experiments;
mod faults;
mod knob;
mod runner;
mod shard;
mod speed;

pub use backends::{backends_bench, run_backends_main, BackendsBenchRun, BACKENDS_SCHEMA};

pub use chaos::{chaos_campaign, run_chaos_main, ChaosOptions, ChaosRun, CHAOS_SCHEMA};

pub use knob::{
    backend_from_env, backend_from_value, compiled_capture_from_env, compiled_capture_from_value,
    knob_bool, knob_f64, knob_parsed, knob_u64,
};

pub use shard::{
    replay_sharded, replay_sharded_supervised, run_shard_main, shard_bench_with, shard_from_env,
    shard_from_value, shard_identity, shard_plan, snapshot_interval_from_env,
    snapshot_interval_from_value, stats_fingerprint, ShardBenchRun, ShardedReplay,
    DEFAULT_SNAPSHOT_INTERVAL, SHARD_SCHEMA,
};

pub use speed::{
    regressions_vs_baseline, run_speed_suite, write_speed_json, SpeedReport, SpeedRow, SPEED_SCHEMA,
};

pub use faults::{
    campaign_identity, fault_campaign_pooled, fault_campaign_with, max_jobs_from_value,
    run_faults_main, FaultCampaignRun, FAULTS_SCHEMA,
};

pub use experiments::{
    ablation_l1size, ablation_lvc, ablation_ports, ablation_recovery, ablation_twobit, figure2,
    figure4, figure5, figure8, figure8_stalls, probe, run_main, table1, table2, table3, table4,
    ExperimentOptions, ExperimentRun, TraceMode,
};
pub use runner::{
    deadline_from_value, dedupe_failures, force_from_env, retries_from_value, threads_from_value,
    timed_record, write_named_json, write_probe_json, Checkpoint, FailureKind, JobFailure,
    LedgerView, Pool, RunIdentity, RunRecord, SuiteFailures, SuiteReport, CHECKPOINT_SCHEMA,
    JSON_SCHEMA, PROBE_SCHEMA,
};

use arl_asm::Program;
use arl_core::{EvalConfig, Evaluator, HintTable, PredictionStats};
use arl_sim::{
    Machine, Metrics, RegionBreakdown, RegionProfiler, SlidingWindowProfiler, TraceEntry,
    TraceSource, WindowStats, WorkloadCharacter,
};
use arl_trace::{Replayer, Trace};
use arl_workloads::{suite, Scale, WorkloadSpec};

/// Hard cap on instructions per workload run — generous headroom over the
/// suite's defaults; a workload hitting it indicates a bug.
pub const INST_CAP: u64 = 2_000_000_000;

/// Everything the Section 3 profilers collect for one workload.
pub struct ProfileReport {
    /// The workload that produced this report.
    pub spec: WorkloadSpec,
    /// The linked program (kept for hint construction).
    pub program: Program,
    /// Table 1 columns.
    pub character: WorkloadCharacter,
    /// Figure 2 data.
    pub breakdown: RegionBreakdown,
    /// The raw per-pc profiler (kept for profile-hint construction).
    pub profiler: RegionProfiler,
    /// Table 2 data, one entry per window size (32, 64).
    pub windows: Vec<WindowStats>,
    /// End-of-run machine counters (instructions, peak-RSS proxy).
    pub metrics: Metrics,
}

/// Runs one workload through the functional simulator with all profilers
/// attached.
///
/// # Panics
///
/// Panics if the workload fails to execute — workloads are deterministic
/// programs, so any failure is a harness bug.
pub fn profile_workload(spec: WorkloadSpec, scale: Scale) -> ProfileReport {
    let program = spec.build(scale);
    let mut machine = Machine::new(&program);
    let mut character = WorkloadCharacter::default();
    let mut profiler = RegionProfiler::new();
    let mut windows = SlidingWindowProfiler::new();
    let outcome = machine
        .run_with(INST_CAP, |e| {
            character.observe(e);
            profiler.observe(e);
            windows.observe(e);
        })
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", spec.name));
    assert!(
        outcome.exited,
        "workload {} exceeded the instruction cap",
        spec.name
    );
    let breakdown = profiler.breakdown();
    let metrics = machine.metrics();
    ProfileReport {
        spec,
        program,
        character,
        breakdown,
        profiler,
        windows: windows.stats(),
        metrics,
    }
}

/// Profiles the whole 12-workload suite, one pool cell per workload.
/// Results come back in suite order regardless of the worker count.
pub fn profile_suite_with(pool: &Pool, scale: Scale) -> Vec<ProfileReport> {
    pool.map(suite(), |_i, spec| profile_workload(spec, scale))
}

/// Profiles the whole 12-workload suite with `ARL_THREADS` workers.
pub fn profile_suite(scale: Scale) -> Vec<ProfileReport> {
    profile_suite_with(&Pool::from_env(), scale)
}

/// Result of one prediction-accuracy run.
pub struct EvalReport {
    /// Accuracy and per-source tallies.
    pub stats: PredictionStats,
    /// ARPT entries occupied, when an ARPT was configured.
    pub arpt_occupied: Option<usize>,
    /// End-of-run machine counters (instructions, peak-RSS proxy).
    pub metrics: Metrics,
}

/// Replays one workload through a predictor configuration.
///
/// # Panics
///
/// Panics if the workload fails to execute.
pub fn evaluate(spec: WorkloadSpec, scale: Scale, config: EvalConfig) -> EvalReport {
    let program = spec.build(scale);
    evaluate_program(&program, spec.name, config)
}

/// Replays an already-built program through a predictor configuration.
///
/// # Panics
///
/// Panics if the program fails to execute.
pub fn evaluate_program(program: &Program, name: &str, config: EvalConfig) -> EvalReport {
    let mut machine = Machine::new(program);
    let mut evaluator = Evaluator::new(config);
    let outcome = machine
        .run_with(INST_CAP, |e| evaluator.observe(e))
        .unwrap_or_else(|e| panic!("workload {name} failed: {e}"));
    assert!(
        outcome.exited,
        "workload {name} exceeded the instruction cap"
    );
    EvalReport {
        stats: *evaluator.stats(),
        arpt_occupied: evaluator.arpt_occupied(),
        metrics: machine.metrics(),
    }
}

/// Captures a workload's full dynamic trace (one functional execution),
/// optionally feeding every retired instruction to `visitor` so profilers
/// ride along on the same pass.
///
/// Unless `ARL_TRACE_COMPILED=0`, the capture also *compiles* the trace:
/// per-instruction model facts are precomputed into a version-3 section
/// so replays skip the recomputation (bit-identical results either way).
///
/// # Panics
///
/// Panics if the workload fails to execute or exceeds [`INST_CAP`].
pub fn capture_trace_with<F: FnMut(&TraceEntry)>(
    program: &Program,
    name: &str,
    visitor: F,
) -> Trace {
    let trace = if compiled_capture_from_env() {
        arl_trace::capture_compiled_with(program, INST_CAP, 0, visitor)
    } else {
        arl_trace::capture_with(program, INST_CAP, visitor)
    }
    .unwrap_or_else(|e| panic!("workload {name} failed: {e}"));
    assert!(
        trace.metrics().exited,
        "workload {name} exceeded the instruction cap"
    );
    trace
}

/// Captures a workload's full dynamic trace (one functional execution).
///
/// # Panics
///
/// Panics if the workload fails to execute or exceeds [`INST_CAP`].
pub fn capture_trace(program: &Program, name: &str) -> Trace {
    capture_trace_with(program, name, |_| {})
}

/// [`capture_trace`] with a snapshot record every `interval` retired
/// instructions (0 disables snapshots), so the capture can be replayed in
/// shard segments (`ARL_SHARD`; see [`replay_sharded`]). Honours
/// `ARL_TRACE_COMPILED` like [`capture_trace_with`].
///
/// # Panics
///
/// Panics if the workload fails to execute or exceeds [`INST_CAP`].
pub fn capture_trace_snapshotted(program: &Program, name: &str, interval: u64) -> Trace {
    let trace = if compiled_capture_from_env() {
        arl_trace::capture_compiled(program, INST_CAP, interval)
    } else {
        arl_trace::capture_snapshotted(program, INST_CAP, interval)
    }
    .unwrap_or_else(|e| panic!("workload {name} failed: {e}"));
    assert!(
        trace.metrics().exited,
        "workload {name} exceeded the instruction cap"
    );
    trace
}

/// Replays a captured trace through a predictor configuration — the
/// trace-driven twin of [`evaluate_program`], with zero functional
/// re-execution. The replayed entry stream is bit-identical to live
/// execution, so the resulting [`EvalReport`] is too.
///
/// # Panics
///
/// Panics if the trace does not replay cleanly against `program`.
pub fn evaluate_trace(
    program: &Program,
    trace: &Trace,
    name: &str,
    config: EvalConfig,
) -> EvalReport {
    let mut replayer = Replayer::new(trace, program)
        .unwrap_or_else(|e| panic!("workload {name} trace rejected: {e}"));
    let mut evaluator = Evaluator::new(config);
    evaluator
        .consume(&mut replayer)
        .unwrap_or_else(|e| panic!("workload {name} replay failed: {e}"));
    EvalReport {
        stats: *evaluator.stats(),
        arpt_occupied: evaluator.arpt_occupied(),
        metrics: replayer.metrics(),
    }
}

/// Replays a captured trace through the cycle-level timing model — the
/// trace-driven twin of `TimingSim::run_program`, with zero functional
/// re-execution and bit-identical `SimStats`.
///
/// # Panics
///
/// Panics if the trace does not replay cleanly against `program`.
pub fn timing_trace(
    program: &Program,
    trace: &Trace,
    name: &str,
    config: &arl_timing::MachineConfig,
) -> arl_timing::SimStats {
    let mut replayer = Replayer::new(trace, program)
        .unwrap_or_else(|e| panic!("workload {name} trace rejected: {e}"));
    arl_timing::TimingSim::run_source(&mut replayer, config)
        .unwrap_or_else(|e| panic!("workload {name} replay failed: {e}"))
}

/// [`timing_trace`] with an attached [`arl_timing::Recorder`] collecting
/// the cycle-level observability histograms (`ARL_PROBE=1` cells). The
/// returned `SimStats` are identical to the unprobed run.
///
/// # Panics
///
/// Panics if the trace does not replay cleanly against `program`.
pub fn timing_trace_probed(
    program: &Program,
    trace: &Trace,
    name: &str,
    config: &arl_timing::MachineConfig,
) -> (arl_timing::SimStats, arl_timing::Recorder) {
    let mut replayer = Replayer::new(trace, program)
        .unwrap_or_else(|e| panic!("workload {name} trace rejected: {e}"));
    arl_timing::TimingSim::run_source_probed(&mut replayer, config, arl_timing::Recorder::new())
        .unwrap_or_else(|e| panic!("workload {name} replay failed: {e}"))
}

/// Builds the paper's two hint sources for a profiled workload: the
/// realizable Figure 6 compiler analysis and the profile-derived upper
/// bound.
pub fn hint_sources(report: &ProfileReport) -> (HintTable, HintTable) {
    (
        HintTable::from_program(&report.program),
        HintTable::from_profile(&report.profiler),
    )
}

/// Reads the run scale from `ARL_SCALE` (`"tiny"`, or an integer
/// multiplier; default 1).
pub fn scale_from_env() -> Scale {
    scale_from_value(std::env::var("ARL_SCALE").ok().as_deref())
}

/// Resolves a raw `ARL_SCALE` value: `"tiny"` selects the smoke scale, a
/// positive integer is honoured (`0` is clamped to 1 with a warning), and
/// anything unparsable warns and falls back to the default — mirroring the
/// `ARL_THREADS` handling, so a typo never silently runs at the wrong
/// scale.
pub fn scale_from_value(value: Option<&str>) -> Scale {
    let Some(v) = value else {
        return Scale::default();
    };
    let trimmed = v.trim();
    if trimmed.eq_ignore_ascii_case("tiny") {
        return Scale::tiny();
    }
    match trimmed.parse::<u32>() {
        Ok(0) => {
            eprintln!("[arl-bench] clamping ARL_SCALE=0 to 1");
            Scale::new(1)
        }
        Ok(n) => Scale::new(n),
        Err(_) => {
            eprintln!("[arl-bench] ignoring invalid ARL_SCALE={v:?}; using the default scale");
            Scale::default()
        }
    }
}

/// Formats a count in millions with one decimal (Table 1 style).
pub fn fmt_millions(n: u64) -> String {
    format!("{:.1}M", n as f64 / 1e6)
}

/// Formats a fraction as a percentage with `digits` decimals.
pub fn fmt_pct(x: f64, digits: usize) -> String {
    format!("{:.digits$}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_core::{Capacity, Context, PredictorKind};
    use arl_workloads::workload;

    #[test]
    fn profile_and_evaluate_one_workload() {
        let spec = workload("compress").unwrap();
        let report = profile_workload(spec, Scale::tiny());
        assert!(report.character.instructions > 10_000);
        assert!(report.breakdown.static_total() > 0);
        assert_eq!(report.windows.len(), 2);
        let eval = evaluate(
            spec,
            Scale::tiny(),
            EvalConfig {
                kind: PredictorKind::OneBit,
                context: Context::None,
                capacity: Capacity::Unlimited,
                hints: None,
            },
        );
        assert!(eval.stats.accuracy() > 0.95);
        assert!(eval.arpt_occupied.unwrap() > 0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_millions(1_234_567), "1.2M");
        assert_eq!(fmt_pct(0.99891, 2), "99.89%");
    }

    #[test]
    fn scale_from_value_handles_edge_cases() {
        // Explicit factors are honoured; zero clamps to 1 instead of
        // producing a degenerate scale.
        assert_eq!(scale_from_value(Some("4")).factor(), 4);
        assert_eq!(scale_from_value(Some(" 2 ")).factor(), 2);
        assert_eq!(scale_from_value(Some("0")).factor(), 1);
        // The smoke scale survives, whatever the capitalization.
        assert!(scale_from_value(Some("tiny")).is_tiny());
        assert!(scale_from_value(Some("TINY")).is_tiny());
        // Unset or invalid values fall back to the default scale — they
        // must never be silently misread as factor 1.
        let default = Scale::default();
        assert_eq!(scale_from_value(None).factor(), default.factor());
        for bad in ["", "lots", "-2", "1.5", "0x8"] {
            let scale = scale_from_value(Some(bad));
            assert_eq!(scale.factor(), default.factor(), "value {bad:?}");
            assert_eq!(scale.is_tiny(), default.is_tiny(), "value {bad:?}");
        }
    }
}
