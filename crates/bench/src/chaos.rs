//! The crash-consistency chaos campaign (`bench_chaos` binary).
//!
//! The harness proves the artifact pipeline's crash story *end to end*,
//! on real processes: it runs the supervised fault-campaign sweep
//! (`fault_campaign`) as a subprocess, SIGKILLs it at seeded durable-I/O
//! operations and replays it under seeded I/O faults (short write,
//! ENOSPC, interrupted rename — see [`arl_sink`]), then demands that
//! every perturbation is **recovered** (a crash whose resume completes)
//! or **detected** (an error the child reports loudly), never silent —
//! and that the final merged `BENCH_faults.json` is *byte-identical* to
//! an undisturbed run with **zero** functional re-execution once the
//! ledger is complete.
//!
//! Protocol per seeded point:
//!
//! 1. **Fault run** — the child executes with `ARL_IO_FAULT` aiming one
//!    planned fault at one durable op (learned from a clean calibration
//!    run's `ARL_IO_TRACE` log). A `kill` point must die by signal; the
//!    error kinds must exit non-zero. A child that sails through its
//!    planned fault is a *silent* outcome and fails the campaign.
//! 2. **Resume run** — same ledger, no faults: must exit 0 and publish
//!    output byte-identical to the undisturbed reference.
//! 3. **Compact + verify run** — the supervisor compacts the ledger
//!    in-place ([`Checkpoint::compact`]), then reruns the child, which
//!    must report `functional instructions executed: 0` — the compacted
//!    ledger alone reconstructs the entire document.
//!
//! One extra probe exercises the fingerprint guard: resuming the
//! reference ledger under a different fault plan must fail naming both
//! identities, and `ARL_CHECKPOINT_FORCE=1` must override it.
//!
//! Every field of the emitted `arl-chaos/v1` document is deterministic
//! (seeded faults, deterministic simulators, no wall-clock), so the
//! committed `BENCH_chaos.json` regenerates bit-for-bit.
//!
//! Knobs: `ARL_CHAOS_SEED` (default 42), `ARL_CHAOS_POINTS` (default
//! 20), `ARL_CHAOS_JOBS` (suite workloads per child sweep, default 3),
//! `ARL_CHAOS_CHILD` (path to the `fault_campaign` binary, default: a
//! sibling of the current executable), `ARL_CHAOS_DIR` (work directory,
//! default: under the system temp dir; kept on failure for inspection).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

use arl_faults::{parse_plan, plan_io_fault, LayerPlan};
use arl_sink::{parse_io_trace, IoOp, PlannedIoFault};
use arl_stats::{Json, TableBuilder};
use arl_workloads::suite;

use crate::knob::knob_u64;
use crate::runner::{write_named_json, Checkpoint};
use crate::{scale_from_value, ExperimentOptions};

/// `BENCH_chaos.json` schema identifier.
pub const CHAOS_SCHEMA: &str = "arl-chaos/v1";

/// The fault plan every child sweep runs under. One fault per layer
/// keeps a child run short while still exercising ledger payloads of
/// every record shape.
const CHILD_FAULT_PLAN: &str = "all:42:1";

/// Configuration for one chaos campaign.
pub struct ChaosOptions {
    /// Seed for I/O-fault planning (`ARL_CHAOS_SEED`).
    pub seed: u64,
    /// Seeded kill/fault points to run (`ARL_CHAOS_POINTS`).
    pub points: u32,
    /// Suite workloads per child sweep (`ARL_CHAOS_JOBS`).
    pub jobs: usize,
    /// Raw `ARL_SCALE` value forwarded to every child.
    pub scale: String,
    /// Path to the `fault_campaign` binary (`ARL_CHAOS_CHILD`), or
    /// `None` to use the sibling of the current executable.
    pub child: Option<PathBuf>,
    /// Work directory (`ARL_CHAOS_DIR`), or `None` for a fresh temp dir.
    pub dir: Option<PathBuf>,
}

impl ChaosOptions {
    /// Reads the `ARL_CHAOS_*` knobs and `ARL_SCALE` (default `tiny` —
    /// chaos measures robustness, not throughput).
    pub fn from_env() -> ChaosOptions {
        let env = |k: &str| std::env::var(k).ok();
        ChaosOptions {
            seed: knob_u64("ARL_CHAOS_SEED", env("ARL_CHAOS_SEED").as_deref(), 42, 0),
            points: knob_u64(
                "ARL_CHAOS_POINTS",
                env("ARL_CHAOS_POINTS").as_deref(),
                20,
                1,
            ) as u32,
            jobs: knob_u64("ARL_CHAOS_JOBS", env("ARL_CHAOS_JOBS").as_deref(), 3, 1) as usize,
            scale: env("ARL_SCALE").unwrap_or_else(|| "tiny".to_string()),
            child: std::env::var_os("ARL_CHAOS_CHILD").map(PathBuf::from),
            dir: std::env::var_os("ARL_CHAOS_DIR").map(PathBuf::from),
        }
    }
}

/// A finished chaos campaign: rendered text, the `arl-chaos/v1`
/// document, and whether anything demands a non-zero exit.
pub struct ChaosRun {
    /// The exact bytes the binary prints to stdout.
    pub text: String,
    /// The `BENCH_chaos.json` payload.
    pub doc: Json,
    /// True on any silent/fatal outcome, divergent merge, or guard miss.
    pub failed: bool,
}

/// How one child invocation ended.
struct ChildRun {
    /// `Some(code)` for a normal exit, `None` for death by signal.
    code: Option<i32>,
    stderr: String,
}

impl ChildRun {
    fn label(&self) -> String {
        match self.code {
            Some(code) => format!("exit:{code}"),
            None => "signal".to_string(),
        }
    }
}

/// One per-point work item, resolved against the calibrated op list.
struct PointPlan {
    fault: PlannedIoFault,
    file: String,
}

fn run_child(
    exe: &Path,
    dir: &Path,
    opts: &ChaosOptions,
    extra: &[(&str, String)],
) -> std::io::Result<ChildRun> {
    let mut cmd = Command::new(exe);
    // Children must see exactly the chaos configuration — ambient ARL_*
    // knobs (a user's ARL_BACKEND, a CI ARL_JSON) would silently change
    // what the campaign measures.
    for (key, _) in std::env::vars_os() {
        if key.to_string_lossy().starts_with("ARL_") {
            cmd.env_remove(key);
        }
    }
    cmd.env("ARL_SCALE", &opts.scale)
        .env("ARL_THREADS", "1") // deterministic durable-op order
        .env("ARL_FAULT", CHILD_FAULT_PLAN)
        .env("ARL_MAX_JOBS", opts.jobs.to_string())
        .env("ARL_JSON", dir)
        .env("ARL_CHECKPOINT", dir.join("ledger.ckpt"));
    for (key, value) in extra {
        cmd.env(key, value);
    }
    let output = cmd.output()?;
    Ok(ChildRun {
        code: output.status.code(),
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    })
}

fn functional_instructions(stderr: &str) -> Option<u64> {
    stderr.lines().find_map(|line| {
        line.strip_prefix("[arl-bench] functional instructions executed: ")?
            .trim()
            .parse()
            .ok()
    })
}

/// The campaign identity the child runs under (for parent-side ledger
/// compaction and the fingerprint-guard probe).
fn child_identity(opts: &ChaosOptions, plan: &str) -> std::io::Result<crate::RunIdentity> {
    let plans: Vec<LayerPlan> = parse_plan(plan)
        .map_err(|e| std::io::Error::other(format!("bad chaos child plan {plan:?}: {e}")))?;
    let scale = scale_from_value(Some(&opts.scale));
    Ok(crate::campaign_identity(
        &ExperimentOptions::new(scale, 1),
        &plans,
    ))
}

fn locate_child(opts: &ChaosOptions) -> std::io::Result<PathBuf> {
    if let Some(child) = &opts.child {
        return Ok(child.clone());
    }
    let exe = std::env::current_exe()?;
    let sibling = exe
        .parent()
        .map(|d| d.join("fault_campaign"))
        .filter(|p| p.exists());
    sibling.ok_or_else(|| {
        std::io::Error::other(
            "cannot locate the fault_campaign binary next to bench_chaos; \
             set ARL_CHAOS_CHILD to its path",
        )
    })
}

fn survivors(ledger: &Path) -> usize {
    Checkpoint::inspect(ledger).map(|v| v.live()).unwrap_or(0)
}

/// Runs the chaos campaign (see module docs).
///
/// # Errors
///
/// Infrastructure failures only — a missing child binary, an unwritable
/// work directory, a reference run that will not complete cleanly.
/// *Fault* failures (silent outcomes, divergent merges) are reported in
/// the returned [`ChaosRun::failed`], not as errors.
pub fn chaos_campaign(opts: &ChaosOptions) -> std::io::Result<ChaosRun> {
    let exe = locate_child(opts)?;
    let root = opts
        .dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("arl-chaos-{}", std::process::id())));
    std::fs::create_dir_all(&root)?;

    // Reference: one undisturbed sweep, with the durable-op sequence
    // logged for fault planning.
    let ref_dir = root.join("ref");
    std::fs::create_dir_all(&ref_dir)?;
    let io_log = ref_dir.join("io.log");
    let reference = run_child(
        &exe,
        &ref_dir,
        opts,
        &[("ARL_IO_TRACE", io_log.display().to_string())],
    )?;
    if reference.code != Some(0) {
        return Err(std::io::Error::other(format!(
            "reference run failed ({}):\n{}",
            reference.label(),
            reference.stderr
        )));
    }
    let reference_json = std::fs::read(ref_dir.join("BENCH_faults.json"))?;
    let ops: Vec<IoOp> = parse_io_trace(&std::fs::read_to_string(&io_log)?);
    if ops.is_empty() {
        return Err(std::io::Error::other(
            "calibration logged no durable operations; cannot plan faults",
        ));
    }
    let identity = child_identity(opts, CHILD_FAULT_PLAN)?;

    let mut records: Vec<Json> = Vec::new();
    let mut totals = [0u64; 4]; // recovered, detected, silent, fatal
    let mut all_identical = true;
    let mut table = TableBuilder::new(&[
        "Point",
        "Fault",
        "Target",
        "Child",
        "Live",
        "Rerun",
        "Identical",
        "Outcome",
    ]);

    for index in 0..opts.points {
        let plan = plan_io_fault(opts.seed, index, &ops).map(|fault| PointPlan {
            file: ops
                .iter()
                .find(|o| o.op == fault.op)
                .map(|o| o.file.clone())
                .unwrap_or_default(),
            fault,
        });
        let Some(point) = plan else {
            // Unreachable with a real op list (every kind has a host op);
            // a plan gap would mean the campaign tested less than
            // promised, so it fails loudly rather than skipping quietly.
            totals[3] += 1;
            records.push(Json::obj([
                ("point", Json::from(u64::from(index))),
                ("outcome", Json::from("fatal")),
                ("detail", Json::from("no plannable operation")),
            ]));
            continue;
        };
        let dir = root.join(format!("p{index:02}"));
        std::fs::create_dir_all(&dir)?;
        let ledger = dir.join("ledger.ckpt");
        let spec = point.fault.to_spec();
        let kind = point.fault.kind_label();

        // 1. Fault run.
        let faulted = run_child(&exe, &dir, opts, &[("ARL_IO_FAULT", spec.clone())])?;
        let crash_expected = kind == "kill";
        let perturbed = if crash_expected {
            faulted.code.is_none()
        } else {
            matches!(faulted.code, Some(c) if c != 0)
        };
        let live = survivors(&ledger);

        // 2. Resume run (no faults).
        let resumed = run_child(&exe, &dir, opts, &[])?;
        let resume_ok = resumed.code == Some(0);
        let merged = std::fs::read(dir.join("BENCH_faults.json")).unwrap_or_default();
        let identical = merged == reference_json;

        // 3. Compact the ledger in the supervisor, then verify the
        // child reconstructs everything from it without re-executing.
        let compacted = Checkpoint::open(&ledger, &identity, false)
            .and_then(|mut c| c.compact())
            .is_ok();
        let verified = run_child(&exe, &dir, opts, &[])?;
        let re_executed = functional_instructions(&verified.stderr);
        let verify_ok = verified.code == Some(0) && re_executed == Some(0);
        let still_identical = std::fs::read(dir.join("BENCH_faults.json"))
            .map(|bytes| bytes == reference_json)
            .unwrap_or(false);

        let outcome = if !perturbed {
            "silent" // the planned fault left no trace at all
        } else if !(resume_ok && identical && compacted && verify_ok && still_identical) {
            "fatal" // the fault landed but recovery broke
        } else if crash_expected {
            "recovered"
        } else {
            "detected"
        };
        match outcome {
            "recovered" => totals[0] += 1,
            "detected" => totals[1] += 1,
            "silent" => totals[2] += 1,
            _ => totals[3] += 1,
        }
        all_identical &= identical && still_identical;

        table.row(&[
            format!("{index}"),
            spec.clone(),
            point.file.clone(),
            faulted.label(),
            format!("{live}"),
            format!("{}", opts.jobs.saturating_sub(live)),
            format!("{}", identical && still_identical),
            outcome.to_string(),
        ]);
        records.push(Json::obj([
            ("point", Json::from(u64::from(index))),
            ("fault", Json::from(spec.as_str())),
            ("kind", Json::from(kind)),
            ("file", Json::from(point.file.as_str())),
            ("child", Json::from(faulted.label())),
            ("survivors", Json::from(live)),
            (
                "reexecuted_jobs",
                Json::from(opts.jobs.saturating_sub(live)),
            ),
            ("resume_identical", Json::from(identical)),
            ("compacted", Json::from(compacted)),
            (
                "verify_reexecution",
                re_executed.map_or(Json::Null, Json::from),
            ),
            ("outcome", Json::from(outcome)),
        ]));
    }

    // Fingerprint guard probe: the reference ledger under a different
    // fault plan must be refused with both identities named, and the
    // force knob must override.
    let guard_plan = "all:43:1";
    let guard_dir = root.join("guard");
    std::fs::create_dir_all(&guard_dir)?;
    std::fs::copy(ref_dir.join("ledger.ckpt"), guard_dir.join("ledger.ckpt"))?;
    let refused = run_child(
        &exe,
        &guard_dir,
        opts,
        &[("ARL_FAULT", guard_plan.to_string())],
    )?;
    let theirs = identity.render();
    let ours = child_identity(opts, guard_plan)?.render();
    let guard_refused = refused.code == Some(2);
    let guard_names_both = refused.stderr.contains(&theirs) && refused.stderr.contains(&ours);
    let forced = run_child(
        &exe,
        &guard_dir,
        opts,
        &[
            ("ARL_FAULT", guard_plan.to_string()),
            ("ARL_CHECKPOINT_FORCE", "1".to_string()),
        ],
    )?;
    let guard_force_ok = forced.code == Some(0);
    let guard_ok = guard_refused && guard_names_both && guard_force_ok;

    let silent = totals[2];
    let fatal = totals[3];
    let failed = silent > 0 || fatal > 0 || !all_identical || !guard_ok;

    let mut text = String::new();
    let _ = writeln!(
        text,
        "Chaos campaign: {} seeded I/O fault point(s), seed {}, {} workload job(s) per sweep, \
         scale {}",
        opts.points, opts.seed, opts.jobs, opts.scale
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "Totals: recovered={} detected={} silent={silent} fatal={fatal} — merged output {}",
        totals[0],
        totals[1],
        if all_identical {
            "byte-identical to the undisturbed run"
        } else {
            "DIVERGED"
        }
    );
    let _ = writeln!(
        text,
        "Fingerprint guard: refused={guard_refused} names_both={guard_names_both} \
         force_override={guard_force_ok}"
    );

    let workloads = {
        let mut specs = suite();
        specs.truncate(opts.jobs);
        specs.iter().map(|s| Json::from(s.name)).collect::<Vec<_>>()
    };
    let doc = Json::obj([
        ("schema", Json::from(CHAOS_SCHEMA)),
        ("experiment", Json::from("chaos")),
        ("seed", Json::from(opts.seed)),
        ("points", Json::from(u64::from(opts.points))),
        ("scale", Json::from(opts.scale.as_str())),
        ("plan", Json::from(CHILD_FAULT_PLAN)),
        ("workloads", Json::Arr(workloads)),
        ("records", Json::Arr(records)),
        (
            "totals",
            Json::obj([
                ("recovered", Json::from(totals[0])),
                ("detected", Json::from(totals[1])),
                ("silent", Json::from(silent)),
                ("fatal", Json::from(fatal)),
            ]),
        ),
        ("all_identical", Json::from(all_identical)),
        (
            "identity_guard",
            Json::obj([
                ("refused", Json::from(guard_refused)),
                ("names_both", Json::from(guard_names_both)),
                ("force_override", Json::from(guard_force_ok)),
            ]),
        ),
    ]);

    if failed {
        eprintln!(
            "[arl-bench] chaos campaign FAILED; work directory kept at {}",
            root.display()
        );
    } else if opts.dir.is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(ChaosRun { text, doc, failed })
}

/// The `bench_chaos` binary's `main`: reads the `ARL_CHAOS_*` knobs,
/// runs the campaign, prints the table, writes `BENCH_chaos.json` when
/// `ARL_JSON` is set, and exits non-zero on any silent/fatal outcome,
/// divergent merge, or fingerprint-guard miss.
pub fn run_chaos_main() {
    let opts = ChaosOptions::from_env();
    let run = match chaos_campaign(&opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("[arl-bench] chaos campaign could not run: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", run.text);
    if std::env::var_os("ARL_JSON").is_some() {
        match write_named_json("BENCH_chaos.json", &run.doc) {
            Ok(path) => eprintln!("[arl-bench] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[arl-bench] failed to write ARL_JSON: {e}");
                std::process::exit(1);
            }
        }
    }
    if run.failed {
        eprintln!("[arl-bench] chaos campaign FAILED (silent/fatal outcomes or guard miss above)");
        std::process::exit(1);
    }
}
