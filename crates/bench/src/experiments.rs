//! One entry point per table/figure binary, shared between the thin
//! `src/bin/*` wrappers and the integration tests.
//!
//! Each experiment builds its (workload × config) cell list, fans the
//! cells out over a [`Pool`], and folds the results back in cell order, so
//! its rendered [`ExperimentRun::text`] is byte-identical for any thread
//! count. Alongside the text, every cell contributes a [`RunRecord`] to
//! the experiment's [`SuiteReport`] for `BENCH_*.json` emission.

use std::fmt::Write as _;
use std::time::Instant;

use arl_asm::Program;
use arl_core::{Capacity, Context, EvalConfig, HintTable, PredictorKind, Source};
use arl_mem::{Region, RegionSet};
use arl_sim::RegionProfiler;
use arl_stats::{BarChart, Json, TableBuilder};
use arl_timing::{
    BackendConfig, CacheConfig, MachineConfig, Recorder, RecoveryMode, SimStats, StallCause,
    TimingSim,
};
use arl_trace::Trace;
use arl_workloads::{suite, workload, Scale, WorkloadSpec};

use crate::runner::{
    dedupe_failures, timed_record, write_probe_json, Pool, RunRecord, SuiteFailures, SuiteReport,
    PROBE_SCHEMA,
};
use crate::{
    capture_trace, capture_trace_snapshotted, capture_trace_with, evaluate_program, evaluate_trace,
    fmt_millions, fmt_pct, profile_workload, scale_from_env, timing_trace, timing_trace_probed,
    EvalReport, ProfileReport,
};

/// How experiments obtain each workload's dynamic instruction stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceMode {
    /// Execute each workload functionally exactly once, capturing its
    /// trace, and fan the config sweep out over replays (the default:
    /// the worker pool then scales with configs instead of re-execution).
    Replay,
    /// Re-execute the functional simulation for every (workload × config)
    /// cell — the pre-trace harness, kept for cross-checking.
    Live,
}

impl TraceMode {
    /// Resolves a raw `ARL_TRACE` value: `"live"`, `"off"` or `"0"`
    /// select [`TraceMode::Live`]; anything else — including unset —
    /// selects [`TraceMode::Replay`].
    pub fn from_value(value: Option<&str>) -> TraceMode {
        match value {
            Some(v)
                if v.eq_ignore_ascii_case("live")
                    || v.eq_ignore_ascii_case("off")
                    || v.trim() == "0" =>
            {
                TraceMode::Live
            }
            _ => TraceMode::Replay,
        }
    }

    /// Reads `ARL_TRACE`.
    pub fn from_env() -> TraceMode {
        TraceMode::from_value(std::env::var("ARL_TRACE").ok().as_deref())
    }
}

/// Scale, parallelism, trace mode, and probing for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentOptions {
    /// Workload iteration scale.
    pub scale: Scale,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Execute-once/replay-many (default) or live re-execution.
    pub trace: TraceMode,
    /// Attach a cycle-level [`Recorder`] to every timing cell and emit the
    /// `BENCH_<experiment>_probe.json` document (`ARL_PROBE=1`). Rendered
    /// tables and `SimStats` are byte-identical either way.
    pub probe: bool,
    /// Shard jobs per timing replay cell (`ARL_SHARD`; default 1 =
    /// unsharded). With more than one, captures embed snapshot records and
    /// every timing replay runs as a chain of shard segments — rendered
    /// tables and `SimStats` are byte-identical either way.
    pub shards: usize,
    /// Capture-time snapshot cadence in instructions
    /// (`ARL_SNAPSHOT_INTERVAL`), used only when `shards > 1`.
    pub snapshot_interval: u64,
    /// Memory backend applied to every timing config (`ARL_BACKEND`;
    /// default [`BackendConfig::Baseline`], which leaves configs — and
    /// therefore all tables and goldens — untouched). Non-baseline
    /// backends tag config names with `@<label>`.
    pub backend: BackendConfig,
}

impl ExperimentOptions {
    /// Explicit options (tests drive serial-vs-parallel comparisons with
    /// this). Uses the default [`TraceMode::Replay`], probing off.
    pub fn new(scale: Scale, threads: usize) -> ExperimentOptions {
        ExperimentOptions {
            scale,
            threads: threads.max(1),
            trace: TraceMode::Replay,
            probe: false,
            shards: 1,
            snapshot_interval: crate::shard::DEFAULT_SNAPSHOT_INTERVAL,
            backend: BackendConfig::Baseline,
        }
    }

    /// Overrides the trace mode (tests drive live-vs-replay differential
    /// comparisons with this).
    pub fn with_trace(mut self, trace: TraceMode) -> ExperimentOptions {
        self.trace = trace;
        self
    }

    /// Overrides probing (tests drive probed-vs-unprobed differential
    /// comparisons with this).
    pub fn with_probe(mut self, probe: bool) -> ExperimentOptions {
        self.probe = probe;
        self
    }

    /// Overrides sharding (tests drive sharded-vs-serial differential
    /// comparisons with this). `interval` is the capture-time snapshot
    /// cadence in instructions.
    pub fn with_shards(mut self, shards: usize, interval: u64) -> ExperimentOptions {
        self.shards = shards.max(1);
        self.snapshot_interval = interval;
        self
    }

    /// Overrides the memory backend (tests drive per-backend differential
    /// comparisons with this).
    pub fn with_backend(mut self, backend: BackendConfig) -> ExperimentOptions {
        self.backend = backend;
        self
    }

    /// Resolves a raw `ARL_PROBE` value: unset, empty, `"0"`, `"false"`,
    /// or `"off"` leave probing disabled; anything else enables it.
    pub fn probe_from_value(value: Option<&str>) -> bool {
        match value {
            None => false,
            Some(v) => {
                let v = v.trim();
                !(v.is_empty()
                    || v == "0"
                    || v.eq_ignore_ascii_case("false")
                    || v.eq_ignore_ascii_case("off"))
            }
        }
    }

    /// Reads `ARL_SCALE`, `ARL_THREADS`, `ARL_TRACE`, `ARL_PROBE`,
    /// `ARL_SHARD`, `ARL_SNAPSHOT_INTERVAL`, and `ARL_BACKEND`.
    pub fn from_env() -> ExperimentOptions {
        ExperimentOptions {
            scale: scale_from_env(),
            threads: Pool::from_env().threads(),
            trace: TraceMode::from_env(),
            probe: Self::probe_from_value(std::env::var("ARL_PROBE").ok().as_deref()),
            shards: crate::shard::shard_from_env(),
            snapshot_interval: crate::shard::snapshot_interval_from_env(),
            backend: crate::knob::backend_from_env(),
        }
    }

    fn pool(&self) -> Pool {
        Pool::new(self.threads)
    }
}

/// A finished experiment: rendered text plus structured records.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// The exact bytes the binary prints to stdout.
    pub text: String,
    /// Structured per-cell records (the `BENCH_*.json` payload).
    pub report: SuiteReport,
    /// The `BENCH_*_probe.json` document, when the run was probed.
    pub probe: Option<Json>,
}

/// Runs an experiment with env-derived options, prints its text, and
/// honours `ARL_JSON` and `ARL_PROBE`. The shared `main` of every bench
/// binary.
///
/// Failed jobs never abort the suite silently: a [`SuiteFailures`] panic
/// from the pool (every surviving cell already ran) and any error records
/// the experiment collected itself both end in a one-line-per-job stderr
/// summary and a non-zero exit.
pub fn run_main(experiment: impl FnOnce(&ExperimentOptions) -> ExperimentRun) {
    let opts = ExperimentOptions::from_env();
    let run = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| experiment(&opts))) {
        Ok(run) => run,
        Err(payload) => match payload.downcast::<SuiteFailures>() {
            Ok(failures) => {
                let mut failures = failures.0;
                dedupe_failures(&mut failures);
                for failure in &failures {
                    eprintln!("[arl-bench] {}", failure.summary());
                }
                eprintln!(
                    "[arl-bench] {} job(s) failed; no output written",
                    failures.len()
                );
                std::process::exit(1);
            }
            Err(payload) => std::panic::resume_unwind(payload),
        },
    };
    print!("{}", run.text);
    match run.report.emit_from_env() {
        Ok(Some(path)) => eprintln!("[arl-bench] wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("[arl-bench] failed to write ARL_JSON: {e}");
            std::process::exit(1);
        }
    }
    if let Some(doc) = &run.probe {
        match write_probe_json(&run.report.experiment, doc) {
            Ok(path) => eprintln!("[arl-bench] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[arl-bench] failed to write ARL_PROBE document: {e}");
                std::process::exit(1);
            }
        }
    }
    if !run.report.errors.is_empty() {
        // One stderr line per job id, even when an experiment collected a
        // record per attempt (the JSON keeps the full per-attempt array).
        let mut errors = run.report.errors.clone();
        dedupe_failures(&mut errors);
        for failure in &errors {
            eprintln!("[arl-bench] {}", failure.summary());
        }
        eprintln!(
            "[arl-bench] {} job(s) failed; see the errors array in the JSON output",
            errors.len()
        );
        std::process::exit(1);
    }
}

/// One probed timing cell, in cell order: which (workload × config) pair
/// the attached [`Recorder`] watched.
struct ProbeCell {
    workload: String,
    config: String,
    recorder: Recorder,
}

impl ProbeCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::from(self.workload.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("probe", self.recorder.to_json()),
        ])
    }
}

fn finish(
    name: &str,
    opts: &ExperimentOptions,
    records: Vec<RunRecord>,
    text: String,
    start: Instant,
    probe_cells: Vec<ProbeCell>,
) -> ExperimentRun {
    let mut report = SuiteReport::new(name, opts.scale, opts.threads);
    report.records = records;
    report.wall_seconds = start.elapsed().as_secs_f64();
    // Experiments without timing cells still emit a (cell-less) document
    // under `ARL_PROBE=1`, so every binary honours the flag uniformly.
    let probe = opts.probe.then(|| {
        Json::obj([
            ("schema", Json::from(PROBE_SCHEMA)),
            ("experiment", Json::from(name)),
            ("scale", Json::from(report.scale.as_str())),
            ("threads", Json::from(opts.threads)),
            (
                "cells",
                Json::Arr(probe_cells.iter().map(ProbeCell::to_json).collect()),
            ),
        ])
    });
    ExperimentRun {
        text,
        report,
        probe,
    }
}

/// Profiles the whole suite in parallel; the backbone of the Section 3
/// experiments (Table 1/2, Figure 2).
fn profile_cells(opts: &ExperimentOptions) -> (Vec<ProfileReport>, Vec<RunRecord>) {
    let results = opts.pool().map(suite(), |_i, spec| {
        timed_record(spec.name, "profile", |record| {
            let report = profile_workload(spec, opts.scale);
            record.instructions = report.character.instructions;
            record.peak_rss_bytes = report.metrics.peak_rss_bytes;
            report
        })
    });
    results.into_iter().unzip()
}

fn eval_record(record: &mut RunRecord, report: &EvalReport) {
    record.instructions = report.metrics.instructions;
    record.peak_rss_bytes = report.metrics.peak_rss_bytes;
    record.accuracy = Some(report.stats.accuracy());
}

fn timing_record(record: &mut RunRecord, stats: &SimStats) {
    record.instructions = stats.instructions;
    record.cycles = Some(stats.cycles);
    record.ipc = Some(stats.ipc());
    record.accuracy = (stats.region_checks > 0).then(|| stats.region_accuracy());
    record.peak_rss_bytes = stats.peak_rss_bytes;
}

/// One workload captured for replay: the built program plus its recorded
/// dynamic trace.
struct Captured {
    spec: WorkloadSpec,
    program: Program,
    trace: Trace,
}

/// Executes every suite workload functionally exactly once (in parallel),
/// capturing its trace. The per-workload `"capture"` records lead the
/// experiment's record list; subsequent sweep cells are pure replays.
fn capture_suite(opts: &ExperimentOptions) -> (Vec<Captured>, Vec<RunRecord>) {
    let results = opts.pool().map(suite(), |_i, spec| {
        timed_record(spec.name, "capture", |record| {
            record.phase = "capture".into();
            let program = spec.build(opts.scale);
            // Sharded replays resume at snapshot boundaries, so the
            // capture must embed them; unsharded runs keep the
            // byte-identical snapshot-free container.
            let trace = if opts.shards > 1 {
                capture_trace_snapshotted(&program, spec.name, opts.snapshot_interval)
            } else {
                capture_trace(&program, spec.name)
            };
            record.instructions = trace.metrics().instructions;
            record.peak_rss_bytes = trace.metrics().peak_rss_bytes;
            Captured {
                spec,
                program,
                trace,
            }
        })
    });
    results.into_iter().unzip()
}

/// Regroups a flat `(value, record)` cell list (workload-major, `per`
/// cells each) into per-workload rows, appending the records in cell
/// order.
fn group_cells<T>(
    results: Vec<(T, RunRecord)>,
    per: usize,
    records: &mut Vec<RunRecord>,
) -> Vec<Vec<T>> {
    let mut grouped: Vec<Vec<T>> = Vec::with_capacity(results.len() / per.max(1) + 1);
    for (i, (value, record)) in results.into_iter().enumerate() {
        if i % per == 0 {
            grouped.push(Vec::with_capacity(per));
        }
        grouped.last_mut().expect("chunk started").push(value);
        records.push(record);
    }
    grouped
}

/// Runs one timing cell, attaching a [`Recorder`] when `probe` is set.
/// `trace` selects replay (Some) vs live execution (None); with
/// `shards > 1` a replay cell runs as a chain of snapshot-bounded shard
/// segments. The stats are bit-identical across all combinations.
fn run_timing(
    probe: bool,
    shards: usize,
    program: &Program,
    trace: Option<&Trace>,
    name: &str,
    config: &MachineConfig,
) -> (SimStats, Option<Recorder>) {
    if shards > 1 {
        if let Some(trace) = trace {
            let run = crate::shard::replay_sharded(program, trace, name, config, shards, probe);
            return (run.stats, run.recorder);
        }
    }
    match (probe, trace) {
        (false, Some(trace)) => (timing_trace(program, trace, name, config), None),
        (true, Some(trace)) => {
            let (stats, rec) = timing_trace_probed(program, trace, name, config);
            (stats, Some(rec))
        }
        (false, None) => (TimingSim::run_program(program, config), None),
        (true, None) => {
            let (stats, rec) = TimingSim::run_program_probed(program, config, Recorder::new());
            (stats, Some(rec))
        }
    }
}

/// Runs every (workload × config) timing cell in parallel; the backbone
/// of Figure 8 and the timing ablations. Results come back grouped by
/// workload, configs in the given order, with one [`ProbeCell`] per cell
/// (in cell order) when `opts.probe` is set.
///
/// In [`TraceMode::Replay`] each workload executes functionally once (a
/// `"capture"` cell) and every config cell replays the trace; in
/// [`TraceMode::Live`] every cell re-executes functionally. Both modes
/// produce bit-identical [`SimStats`].
fn timing_cells(
    opts: &ExperimentOptions,
    configs: &[MachineConfig],
) -> (Vec<Vec<SimStats>>, Vec<RunRecord>, Vec<ProbeCell>) {
    // `ARL_BACKEND` swaps the memory backend under every swept config; the
    // default baseline application is a no-op (names and stats untouched).
    let configs: Vec<MachineConfig> = configs
        .iter()
        .map(|c| c.clone().with_backend(opts.backend))
        .collect();
    let configs = configs.as_slice();
    let mut records = Vec::new();
    let results = match opts.trace {
        TraceMode::Replay => {
            let (captured, capture_records) = capture_suite(opts);
            records = capture_records;
            let cells: Vec<(usize, MachineConfig)> = (0..captured.len())
                .flat_map(|wi| configs.iter().map(move |c| (wi, c.clone())))
                .collect();
            opts.pool().map(cells, |_i, (wi, config)| {
                let cap = &captured[wi];
                timed_record(cap.spec.name, &config.name, |record| {
                    record.phase = "replay".into();
                    let (stats, rec) = run_timing(
                        opts.probe,
                        opts.shards,
                        &cap.program,
                        Some(&cap.trace),
                        cap.spec.name,
                        &config,
                    );
                    timing_record(record, &stats);
                    (
                        stats,
                        rec.map(|recorder| ProbeCell {
                            workload: cap.spec.name.to_string(),
                            config: config.name.clone(),
                            recorder,
                        }),
                    )
                })
            })
        }
        TraceMode::Live => {
            let cells: Vec<(WorkloadSpec, MachineConfig)> = suite()
                .iter()
                .flat_map(|spec| configs.iter().map(move |c| (*spec, c.clone())))
                .collect();
            opts.pool().map(cells, |_i, (spec, config)| {
                timed_record(spec.name, &config.name, |record| {
                    let program = spec.build(opts.scale);
                    let (stats, rec) =
                        run_timing(opts.probe, 1, &program, None, spec.name, &config);
                    timing_record(record, &stats);
                    (
                        stats,
                        rec.map(|recorder| ProbeCell {
                            workload: spec.name.to_string(),
                            config: config.name.clone(),
                            recorder,
                        }),
                    )
                })
            })
        }
    };
    let mut probe_cells = Vec::new();
    let results: Vec<(SimStats, RunRecord)> = results
        .into_iter()
        .map(|((stats, cell), record)| {
            probe_cells.extend(cell);
            (stats, record)
        })
        .collect();
    let grouped = group_cells(results, configs.len(), &mut records);
    (grouped, records, probe_cells)
}

/// Runs every (workload × scheme) prediction-evaluation cell in parallel;
/// the backbone of Figure 4, Table 3 and the 2-bit ablation. Results come
/// back grouped by workload, schemes in the given order.
///
/// Same capture-once/replay-many split as [`timing_cells`]; both modes
/// produce bit-identical [`EvalReport`]s.
fn eval_cells(
    opts: &ExperimentOptions,
    schemes: &[(&str, EvalConfig)],
) -> (Vec<Vec<EvalReport>>, Vec<RunRecord>) {
    let mut records = Vec::new();
    let results = match opts.trace {
        TraceMode::Replay => {
            let (captured, capture_records) = capture_suite(opts);
            records = capture_records;
            let cells: Vec<(usize, usize)> = (0..captured.len())
                .flat_map(|wi| (0..schemes.len()).map(move |si| (wi, si)))
                .collect();
            opts.pool().map(cells, |_i, (wi, si)| {
                let cap = &captured[wi];
                let (label, config) = &schemes[si];
                timed_record(cap.spec.name, label, |record| {
                    record.phase = "replay".into();
                    let report =
                        evaluate_trace(&cap.program, &cap.trace, cap.spec.name, config.clone());
                    eval_record(record, &report);
                    report
                })
            })
        }
        TraceMode::Live => {
            let cells: Vec<(WorkloadSpec, usize)> = suite()
                .iter()
                .flat_map(|spec| (0..schemes.len()).map(move |si| (*spec, si)))
                .collect();
            opts.pool().map(cells, |_i, (spec, si)| {
                let (label, config) = &schemes[si];
                timed_record(spec.name, label, |record| {
                    let program = spec.build(opts.scale);
                    let report = evaluate_program(&program, spec.name, config.clone());
                    eval_record(record, &report);
                    report
                })
            })
        }
    };
    let grouped = group_cells(results, schemes.len(), &mut records);
    (grouped, records)
}

/// **Table 1**: per-benchmark dynamic instruction count and load/store
/// percentages.
pub fn table1(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let (reports, records) = profile_cells(opts);
    let mut table = TableBuilder::new(&["Benchmark", "Inst. count", "Loads %", "Stores %", "Refs"]);
    for report in &reports {
        let c = &report.character;
        table.row(&[
            report.spec.spec_name.to_string(),
            fmt_millions(c.instructions),
            format!("{:.0}", c.load_pct()),
            format!("{:.0}", c.store_pct()),
            fmt_millions(c.references()),
        ]);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 1: workload characterization (synthetic SPEC95 analogs)"
    );
    let _ = writeln!(text, "{}", table.render());
    finish("table1", opts, records, text, start, Vec::new())
}

/// **Table 2**: per-region access counts in 32/64-instruction windows.
pub fn table2(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let (reports, records) = profile_cells(opts);
    let mut table = TableBuilder::new(&[
        "Benchmark",
        "W32 Data",
        "W32 Heap",
        "W32 Stack",
        "W64 Data",
        "W64 Heap",
        "W64 Stack",
    ]);
    let mut avg = [[0.0f64; 3]; 2];
    for report in &reports {
        let mut row = vec![report.spec.spec_name.to_string()];
        for (wi, w) in report.windows.iter().enumerate() {
            for (ri, region) in Region::DATA_REGIONS.iter().enumerate() {
                row.push(format!("{:.2} ({:.2})", w.mean(*region), w.stddev(*region)));
                avg[wi][ri] += w.mean(*region);
            }
        }
        table.row(&row);
    }
    let n = reports.len() as f64;
    let mut avg_row = vec!["Average".to_string()];
    for w in &avg {
        for v in w {
            avg_row.push(format!("{:.2}", v / n));
        }
    }
    table.row(&avg_row);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 2: mean (stddev) of per-region accesses in 32/64-instruction windows"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "Strictly bursty regions (mean < stddev) and idle-window fractions, window 32:"
    );
    for report in &reports {
        let w = &report.windows[0];
        let bursty: Vec<&str> = Region::DATA_REGIONS
            .iter()
            .filter(|&&r| w.mean(r) > 0.01 && w.is_strictly_bursty(r))
            .map(|r| r.letter())
            .collect();
        let idle: Vec<String> = Region::DATA_REGIONS
            .iter()
            .map(|&r| format!("{}:{:.0}%", r.letter(), 100.0 * w.idle_fraction(r)))
            .collect();
        let _ = writeln!(
            text,
            "  {:<12} bursty[{}]  idle windows {}",
            report.spec.spec_name,
            bursty.join(","),
            idle.join(" ")
        );
    }
    finish("table2", opts, records, text, start, Vec::new())
}

/// **Figure 2**: static memory instructions by accessed-region class.
pub fn figure2(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let (reports, records) = profile_cells(opts);
    let mut header: Vec<String> = vec!["Benchmark".into(), "Static".into()];
    header.extend(RegionSet::CLASS_LABELS.iter().map(|l| format!("{l} %")));
    header.push("Multi(dyn) %".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    let mut sum_multi_static = [0.0f64; 2];
    let mut counts = [0u32; 2];
    for report in &reports {
        let b = &report.breakdown;
        let total = b.static_total();
        let mut row = vec![report.spec.spec_name.to_string(), total.to_string()];
        for (i, _) in RegionSet::CLASS_LABELS.iter().enumerate() {
            row.push(format!(
                "{:.1}",
                100.0 * b.static_counts[i] as f64 / total.max(1) as f64
            ));
        }
        row.push(fmt_pct(b.dynamic_multi_region_fraction(), 2));
        table.row(&row);
        let idx = report.spec.is_fp as usize;
        sum_multi_static[idx] += b.static_multi_region_fraction();
        counts[idx] += 1;
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 2: static memory instructions by accessed-region class"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "Average static multi-region fraction: integer {} | floating-point {}",
        fmt_pct(sum_multi_static[0] / counts[0].max(1) as f64, 2),
        fmt_pct(sum_multi_static[1] / counts[1].max(1) as f64, 2),
    );
    let avg_stack: f64 = reports
        .iter()
        .map(|r| r.breakdown.static_fraction("S"))
        .sum::<f64>()
        / reports.len() as f64;
    let _ = writeln!(
        text,
        "Average stack-only share of static instructions: {}",
        fmt_pct(avg_stack, 1)
    );
    finish("figure2", opts, records, text, start, Vec::new())
}

/// **Figure 4**: classification accuracy of the five schemes over an
/// unlimited ARPT.
pub fn figure4(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let schemes = EvalConfig::figure4_schemes();
    let specs = suite();
    let (grouped, records) = eval_cells(opts, &schemes);
    let mut header: Vec<&str> = vec!["Benchmark", "Static-cover %"];
    header.extend(schemes.iter().map(|(n, _)| *n));
    let mut table = TableBuilder::new(&header);
    let mut sums = vec![[0.0f64; 2]; schemes.len()];
    let mut counts = [0u32; 2];
    for (spec, reports) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        let mut static_cover = String::new();
        for (si, report) in reports.iter().enumerate() {
            if si == 0 {
                static_cover = fmt_pct(report.stats.coverage(Source::Static), 1);
            }
            row.push(fmt_pct(report.stats.accuracy(), 2));
            sums[si][spec.is_fp as usize] += report.stats.accuracy();
        }
        row.insert(1, static_cover);
        table.row(&row);
        counts[spec.is_fp as usize] += 1;
    }
    let mut int_row = vec!["Int avg".to_string(), String::new()];
    let mut fp_row = vec!["FP avg".to_string(), String::new()];
    for s in &sums {
        int_row.push(fmt_pct(s[0] / counts[0] as f64, 2));
        fp_row.push(fmt_pct(s[1] / counts[1] as f64, 2));
    }
    table.row(&int_row);
    table.row(&fp_row);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 4: dynamic classification accuracy (unlimited ARPT)"
    );
    let _ = writeln!(text, "{}", table.render());
    finish("figure4", opts, records, text, start, Vec::new())
}

/// **Table 3**: ARPT entries occupied under each context scheme.
pub fn table3(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let contexts: [(&str, Context); 4] = [
        ("pc-only", Context::None),
        ("w/ GBH", Context::Gbh { bits: 8 }),
        ("w/ CID", Context::Cid { bits: 24 }),
        ("w/ Hybrid", Context::HYBRID_8_24),
    ];
    let specs = suite();
    let schemes: Vec<(&str, EvalConfig)> = contexts
        .iter()
        .map(|(name, context)| {
            (
                *name,
                EvalConfig {
                    kind: PredictorKind::OneBit,
                    context: *context,
                    capacity: Capacity::Unlimited,
                    hints: None,
                },
            )
        })
        .collect();
    let (grouped, records) = eval_cells(opts, &schemes);
    let mut table = TableBuilder::new(&["Bench.", "pc-only", "w/ GBH", "w/ CID", "w/ Hybrid"]);
    for (spec, reports) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        let mut base = 0usize;
        for (ci, report) in reports.iter().enumerate() {
            let occupied = report.arpt_occupied.unwrap_or(0);
            if ci == 0 {
                base = occupied;
                row.push(occupied.to_string());
            } else {
                let pct = if base > 0 {
                    100.0 * (occupied as f64 - base as f64) / base as f64
                } else {
                    0.0
                };
                row.push(format!("{occupied} ({pct:+.0}%)"));
            }
        }
        table.row(&row);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Table 3: entries occupied in an unlimited ARPT (dynamic instructions only)"
    );
    let _ = writeln!(text, "{}", table.render());
    finish("table3", opts, records, text, start, Vec::new())
}

/// **Table 4**: the base machine model parameter dump.
pub fn table4(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let c = MachineConfig::baseline_2_0();
    let mut t = TableBuilder::new(&["Parameter", "Value"]);
    t.row(&["Issue width", &c.issue_width.to_string()]);
    t.row(&["No. of regs", "32 GPRs / 32 FPRs"]);
    t.row(&["ROB/LSQ size", &format!("{}/{}", c.rob_size, c.lsq_size)]);
    t.row(&[
        "Func. units",
        &format!(
            "{} int + {} FP ALUs, {} int + {} FP MULT/DIV",
            c.int_alus, c.fp_alus, c.int_mul_div, c.fp_mul_div
        ),
    ]);
    t.row(&["Value pred.", "Stride-based, 16K-entry table"]);
    t.row(&[
        "L1 D-cache",
        &format!(
            "{}-way set-assoc. {} KB, {}-cycle hit",
            c.dcache.assoc,
            c.dcache.size_bytes / 1024,
            c.dcache.hit_latency
        ),
    ]);
    t.row(&[
        "L2 D-cache",
        &format!(
            "{}-way, {} KB, {}-cycle access",
            c.l2.assoc,
            c.l2.size_bytes / 1024,
            c.l2.hit_latency
        ),
    ]);
    t.row(&[
        "Memory",
        &format!("{}-cycle access, fully interleaved", c.memory_latency),
    ]);
    let lvc = CacheConfig::lvc(2);
    t.row(&[
        "LV Cache",
        &format!(
            "direct-mapped, {} KB, {}-cycle access",
            lvc.size_bytes / 1024,
            lvc.hit_latency
        ),
    ]);
    t.row(&[
        "ARPT",
        &format!("{}K 1-bit entries", (1u64 << c.arpt_log2_entries) / 1024),
    ]);
    t.row(&["I-cache", "perfect, 1-cycle"]);
    t.row(&["Branch pred.", "perfect"]);
    t.row(&["Inst. latencies", "MIPS R10000-flavoured"]);
    let mut text = String::new();
    let _ = writeln!(text, "Table 4: base machine model");
    let _ = writeln!(text, "{}", t.render());
    finish("table4", opts, Vec::new(), text, start, Vec::new())
}

/// **Figure 5**: 1BIT-HYBRID accuracy vs ARPT size, without/with hints.
pub fn figure5(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let capacities: [(&str, Capacity); 5] = [
        ("inf", Capacity::Unlimited),
        ("64K", Capacity::Entries(1 << 16)),
        ("32K", Capacity::Entries(1 << 15)),
        ("16K", Capacity::Entries(1 << 14)),
        ("8K", Capacity::Entries(1 << 13)),
    ];
    // Cell = workload: the hint table needs one profiled functional pass
    // either way. In replay mode that pass also captures the trace (one
    // recorded "capture" cell) and the 10 variants are pure replays; in
    // live mode the pass is unrecorded and every variant re-executes, as
    // the pre-trace harness did.
    let results = opts.pool().map(suite(), |_i, spec| {
        let mut records = Vec::new();
        let (program, hints, trace) = match opts.trace {
            TraceMode::Replay => {
                let program = spec.build(opts.scale);
                let mut profiler = RegionProfiler::new();
                let (trace, record) = timed_record(spec.name, "capture", |record| {
                    record.phase = "capture".into();
                    let trace = capture_trace_with(&program, spec.name, |e| profiler.observe(e));
                    record.instructions = trace.metrics().instructions;
                    record.peak_rss_bytes = trace.metrics().peak_rss_bytes;
                    trace
                });
                records.push(record);
                let hints = HintTable::from_profile(&profiler);
                (program, hints, Some(trace))
            }
            TraceMode::Live => {
                let report = profile_workload(spec, opts.scale);
                let hints = HintTable::from_profile(&report.profiler);
                (report.program, hints, None)
            }
        };
        let mut row = vec![spec.spec_name.to_string()];
        for (cap_name, capacity) in &capacities {
            for with_hints in [false, true] {
                let label = format!("{cap_name}{}", if with_hints { "+hints" } else { "" });
                let config = EvalConfig {
                    kind: PredictorKind::OneBit,
                    context: Context::HYBRID_8_24,
                    capacity: *capacity,
                    hints: with_hints.then(|| hints.clone()),
                };
                let (eval, record) = timed_record(spec.name, &label, |record| {
                    let eval = match &trace {
                        Some(trace) => {
                            record.phase = "replay".into();
                            evaluate_trace(&program, trace, spec.name, config)
                        }
                        None => evaluate_program(&program, spec.name, config),
                    };
                    eval_record(record, &eval);
                    eval
                });
                row.push(fmt_pct(eval.stats.accuracy(), 2));
                records.push(record);
            }
        }
        (row, records)
    });
    let mut header: Vec<String> = vec!["Benchmark".into()];
    for (name, _) in &capacities {
        header.push(name.to_string());
        header.push(format!("{name}+hints"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    let mut records = Vec::new();
    for (row, cell_records) in results {
        table.row(&row);
        records.extend(cell_records);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 5: 1BIT-HYBRID accuracy vs ARPT size, without/with compiler hints"
    );
    let _ = writeln!(text, "{}", table.render());
    finish("figure5", opts, records, text, start, Vec::new())
}

/// **Figure 8**: speedup of the paper's memory-system configurations over
/// the (2+0) baseline.
pub fn figure8(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let configs = MachineConfig::figure8_suite();
    let (grouped, records, probe_cells) = timing_cells(opts, &configs);
    let specs = suite();
    let mut header: Vec<String> = vec!["Benchmark".into()];
    header.extend(configs.iter().map(|c| c.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    let mut speedup_sums = vec![[0.0f64; 2]; configs.len()];
    let mut counts = [0u32; 2];
    let mut chart = BarChart::new("Figure 8: average speedup over (2+0)", 48);
    for (spec, stats_row) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        let base_cycles = stats_row[0].cycles;
        for (i, stats) in stats_row.iter().enumerate() {
            let speedup = base_cycles as f64 / stats.cycles as f64;
            row.push(format!("{speedup:.3}"));
            speedup_sums[i][spec.is_fp as usize] += speedup;
        }
        counts[spec.is_fp as usize] += 1;
        table.row(&row);
    }
    let mut int_row = vec!["Int avg".to_string()];
    let mut fp_row = vec!["FP avg".to_string()];
    for (i, s) in speedup_sums.iter().enumerate() {
        let int_avg = s[0] / counts[0] as f64;
        let fp_avg = s[1] / counts[1] as f64;
        int_row.push(format!("{int_avg:.3}"));
        fp_row.push(format!("{fp_avg:.3}"));
        chart.bar(&format!("{} int", configs[i].name), int_avg);
        chart.bar(&format!("{} fp", configs[i].name), fp_avg);
        chart.gap();
    }
    table.row(&int_row);
    table.row(&fp_row);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 8: speedup over the (2+0) baseline (higher is better)"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(text, "{}", chart.render());
    finish("figure8", opts, records, text, start, probe_cells)
}

/// Ablation: doubling the baseline L1 capacity.
pub fn ablation_l1size(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let mut big = MachineConfig::baseline_2_0();
    big.dcache.size_bytes = 128 * 1024;
    big.name = "(2+0)/128KB".into();
    let configs = [MachineConfig::baseline_2_0(), big];
    let (grouped, records, probe_cells) = timing_cells(opts, &configs);
    let specs = suite();
    let mut table = TableBuilder::new(&["Benchmark", "64KB cycles", "128KB cycles", "gain %"]);
    let mut total_gain = 0.0;
    for (spec, stats_row) in specs.iter().zip(&grouped) {
        let (base, wide) = (&stats_row[0], &stats_row[1]);
        let gain = 100.0 * (base.cycles as f64 / wide.cycles as f64 - 1.0);
        total_gain += gain;
        table.row(&[
            spec.spec_name.to_string(),
            base.cycles.to_string(),
            wide.cycles.to_string(),
            format!("{gain:+.2}"),
        ]);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ablation: doubling the baseline L1 capacity (ports stay at 2)"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "Average gain: {:+.2}% — capacity is not the baseline's bottleneck",
        total_gain / specs.len() as f64
    );
    finish("ablation_l1size", opts, records, text, start, probe_cells)
}

/// Ablation: LVC hit rate vs size.
pub fn ablation_lvc(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let sizes = [1u64, 2, 4, 8];
    let configs: Vec<MachineConfig> = sizes
        .iter()
        .map(|kb| {
            let mut config = MachineConfig::decoupled(2, 2);
            config.lvc = Some(CacheConfig {
                size_bytes: kb * 1024,
                ..CacheConfig::lvc(2)
            });
            config.name = format!("(2+2)/{kb}KB");
            config
        })
        .collect();
    let (grouped, records, probe_cells) = timing_cells(opts, &configs);
    let specs = suite();
    let mut header = vec!["Benchmark".to_string()];
    header.extend(sizes.iter().map(|k| format!("{k}KB hit%")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    let mut avg = vec![0.0f64; sizes.len()];
    for (spec, stats_row) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        for (i, stats) in stats_row.iter().enumerate() {
            let rate = stats.lvc.as_ref().expect("decoupled machine").hit_rate();
            avg[i] += rate;
            row.push(format!("{:.2}", 100.0 * rate));
        }
        table.row(&row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for a in &avg {
        avg_row.push(format!("{:.2}", 100.0 * a / specs.len() as f64));
    }
    table.row(&avg_row);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ablation: Local Variable Cache hit rate vs size (direct-mapped, 1-cycle)"
    );
    let _ = writeln!(text, "{}", table.render());
    finish("ablation_lvc", opts, records, text, start, probe_cells)
}

/// Ablation: cache-bandwidth implementations.
pub fn ablation_ports(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let mut configs: Vec<MachineConfig> = Vec::new();
    configs.push(MachineConfig::conventional(1, 2));
    let mut lb = MachineConfig::conventional(1, 2);
    lb.dcache = lb.dcache.with_line_buffer();
    lb.name = "(1+lbuf)".into();
    configs.push(lb);
    let mut banked = MachineConfig::conventional(4, 2);
    banked.dcache = banked.dcache.with_banks(4);
    banked.name = "(4-bank)".into();
    configs.push(banked);
    configs.push(MachineConfig::conventional(4, 2));
    let mut split_banked = MachineConfig::decoupled(3, 3);
    split_banked.dcache = split_banked.dcache.with_banks(4);
    split_banked.name = "(3b+3)".into();
    configs.push(split_banked);
    configs.push(MachineConfig::decoupled(3, 3));

    let (grouped, records, probe_cells) = timing_cells(opts, &configs);
    let specs = suite();
    let mut header = vec!["Benchmark".to_string()];
    header.extend(configs.iter().map(|c| c.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    let mut sums = vec![0.0; configs.len()];
    for (spec, stats_row) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        let base = stats_row[0].cycles;
        for (i, stats) in stats_row.iter().enumerate() {
            let speedup = base as f64 / stats.cycles as f64;
            sums[i] += speedup;
            row.push(format!("{speedup:.3}"));
        }
        table.row(&row);
    }
    let mut avg = vec!["Average".to_string()];
    for s in &sums {
        avg.push(format!("{:.3}", s / specs.len() as f64));
    }
    table.row(&avg);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ablation: bandwidth implementations, speedup over a 1-ported cache"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "Reading: a 4-banked array recovers most of ideal 4-porting; a line\n\
         buffer gives a single-ported array a second effective port; banked\n\
         data caches compose with data decoupling."
    );
    finish("ablation_ports", opts, records, text, start, probe_cells)
}

/// Ablation: region-misprediction recovery policy × penalty.
pub fn ablation_recovery(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let variants: Vec<(String, RecoveryMode, u64)> = vec![
        ("selective,p1".into(), RecoveryMode::SelectiveReissue, 1),
        ("selective,p5".into(), RecoveryMode::SelectiveReissue, 5),
        ("squash,p1".into(), RecoveryMode::Squash, 1),
        ("squash,p5".into(), RecoveryMode::Squash, 5),
    ];
    let configs: Vec<MachineConfig> = variants
        .iter()
        .map(|(name, recovery, penalty)| {
            let mut config = MachineConfig::decoupled(3, 3);
            config.recovery = *recovery;
            config.region_mispredict_penalty = *penalty;
            config.name = name.clone();
            config
        })
        .collect();
    let (grouped, records, probe_cells) = timing_cells(opts, &configs);
    let specs = suite();
    let mut header = vec!["Benchmark".to_string(), "mispred/1K refs".into()];
    header.extend(variants.iter().map(|(n, _, _)| n.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    for (spec, stats_row) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        let base = stats_row[0].cycles;
        for (i, stats) in stats_row.iter().enumerate() {
            if i == 0 {
                let mispredict_rate =
                    1000.0 * stats.region_mispredicts as f64 / stats.mem_refs.max(1) as f64;
                row.push(format!("{mispredict_rate:.2}"));
            }
            row.push(format!("{:.4}", base as f64 / stats.cycles as f64));
        }
        table.row(&row);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ablation: recovery policy × penalty, slowdown relative to selective/p1"
    );
    let _ = writeln!(text, "{}", table.render());
    finish("ablation_recovery", opts, records, text, start, probe_cells)
}

/// Ablation: 1-bit vs 2-bit ARPT entries.
pub fn ablation_twobit(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let variants: [(&str, PredictorKind, Context); 4] = [
        ("1BIT", PredictorKind::OneBit, Context::None),
        ("2BIT", PredictorKind::TwoBit, Context::None),
        ("1BIT-HYB", PredictorKind::OneBit, Context::HYBRID_8_24),
        ("2BIT-HYB", PredictorKind::TwoBit, Context::HYBRID_8_24),
    ];
    let specs = suite();
    let schemes: Vec<(&str, EvalConfig)> = variants
        .iter()
        .map(|(label, kind, context)| {
            (
                *label,
                EvalConfig {
                    kind: *kind,
                    context: *context,
                    capacity: Capacity::Unlimited,
                    hints: None,
                },
            )
        })
        .collect();
    let (grouped, records) = eval_cells(opts, &schemes);
    let mut table = TableBuilder::new(&["Benchmark", "1BIT", "2BIT", "1BIT-HYB", "2BIT-HYB"]);
    let mut wins = [0u32; 2];
    for (spec, reports) in specs.iter().zip(&grouped) {
        let mut row = vec![spec.spec_name.to_string()];
        let accs: Vec<f64> = reports.iter().map(|r| r.stats.accuracy()).collect();
        for acc in &accs {
            row.push(fmt_pct(*acc, 3));
        }
        if accs[0] >= accs[1] {
            wins[0] += 1;
        }
        if accs[2] >= accs[3] {
            wins[1] += 1;
        }
        table.row(&row);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Ablation: 1-bit vs 2-bit ARPT entries (unlimited table)"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "1-bit ≥ 2-bit on {}/12 workloads (plain) and {}/12 (hybrid context)",
        wins[0], wins[1]
    );
    finish("ablation_twobit", opts, records, text, start, Vec::new())
}

/// Diagnostic: full [`SimStats`] dump for one workload × a few configs.
pub fn probe(opts: &ExperimentOptions, name: &str) -> ExperimentRun {
    let start = Instant::now();
    let spec = workload(name).expect("workload");
    let configs = [
        MachineConfig::baseline_2_0(),
        MachineConfig::conventional(16, 2),
        MachineConfig::decoupled(3, 3),
    ];
    let mut records = Vec::new();
    let results = match opts.trace {
        TraceMode::Replay => {
            let program = spec.build(opts.scale);
            let (trace, record) = timed_record(spec.name, "capture", |record| {
                record.phase = "capture".into();
                let trace = if opts.shards > 1 {
                    capture_trace_snapshotted(&program, spec.name, opts.snapshot_interval)
                } else {
                    capture_trace(&program, spec.name)
                };
                record.instructions = trace.metrics().instructions;
                record.peak_rss_bytes = trace.metrics().peak_rss_bytes;
                trace
            });
            records.push(record);
            opts.pool().map(configs.to_vec(), |_i, config| {
                timed_record(spec.name, &config.name, |record| {
                    record.phase = "replay".into();
                    let (stats, rec) = run_timing(
                        opts.probe,
                        opts.shards,
                        &program,
                        Some(&trace),
                        spec.name,
                        &config,
                    );
                    timing_record(record, &stats);
                    (
                        stats,
                        rec.map(|recorder| ProbeCell {
                            workload: spec.name.to_string(),
                            config: config.name.clone(),
                            recorder,
                        }),
                    )
                })
            })
        }
        TraceMode::Live => opts.pool().map(configs.to_vec(), |_i, config| {
            timed_record(spec.name, &config.name, |record| {
                let program = spec.build(opts.scale);
                let (stats, rec) = run_timing(opts.probe, 1, &program, None, spec.name, &config);
                timing_record(record, &stats);
                (
                    stats,
                    rec.map(|recorder| ProbeCell {
                        workload: spec.name.to_string(),
                        config: config.name.clone(),
                        recorder,
                    }),
                )
            })
        }),
    };
    let mut probe_cells = Vec::new();
    let mut text = String::new();
    for ((s, cell), record) in results {
        probe_cells.extend(cell);
        let _ = writeln!(
            text,
            "{:8} cycles={} ipc={:.2} mem={} lvaq={} fwd(lsq/lvaq)={}/{} rob_stall={} q_stall={} vp={}@{:.2} l1={:.3} l2m={}",
            s.config_name,
            s.cycles,
            s.ipc(),
            s.mem_refs,
            s.lvaq_refs,
            s.lsq_forwards,
            s.lvaq_forwards,
            s.rob_stall_cycles,
            s.queue_stall_cycles,
            s.value_predictions,
            s.value_pred_accuracy(),
            s.dcache.hit_rate(),
            s.l2.misses,
        );
        records.push(record);
    }
    finish("probe", opts, records, text, start, probe_cells)
}

/// **Figure 8 companion**: stall attribution for every Figure 8 machine
/// configuration, aggregated over the whole suite.
///
/// The run is always probed internally (the table needs the recorders);
/// the `BENCH_figure8_stalls_probe.json` document still only appears when
/// `ARL_PROBE` asks for it, like every other binary.
pub fn figure8_stalls(opts: &ExperimentOptions) -> ExperimentRun {
    let start = Instant::now();
    let configs = MachineConfig::figure8_suite();
    let (grouped, records, probe_cells) = timing_cells(&opts.with_probe(true), &configs);
    debug_assert_eq!(probe_cells.len(), grouped.len() * configs.len());

    // Fold the per-(workload × config) recorders into one recorder per
    // config; cells are workload-major, configs in suite order.
    let mut agg: Vec<Recorder> = vec![Recorder::new(); configs.len()];
    for (i, cell) in probe_cells.iter().enumerate() {
        agg[i % configs.len()].merge(&cell.recorder);
    }
    let base_cycles: u64 = grouped.iter().map(|row| row[0].cycles).sum();

    let mut header: Vec<String> = vec!["Config".into(), "Cycles".into(), "Useful %".into()];
    header.extend(StallCause::ALL.iter().map(|c| format!("{} %", c.label())));
    header.push("Speedup".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableBuilder::new(&header_refs);
    for (config, rec) in configs.iter().zip(&agg) {
        let total = rec.cycles().max(1) as f64;
        let mut row = vec![
            config.name.clone(),
            rec.cycles().to_string(),
            format!("{:.1}", 100.0 * rec.useful_cycles() as f64 / total),
        ];
        for cause in StallCause::ALL {
            row.push(format!(
                "{:.1}",
                100.0 * rec.stall_cycles(cause) as f64 / total
            ));
        }
        row.push(format!(
            "{:.3}",
            base_cycles as f64 / rec.cycles().max(1) as f64
        ));
        table.row(&row);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 8 stall attribution: where commit-blocked cycles go, summed over the suite"
    );
    let _ = writeln!(text, "{}", table.render());
    let _ = writeln!(
        text,
        "Columns: useful = at least one instruction committed; the eight stall\n\
         categories attribute every remaining cycle to the reason the ROB head\n\
         could not commit (they sum with useful to 100%). Speedup is summed\n\
         suite cycles relative to the (2+0) baseline."
    );
    finish("figure8_stalls", opts, records, text, start, probe_cells)
}
