//! The seeded fault-injection campaign (`fault_campaign` binary).
//!
//! For every suite workload the campaign captures one trace, runs one
//! fault-free decoupled timing baseline, then injects each planned fault
//! (`ARL_FAULT`; see [`arl_faults::parse_plan`]) into its layer and
//! classifies the outcome against the baseline:
//!
//! * **trace** faults corrupt the serialized `.arltrace` container and
//!   must be *detected* by the decoder's checksum (a decode that
//!   succeeds anyway is differentially replayed; a functional mismatch
//!   is *silent* — a campaign failure).
//! * **arpt** faults flip ARPT entry state mid-run; the pipeline's
//!   misprediction-recovery path must absorb them (*recovered*) or they
//!   must change nothing (*masked*) — the functional signature may never
//!   move, because the replayed instruction stream does not depend on
//!   steering.
//! * **port** faults black out or slow a first-level memory port for a
//!   window; they may only cost cycles (*masked*).
//!
//! Jobs run supervised ([`Pool::try_map`]): a panicking or overrunning
//! workload becomes an error record in the output instead of aborting
//! the sweep, and `ARL_CHECKPOINT` persists per-job completion so an
//! interrupted campaign resumes without re-running finished workloads —
//! the emitted document contains no wall-clock fields, so a resumed
//! merge is byte-identical to an uninterrupted run.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use arl_faults::{
    apply_trace_fault, classify_timing, classify_trace, describe_timing_fault, plan_arpt_fault,
    plan_port_fault, plan_trace_fault, FaultOutcome, Layer, LayerPlan, RunSignature,
    TimingObservation,
};
use arl_stats::{Json, TableBuilder};
use arl_timing::{MachineConfig, SimStats, TimingFault};
use arl_trace::Trace;
use arl_workloads::suite;

use crate::runner::{scale_label, write_named_json, Checkpoint, JobFailure, Pool, RunIdentity};
use crate::{capture_trace, timing_trace, ExperimentOptions};

/// `BENCH_faults.json` schema identifier.
pub const FAULTS_SCHEMA: &str = "arl-faults/v1";

/// Resolves a raw `ARL_MAX_JOBS` value: a positive integer truncates the
/// campaign to its first N workload jobs (the CI kill-resume gate uses
/// this to interrupt deterministically); unset, zero, or unparsable
/// values run the full suite.
pub fn max_jobs_from_value(value: Option<&str>) -> Option<usize> {
    match value?.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// A finished campaign: rendered text, the `arl-faults/v1` document, and
/// whether anything demands a non-zero exit.
pub struct FaultCampaignRun {
    /// The exact bytes the binary prints to stdout.
    pub text: String,
    /// The `BENCH_faults.json` payload.
    pub doc: Json,
    /// True when any fault was fatal or silent, or any job failed.
    pub failed: bool,
}

fn signature(stats: &SimStats) -> RunSignature {
    RunSignature {
        instructions: stats.instructions,
        mem_refs: stats.mem_refs,
        peak_rss_bytes: stats.peak_rss_bytes,
    }
}

fn observation(stats: &SimStats) -> TimingObservation {
    TimingObservation {
        signature: signature(stats),
        recoveries: stats.recoveries,
    }
}

/// One fault's classified outcome, before JSON rendering.
struct FaultRecord<'a> {
    workload: &'a str,
    layer: Layer,
    fault_id: u32,
    detail: &'a str,
    outcome: FaultOutcome,
    fired: bool,
    recoveries_delta: Option<u64>,
    cycles_delta: Option<i64>,
}

/// Renders one outcome record (no wall-clock fields — resume merges must
/// be byte-identical).
fn record_json(r: &FaultRecord<'_>) -> Json {
    Json::obj([
        ("workload", Json::from(r.workload)),
        ("layer", Json::from(r.layer.label())),
        ("fault_id", Json::from(u64::from(r.fault_id))),
        ("detail", Json::from(r.detail)),
        ("outcome", Json::from(r.outcome.label())),
        ("fired", Json::from(r.fired)),
        (
            "recoveries_delta",
            r.recoveries_delta.map_or(Json::Null, Json::from),
        ),
        (
            "cycles_delta",
            r.cycles_delta.map_or(Json::Null, |d| Json::Num(d as f64)),
        ),
    ])
}

/// Runs one timing-layer fault and classifies it. The run itself is
/// guarded: a panic inside the simulator is the *fatal* outcome, not a
/// campaign abort.
fn run_timing_fault(
    program: &arl_asm::Program,
    trace: &Trace,
    name: &str,
    config: &MachineConfig,
    fault: TimingFault,
    baseline: &TimingObservation,
    baseline_cycles: u64,
) -> (FaultOutcome, bool, Option<u64>, Option<i64>) {
    let mut faulty_config = config.clone();
    faulty_config.faults = vec![fault];
    let result = catch_unwind(AssertUnwindSafe(|| {
        timing_trace(program, trace, name, &faulty_config)
    }))
    .ok();
    let outcome = classify_timing(baseline, result.as_ref().map(observation).as_ref());
    match result {
        Some(stats) => (
            outcome,
            stats.faults_applied.contains(&fault.id),
            Some(stats.recoveries.saturating_sub(baseline.recoveries)),
            Some(stats.cycles as i64 - baseline_cycles as i64),
        ),
        None => (outcome, true, None, None),
    }
}

/// The stable cell of `ARL_FAULT` this campaign ran under, used in
/// checkpoint keys and the output document.
fn plan_spec(plans: &[LayerPlan]) -> String {
    plans
        .iter()
        .map(|p| format!("{}:{}:{}", p.layer.label(), p.seed, p.count))
        .collect::<Vec<_>>()
        .join(",")
}

/// The checkpoint-ledger fingerprint for a fault campaign: everything
/// that shapes the recorded payloads. `ARL_SHARD` is deliberately
/// excluded — sharded and unsharded baselines produce bit-identical
/// stats (the shard differential suite proves it), so their ledgers are
/// interchangeable. Threads are excluded for the same reason, and
/// `ARL_MAX_JOBS` is excluded because a job cap is an *interruption* of
/// the same campaign, not a different campaign — a capped run must
/// brand its ledger so the uncapped resume is accepted.
pub fn campaign_identity(opts: &ExperimentOptions, plans: &[LayerPlan]) -> RunIdentity {
    let workloads = suite().iter().map(|s| s.name).collect::<Vec<_>>().join(",");
    RunIdentity::new("faults")
        .field("scale", scale_label(opts.scale))
        .field("plan", plan_spec(plans))
        .field("config", "decoupled(3,3)")
        .field("workloads", workloads)
}

/// Runs the campaign with an env-configured supervision policy
/// (`ARL_DEADLINE`, `ARL_RETRIES`): `plans` faults per workload over the
/// first `max_jobs` suite workloads (all 12 when `None`), resuming
/// completed jobs from `checkpoint` when one is given.
pub fn fault_campaign_with(
    opts: &ExperimentOptions,
    plans: &[LayerPlan],
    max_jobs: Option<usize>,
    checkpoint: Option<Checkpoint>,
) -> FaultCampaignRun {
    let pool = Pool::new(opts.threads)
        .with_deadline(crate::runner::deadline_from_value(
            std::env::var("ARL_DEADLINE").ok().as_deref(),
        ))
        .with_retries(crate::runner::retries_from_value(
            std::env::var("ARL_RETRIES").ok().as_deref(),
        ));
    fault_campaign_pooled(opts, plans, max_jobs, checkpoint, &pool)
}

/// [`fault_campaign_with`], supervised by an explicit [`Pool`] (tests
/// drive deadline/retry behaviour through this).
pub fn fault_campaign_pooled(
    opts: &ExperimentOptions,
    plans: &[LayerPlan],
    max_jobs: Option<usize>,
    checkpoint: Option<Checkpoint>,
    pool: &Pool,
) -> FaultCampaignRun {
    let mut specs = suite();
    if let Some(n) = max_jobs {
        specs.truncate(n);
    }
    let scale = scale_label(opts.scale);
    let spec_str = plan_spec(plans);
    let checkpoint = Mutex::new(checkpoint);

    let results = pool.try_map(&specs, |_i, spec| {
        let key = format!("faults/{}/{}/{}", spec.name, scale, spec_str);
        if let Some(ckpt) = checkpoint
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
        {
            if let Some(payload) = ckpt.get(&key) {
                return Json::parse(payload)
                    .unwrap_or_else(|e| panic!("corrupt checkpoint entry for {key}: {e}"));
            }
        }

        let program = spec.build(opts.scale);
        let trace = capture_trace(&program, spec.name);
        let config = MachineConfig::decoupled(3, 3);
        // With `ARL_SHARD` > 1 the baseline replay runs as a chain of
        // shard segments over a snapshotted capture; its stats are
        // bit-identical to the serial baseline, so fault planning and
        // every faulty replay keep using the plain capture and the
        // emitted document stays byte-identical to an unsharded run.
        let baseline = if opts.shards > 1 {
            let snapshotted =
                crate::capture_trace_snapshotted(&program, spec.name, opts.snapshot_interval);
            crate::shard::replay_sharded(
                &program,
                &snapshotted,
                spec.name,
                &config,
                opts.shards,
                false,
            )
            .stats
        } else {
            timing_trace(&program, &trace, spec.name, &config)
        };
        let base_obs = observation(&baseline);
        let bytes = trace.as_bytes();

        let mut records: Vec<Json> = Vec::new();
        let mut next_id = 0u32;
        for plan in plans {
            for index in 0..plan.count {
                let id = next_id;
                next_id += 1;
                let record = match plan.layer {
                    Layer::Trace => {
                        let fault = plan_trace_fault(plan.seed, index, bytes.len());
                        let mutated = apply_trace_fault(bytes, &fault);
                        let outcome = match Trace::from_bytes(mutated) {
                            Err(_) => classify_trace(None),
                            Ok(decoded) => {
                                // The checksum missed it; the
                                // differential replay is the last
                                // line of defence.
                                let replay = catch_unwind(AssertUnwindSafe(|| {
                                    timing_trace(&program, &decoded, spec.name, &config)
                                }));
                                match replay {
                                    Err(_) => FaultOutcome::Fatal,
                                    Ok(stats) => classify_trace(Some(
                                        signature(&stats) == base_obs.signature,
                                    )),
                                }
                            }
                        };
                        record_json(&FaultRecord {
                            workload: spec.name,
                            layer: plan.layer,
                            fault_id: id,
                            detail: &fault.describe(),
                            outcome,
                            fired: true,
                            recoveries_delta: None,
                            cycles_delta: None,
                        })
                    }
                    Layer::Arpt => {
                        let fault = plan_arpt_fault(id, plan.seed, index, baseline.region_checks);
                        let detail = describe_timing_fault(&fault);
                        let (outcome, fired, rec_delta, cyc_delta) = run_timing_fault(
                            &program,
                            &trace,
                            spec.name,
                            &config,
                            fault,
                            &base_obs,
                            baseline.cycles,
                        );
                        record_json(&FaultRecord {
                            workload: spec.name,
                            layer: plan.layer,
                            fault_id: id,
                            detail: &detail,
                            outcome,
                            fired,
                            recoveries_delta: rec_delta,
                            cycles_delta: cyc_delta,
                        })
                    }
                    Layer::Port => {
                        let fault = plan_port_fault(
                            id,
                            plan.seed,
                            index,
                            baseline.cycles,
                            config.lvc.is_some(),
                        );
                        let detail = describe_timing_fault(&fault);
                        let (outcome, fired, rec_delta, cyc_delta) = run_timing_fault(
                            &program,
                            &trace,
                            spec.name,
                            &config,
                            fault,
                            &base_obs,
                            baseline.cycles,
                        );
                        record_json(&FaultRecord {
                            workload: spec.name,
                            layer: plan.layer,
                            fault_id: id,
                            detail: &detail,
                            outcome,
                            fired,
                            recoveries_delta: rec_delta,
                            cycles_delta: cyc_delta,
                        })
                    }
                };
                records.push(record);
            }
        }
        let payload = Json::Arr(records);
        if let Some(ckpt) = checkpoint
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            ckpt.record(&key, &payload)
                .unwrap_or_else(|e| panic!("failed to checkpoint {key}: {e}"));
        }
        payload
    });

    // Fold: flatten per-workload record arrays (suite order), collect
    // job failures, and tally outcomes.
    let mut records: Vec<Json> = Vec::new();
    let mut errors: Vec<JobFailure> = Vec::new();
    for result in results {
        match result {
            Ok(Json::Arr(items)) => records.extend(items),
            Ok(other) => records.push(other),
            Err(failure) => errors.push(failure),
        }
    }
    let mut totals = [0u64; FaultOutcome::ALL.len()];
    for record in &records {
        let outcome = record.get("outcome").and_then(Json::as_str);
        for (i, candidate) in FaultOutcome::ALL.iter().enumerate() {
            if outcome == Some(candidate.label()) {
                totals[i] += 1;
            }
        }
    }

    let mut table = TableBuilder::new(&[
        "Workload", "Layer", "Fault", "Outcome", "Fired", "ΔRecov", "ΔCycles",
    ]);
    for record in &records {
        let cell = |key: &str| {
            record
                .get(key)
                .map(|v| match v {
                    Json::Str(s) => s.clone(),
                    Json::Null => "-".to_string(),
                    other => other.render(),
                })
                .unwrap_or_default()
        };
        table.row(&[
            cell("workload"),
            cell("layer"),
            cell("detail"),
            cell("outcome"),
            cell("fired"),
            cell("recoveries_delta"),
            cell("cycles_delta"),
        ]);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "Fault campaign: {} over {} workload(s), scale {}",
        spec_str,
        specs.len(),
        scale
    );
    let _ = writeln!(text, "{}", table.render());
    let mut totals_line = String::from("Totals:");
    for (i, outcome) in FaultOutcome::ALL.iter().enumerate() {
        let _ = write!(totals_line, " fault_{}={}", outcome.label(), totals[i]);
    }
    let _ = writeln!(text, "{totals_line}");
    for failure in &errors {
        let _ = writeln!(text, "ERROR: {}", failure.summary());
    }

    let silent = totals[4];
    let fatal = totals[3];
    let mut pairs = vec![
        ("schema", Json::from(FAULTS_SCHEMA)),
        ("experiment", Json::from("faults")),
        ("scale", Json::from(scale.as_str())),
        ("plan", Json::from(spec_str.as_str())),
        ("workloads", Json::from(specs.len())),
        ("records", Json::Arr(records)),
        (
            "totals",
            Json::obj(
                FaultOutcome::ALL
                    .iter()
                    .enumerate()
                    .map(|(i, o)| (format!("fault_{}", o.label()), Json::from(totals[i]))),
            ),
        ),
    ];
    if !errors.is_empty() {
        pairs.push((
            "errors",
            Json::Arr(errors.iter().map(JobFailure::to_json).collect()),
        ));
    }
    FaultCampaignRun {
        text,
        doc: Json::obj(pairs),
        failed: silent > 0 || fatal > 0 || !errors.is_empty(),
    }
}

/// The `fault_campaign` binary's `main`: reads `ARL_FAULT`, `ARL_SCALE`,
/// `ARL_THREADS`, `ARL_MAX_JOBS`, and `ARL_CHECKPOINT`; prints the
/// campaign table; writes `BENCH_faults.json` when `ARL_JSON` is set;
/// exits non-zero when any fault was fatal or silent or any job failed.
pub fn run_faults_main() {
    let opts = ExperimentOptions::from_env();
    let plans = match arl_faults::plan_from_env() {
        Ok(plans) => plans,
        Err(e) => {
            eprintln!("[arl-bench] invalid ARL_FAULT: {e}");
            std::process::exit(2);
        }
    };
    let max_jobs = max_jobs_from_value(std::env::var("ARL_MAX_JOBS").ok().as_deref());
    // A ledger the user asked for but that cannot be opened — or that
    // fingerprints a different run — is a hard error: proceeding would
    // either silently lose resume protection or merge foreign payloads.
    let identity = campaign_identity(&opts, &plans);
    let checkpoint = match Checkpoint::from_env(&identity) {
        Ok(ckpt) => ckpt,
        Err(e) => {
            eprintln!("[arl-bench] cannot open ARL_CHECKPOINT: {e}");
            std::process::exit(2);
        }
    };
    let run = fault_campaign_with(&opts, &plans, max_jobs, checkpoint);
    print!("{}", run.text);
    // Audit line for supervisors (the chaos harness asserts a fully
    // resumed campaign re-executes zero functional instructions).
    eprintln!(
        "[arl-bench] functional instructions executed: {}",
        arl_sim::functional_instructions_executed()
    );
    if std::env::var_os("ARL_JSON").is_some() {
        match write_named_json("BENCH_faults.json", &run.doc) {
            Ok(path) => eprintln!("[arl-bench] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[arl-bench] failed to write ARL_JSON: {e}");
                std::process::exit(1);
            }
        }
    }
    if run.failed {
        eprintln!("[arl-bench] fault campaign FAILED (fatal/silent faults or job errors above)");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arl_workloads::Scale;

    fn tiny_opts() -> ExperimentOptions {
        ExperimentOptions::new(Scale::tiny(), 2)
    }

    fn plans(seed: u64, count: u32) -> Vec<LayerPlan> {
        Layer::ALL
            .iter()
            .map(|&layer| LayerPlan { layer, seed, count })
            .collect()
    }

    #[test]
    fn campaign_classifies_and_never_goes_silent_on_two_workloads() {
        let run = fault_campaign_with(&tiny_opts(), &plans(42, 2), Some(2), None);
        assert!(!run.failed, "campaign failed:\n{}", run.text);
        let totals = run.doc.get("totals").unwrap();
        assert_eq!(totals.get("fault_silent").unwrap().as_u64(), Some(0));
        assert_eq!(totals.get("fault_fatal").unwrap().as_u64(), Some(0));
        // 2 workloads × 3 layers × 2 faults.
        let records = run.doc.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 12);
        // Every trace fault is caught by the container checksum.
        for r in records {
            if r.get("layer").unwrap().as_str() == Some("trace") {
                assert_eq!(r.get("outcome").unwrap().as_str(), Some("detected"));
            }
        }
        assert_eq!(run.doc.get("schema").unwrap().as_str(), Some(FAULTS_SCHEMA));
        // The document round-trips through the parser.
        assert_eq!(Json::parse(&run.doc.render()).unwrap(), run.doc);
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = fault_campaign_with(&tiny_opts(), &plans(7, 1), Some(1), None);
        let b = fault_campaign_with(&tiny_opts(), &plans(7, 1), Some(1), None);
        assert_eq!(a.doc.render(), b.doc.render());
        let c = fault_campaign_with(&tiny_opts(), &plans(8, 1), Some(1), None);
        assert_ne!(
            a.doc.get("records").unwrap(),
            c.doc.get("records").unwrap(),
            "different seeds must plan different faults"
        );
    }

    #[test]
    fn overrunning_jobs_become_error_records_not_aborts() {
        // A 1-nanosecond deadline every job must miss: the campaign still
        // completes, each job surfaces as an error record, and the run is
        // marked failed (the binary exits non-zero on this flag).
        let pool = Pool::new(2).with_deadline(Some(std::time::Duration::from_nanos(1)));
        let run = fault_campaign_pooled(&tiny_opts(), &plans(42, 1), Some(2), None, &pool);
        assert!(run.failed);
        let errors = run.doc.get("errors").unwrap().as_array().unwrap();
        assert_eq!(errors.len(), 2);
        for e in errors {
            assert_eq!(e.get("kind").unwrap().as_str(), Some("timeout"));
        }
        assert!(run.text.contains("ERROR:"));
        // No fault records made it (both jobs were discarded), but the
        // totals object is still present and all-zero.
        let totals = run.doc.get("totals").unwrap();
        assert_eq!(totals.get("fault_masked").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn sharded_baseline_keeps_the_document_byte_identical() {
        // `ARL_SHARD=2` reroutes the baseline replay through chained
        // shard segments; fault planning and faulty replays stay on the
        // plain capture, so the whole document must not move a byte —
        // this is what lets one ledger serve sharded and unsharded runs.
        let serial = fault_campaign_with(&tiny_opts(), &plans(42, 1), Some(1), None);
        let sharded_opts = tiny_opts().with_shards(2, 5_000);
        let sharded = fault_campaign_with(&sharded_opts, &plans(42, 1), Some(1), None);
        assert_eq!(serial.doc.render(), sharded.doc.render());
        assert_eq!(serial.text, sharded.text);
    }

    #[test]
    fn campaign_identity_pins_plan_scale_and_workload_set() {
        let a = campaign_identity(&tiny_opts(), &plans(42, 2));
        let b = campaign_identity(&tiny_opts(), &plans(42, 2));
        assert_eq!(a, b);
        assert_ne!(a, campaign_identity(&tiny_opts(), &plans(43, 2)));
        // Sharding and job caps are deliberately identity-neutral (see
        // the doc): both are ways of *interrupting* the same campaign.
        let sharded = tiny_opts().with_shards(2, 5_000);
        assert_eq!(a, campaign_identity(&sharded, &plans(42, 2)));
        let rendered = a.render();
        assert!(rendered.contains("\"experiment\":\"faults\""), "{rendered}");
        assert!(rendered.contains("trace:42:2"), "{rendered}");
    }

    #[test]
    fn max_jobs_parser_handles_edge_cases() {
        assert_eq!(max_jobs_from_value(None), None);
        assert_eq!(max_jobs_from_value(Some("3")), Some(3));
        assert_eq!(max_jobs_from_value(Some("0")), None);
        assert_eq!(max_jobs_from_value(Some("all")), None);
    }
}
