//! The memory-backend sweep (`bench_backends` binary).
//!
//! The paper's split-port design wins by multiplying *port* bandwidth in
//! front of a flat 50-cycle memory. Die-stacked DRAM and burst-friendly
//! parts attack the same stall cycles from the other side — by making the
//! misses cheaper — so the interesting question is where the (3+3) split
//! stops paying once the backend improves. This sweep runs every
//! [`BackendConfig`] over a workload subset with both the conventional
//! `(2+0)` machine and the decoupled `(3+3)` machine, always probed, and
//! emits `BENCH_backends.json` (schema [`BACKENDS_SCHEMA`]) with full
//! stall attribution per row plus a per-backend split-port speedup table.

use std::fmt::Write as _;
use std::time::Instant;

use arl_stats::{Json, TableBuilder};
use arl_timing::{BackendConfig, CacheStats, MachineConfig, Recorder, SimStats, StallCause};
use arl_workloads::workload;

use crate::runner::{scale_label, write_named_json, Pool};
use crate::{capture_trace, timing_trace_probed, ExperimentOptions};

/// `BENCH_backends.json` schema identifier.
pub const BACKENDS_SCHEMA: &str = "arl-backends/v1";

/// Workload subset for the backend sweep: an integer benchmark dominated
/// by heap pointer-chasing (`go`), one with high-locality streams
/// (`compress`), and the floating-point array walker (`tomcatv`).
const WORKLOADS: [&str; 3] = ["compress", "go", "tomcatv"];

/// The two machines the paper compares: conventional 2-port and the
/// decoupled split-port design.
fn machines() -> [MachineConfig; 2] {
    [
        MachineConfig::baseline_2_0(),
        MachineConfig::decoupled(3, 3),
    ]
}

/// A finished backend sweep: rendered text, the JSON document, and
/// whether any cell violated stall conservation.
#[derive(Clone, Debug)]
pub struct BackendsBenchRun {
    /// The exact bytes the binary prints to stdout.
    pub text: String,
    /// The `BENCH_backends.json` payload.
    pub doc: Json,
    /// True if any cell's probe failed `useful + Σstalls == cycles`.
    pub failed: bool,
}

struct Cell {
    workload: String,
    backend: BackendConfig,
    config: String,
    stats: SimStats,
    recorder: Recorder,
    conserved: bool,
}

fn cache_stats_json(stats: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("hit_rate", Json::from(stats.hit_rate())),
    ])
}

fn cell_json(cell: &Cell) -> Json {
    let stalls = StallCause::ALL
        .iter()
        .map(|&cause| (cause.label(), Json::from(cell.recorder.stall_cycles(cause))))
        .collect::<Vec<_>>();
    Json::obj([
        ("workload", Json::from(cell.workload.as_str())),
        ("backend", Json::from(cell.backend.label())),
        ("config", Json::from(cell.config.as_str())),
        ("cycles", Json::from(cell.stats.cycles)),
        ("instructions", Json::from(cell.stats.instructions)),
        ("ipc", Json::from(cell.stats.ipc())),
        ("l2", cache_stats_json(&cell.stats.l2)),
        (
            "stacked",
            match &cell.stats.stacked {
                Some(stats) => cache_stats_json(stats),
                None => Json::Null,
            },
        ),
        ("useful_cycles", Json::from(cell.recorder.useful_cycles())),
        (
            "stall_cycles",
            Json::Obj(
                stalls
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        ),
        ("conserved", Json::from(cell.conserved)),
    ])
}

/// Runs the (workload × backend × machine) sweep and builds the report.
/// Every cell is probed regardless of `opts.probe`; `opts.backend` is
/// ignored because the sweep covers all backends by construction.
///
/// # Panics
///
/// Panics if a sweep workload is missing from the suite or fails to
/// execute/replay.
pub fn backends_bench(opts: &ExperimentOptions) -> BackendsBenchRun {
    let start = Instant::now();
    let pool = Pool::new(opts.threads);

    // One functional execution per workload; every cell replays it.
    let captured = pool.map(WORKLOADS.to_vec(), |_i, name| {
        let spec =
            workload(name).unwrap_or_else(|| panic!("backend sweep workload {name} missing"));
        let program = spec.build(opts.scale);
        let trace = capture_trace(&program, name);
        (name, program, trace)
    });

    let mut jobs = Vec::new();
    for wi in 0..captured.len() {
        for backend in BackendConfig::ALL {
            for machine in machines() {
                jobs.push((wi, backend, machine));
            }
        }
    }
    let cells = pool.map(jobs, |_i, (wi, backend, machine)| {
        let (name, program, trace) = &captured[wi];
        let base_name = machine.name.clone();
        let config = machine.with_backend(backend);
        let (stats, recorder) = timing_trace_probed(program, trace, name, &config);
        let conserved = recorder.cycles() == stats.cycles
            && recorder.useful_cycles() + recorder.total_stall_cycles() == stats.cycles;
        Cell {
            workload: name.to_string(),
            backend,
            config: base_name,
            stats,
            recorder,
            conserved,
        }
    });

    let failed = cells.iter().any(|c| !c.conserved);
    let cycles_of = |workload: &str, backend: BackendConfig, config: &str| -> u64 {
        cells
            .iter()
            .find(|c| c.workload == workload && c.backend == backend && c.config == config)
            .map(|c| c.stats.cycles)
            .unwrap_or(0)
    };
    let [base_name, split_name] = machines().map(|m| m.name);

    // Per-backend split-port speedup: how much the (3+3) machine still
    // buys over (2+0) once the backend absorbs part of the miss cost.
    let mut speedup_rows = Vec::new();
    let mut table = {
        let mut header = vec!["Backend".to_string()];
        header.extend(WORKLOADS.iter().map(|w| w.to_string()));
        header.push("geomean".to_string());
        TableBuilder::new(&header.iter().map(String::as_str).collect::<Vec<_>>())
    };
    for backend in BackendConfig::ALL {
        let mut row = vec![backend.label().to_string()];
        let mut pairs = vec![("backend".to_string(), Json::from(backend.label()))];
        let mut log_sum = 0.0;
        for name in WORKLOADS {
            let base = cycles_of(name, backend, &base_name);
            let split = cycles_of(name, backend, &split_name);
            let speedup = if split == 0 {
                0.0
            } else {
                base as f64 / split as f64
            };
            log_sum += speedup.max(f64::MIN_POSITIVE).ln();
            row.push(format!("{speedup:.3}x"));
            pairs.push((name.to_string(), Json::from(speedup)));
        }
        let geomean = (log_sum / WORKLOADS.len() as f64).exp();
        row.push(format!("{geomean:.3}x"));
        pairs.push(("geomean".to_string(), Json::from(geomean)));
        table.row(&row);
        speedup_rows.push(Json::Obj(pairs));
    }

    let doc = Json::obj([
        ("schema", Json::from(BACKENDS_SCHEMA)),
        ("scale", Json::from(scale_label(opts.scale))),
        (
            "workloads",
            Json::Arr(WORKLOADS.iter().map(|&w| Json::from(w)).collect()),
        ),
        (
            "configs",
            Json::Arr(machines().map(|m| Json::from(m.name)).to_vec()),
        ),
        ("rows", Json::Arr(cells.iter().map(cell_json).collect())),
        ("split_port_speedup", Json::Arr(speedup_rows)),
        ("wall_seconds", Json::from(start.elapsed().as_secs_f64())),
    ]);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "Memory-backend sweep at scale {}: {} workloads x {} backends x {} machines",
        scale_label(opts.scale),
        WORKLOADS.len(),
        BackendConfig::ALL.len(),
        machines().len()
    );
    let _ = writeln!(
        text,
        "\nSplit-port speedup ({base_name} cycles / {split_name} cycles):\n"
    );
    let _ = writeln!(text, "{}", table.render());
    for cell in cells.iter().filter(|c| !c.conserved) {
        let _ = writeln!(
            text,
            "CONSERVATION VIOLATION: {} {} {}: useful {} + stalls {} != cycles {}",
            cell.workload,
            cell.backend.label(),
            cell.config,
            cell.recorder.useful_cycles(),
            cell.recorder.total_stall_cycles(),
            cell.stats.cycles
        );
    }

    BackendsBenchRun { text, doc, failed }
}

/// The `bench_backends` binary's `main`: runs [`backends_bench`] with
/// env-derived options, prints the report, writes `BENCH_backends.json`
/// when `ARL_JSON` is set, and exits non-zero if any cell violates
/// stall conservation.
pub fn run_backends_main() {
    let opts = ExperimentOptions::from_env();
    let run = backends_bench(&opts);
    print!("{}", run.text);
    if std::env::var_os("ARL_JSON").is_some() {
        match write_named_json("BENCH_backends.json", &run.doc) {
            Ok(path) => eprintln!("[arl-bench] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[arl-bench] failed to write ARL_JSON: {e}");
                std::process::exit(1);
            }
        }
    }
    if run.failed {
        eprintln!("[arl-bench] backend sweep FAILED: a probed cell broke stall conservation");
        std::process::exit(1);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use arl_workloads::Scale;

    #[test]
    fn backend_sweep_covers_every_cell_and_conserves_stalls() {
        let opts = ExperimentOptions::new(Scale::tiny(), 2);
        let run = backends_bench(&opts);
        assert!(!run.failed, "stall conservation must hold on every backend");
        assert_eq!(
            run.doc.get("schema").and_then(Json::as_str),
            Some(BACKENDS_SCHEMA)
        );
        let rows = match run.doc.get("rows") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("rows missing: {other:?}"),
        };
        assert_eq!(
            rows.len(),
            WORKLOADS.len() * BackendConfig::ALL.len() * machines().len()
        );
        for row in rows {
            assert_eq!(row.get("conserved"), Some(&Json::Bool(true)));
            let backend = row
                .get("backend")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            let stacked = row.get("stacked").unwrap();
            let expects_device = matches!(
                BackendConfig::from_label(&backend).unwrap(),
                BackendConfig::StackedCache | BackendConfig::StackedMemCache | BackendConfig::Burst
            );
            assert_eq!(
                *stacked != Json::Null,
                expects_device,
                "backend {backend} device-stats presence is wrong"
            );
        }
        let speedups = match run.doc.get("split_port_speedup") {
            Some(Json::Arr(rows)) => rows,
            other => panic!("speedup table missing: {other:?}"),
        };
        assert_eq!(speedups.len(), BackendConfig::ALL.len());
        for row in speedups {
            let geomean = row.get("geomean").and_then(Json::as_f64).unwrap();
            assert!(geomean > 0.0, "speedups must be positive");
        }
    }
}
