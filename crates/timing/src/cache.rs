//! Set-associative caches and the two-level memory hierarchy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use arl_sim::SourceError;

use crate::config::{BackendConfig, CacheConfig, MachineConfig, PortModel};
use crate::fault::{FaultKind, TimingFault};
use crate::state::{corrupt, StateReader, StateWriter};

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`. A structure that saw zero traffic reports
    /// 0.0, not `NaN` (or a fictitious 1.0): the backend sweep serializes
    /// this value for structures a workload may never touch.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A lock-up-free set-associative cache (tags only; data never matters to
/// timing) with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set][way] = (tag, last_use)`; `u64::MAX` tag = invalid.
    sets: Vec<Vec<(u64, u64)>>,
    use_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(config.assoc > 0 && config.size_bytes > 0);
        let lines = config.size_bytes / config.line_bytes;
        let num_sets = (lines as usize / config.assoc).max(1);
        Cache {
            config,
            sets: vec![vec![(u64::MAX, 0); config.assoc]; num_sets],
            use_clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.config.line_bytes;
        let set = (block % self.sets.len() as u64) as usize;
        let tag = block / self.sets.len() as u64;
        (set, tag)
    }

    /// Accesses `addr`: returns `true` on hit. On miss the line is filled
    /// (lock-up-free: the fill itself costs no extra port time here; the
    /// latency is charged by [`MemSystem`]).
    pub fn access(&mut self, addr: u64) -> bool {
        self.use_clock += 1;
        let clock = self.use_clock;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|(t, _)| *t == tag) {
            way.1 = clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Fill into the LRU way; an explicit scan keeps a zero-assoc
        // config (which `CacheConfig` forbids anyway) from panicking.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (way, &(_, last)) in set.iter().enumerate() {
            if last < oldest {
                oldest = last;
                victim = way;
            }
        }
        if let Some(slot) = set.get_mut(victim) {
            *slot = (tag, clock);
        }
        false
    }

    /// Probes without updating LRU or filling (for MSHR pre-checks, tests
    /// and diagnostics).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|(t, _)| *t == tag)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Serializes tags, LRU clocks and counters (sharded-replay support).
    fn write_state(&self, w: &mut StateWriter) {
        w.u64(self.use_clock);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u32(self.sets.len() as u32);
        w.u32(self.config.assoc as u32);
        for set in &self.sets {
            for &(tag, last_use) in set {
                w.u64(tag);
                w.u64(last_use);
            }
        }
    }

    /// Restores tags, LRU clocks and counters; the geometry must match the
    /// configuration this cache was built from.
    fn read_state(&mut self, r: &mut StateReader) -> Result<(), SourceError> {
        self.use_clock = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        if r.len32()? != self.sets.len() || r.len32()? != self.config.assoc {
            return Err(corrupt("cache geometry mismatch"));
        }
        for set in &mut self.sets {
            for way in set {
                way.0 = r.u64()?;
                way.1 = r.u64()?;
            }
        }
        Ok(())
    }
}

/// Which first-level structure an access is routed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Route {
    /// The multi-ported L1 data cache (LSQ side).
    DataCache,
    /// The Local Variable Cache (LVAQ side).
    Lvc,
}

/// Per-cycle bandwidth state for one first-level structure, interpreting
/// its [`PortModel`].
#[derive(Clone, Debug)]
struct BandwidthState {
    model: PortModel,
    line_bytes: u64,
    /// TruePorts: accesses started this cycle.
    used: usize,
    /// Banked: bitmask of banks busy this cycle.
    banks_busy: u64,
    /// LineBuffered: array port used this cycle / buffer used this cycle.
    array_used: bool,
    buffer_used: bool,
    /// LineBuffered: the line held by the buffer (persistent).
    buffered_line: u64,
    /// Conflicts observed (denied access starts).
    conflicts: u64,
    /// Accesses that claimed bandwidth this cycle (all port models).
    claims_this_cycle: usize,
}

impl BandwidthState {
    fn new(config: &CacheConfig) -> BandwidthState {
        BandwidthState {
            model: config.port_model,
            line_bytes: config.line_bytes,
            used: 0,
            banks_busy: 0,
            array_used: false,
            buffer_used: false,
            buffered_line: u64::MAX,
            conflicts: 0,
            claims_this_cycle: 0,
        }
    }

    fn new_cycle(&mut self) {
        self.used = 0;
        self.banks_busy = 0;
        self.array_used = false;
        self.buffer_used = false;
        self.claims_this_cycle = 0;
    }

    fn bank_of(&self, addr: u64) -> u64 {
        let banks = match self.model {
            PortModel::Banked { banks } => banks as u64,
            _ => 1,
        };
        (addr / self.line_bytes) % banks
    }

    /// Whether an access to `addr` can start this cycle.
    fn available(&self, addr: u64, ports: usize) -> bool {
        match self.model {
            PortModel::TruePorts(_) => self.used < ports,
            PortModel::Banked { .. } => self.banks_busy & (1 << self.bank_of(addr)) == 0,
            PortModel::LineBuffered => {
                if addr / self.line_bytes == self.buffered_line {
                    !self.buffer_used
                } else {
                    !self.array_used
                }
            }
        }
    }

    /// Serializes the per-cycle and persistent bandwidth fields. The
    /// per-cycle ones matter because a shard boundary cuts *mid-cycle*:
    /// claims already made in the boundary cycle must survive the handoff.
    fn write_state(&self, w: &mut StateWriter) {
        w.usize(self.used);
        w.u64(self.banks_busy);
        w.bool(self.array_used);
        w.bool(self.buffer_used);
        w.u64(self.buffered_line);
        w.u64(self.conflicts);
        w.usize(self.claims_this_cycle);
    }

    fn read_state(&mut self, r: &mut StateReader) -> Result<(), SourceError> {
        self.used = r.usize()?;
        self.banks_busy = r.u64()?;
        self.array_used = r.bool()?;
        self.buffer_used = r.bool()?;
        self.buffered_line = r.u64()?;
        self.conflicts = r.u64()?;
        self.claims_this_cycle = r.usize()?;
        Ok(())
    }

    /// Claims the bandwidth for an access to `addr`.
    fn claim(&mut self, addr: u64) {
        self.claims_this_cycle += 1;
        match self.model {
            PortModel::TruePorts(_) => self.used += 1,
            PortModel::Banked { .. } => self.banks_busy |= 1 << self.bank_of(addr),
            PortModel::LineBuffered => {
                if addr / self.line_bytes == self.buffered_line {
                    self.buffer_used = true;
                } else {
                    self.array_used = true;
                    self.buffered_line = addr / self.line_bytes;
                }
            }
        }
    }
}

/// Pops every release cycle due at or before `now`.
#[inline]
fn release_due(heap: &mut BinaryHeap<Reverse<u64>>, now: u64) {
    while let Some(&Reverse(release)) = heap.peek() {
        if release > now {
            break;
        }
        heap.pop();
    }
}

/// Access latency of the die-stacked DRAM device (cycles), roughly half
/// the off-chip `memory_latency` of Table 4 — the ratio Bakhshalipour et
/// al. report for on-package stacks.
const STACKED_LATENCY: u64 = 25;
/// Page granularity of the static stacked/off-chip interleave used by the
/// flat-memory and memcache modes (4 KB pages; even pages are on-stack).
const STACKED_PAGE_BYTES: u64 = 4096;
/// Die-stacked cache geometry: 8 MB, 16-way (half capacity in memcache
/// mode, where the other half of the stack serves as flat memory).
const STACKED_CACHE_BYTES: u64 = 8 * 1024 * 1024;
const STACKED_CACHE_ASSOC: usize = 16;
/// Burst-friendly device row size (2 KB open rows).
const BURST_ROW_BYTES: u64 = 2048;
/// Cost of opening a row (first access of a run).
const BURST_OPEN_LATENCY: u64 = 50;
/// Cost of the first same-row access after the open; each further access
/// in the run gets [`BURST_STEP`] cheaper down to [`BURST_FLOOR`].
const BURST_HIT_LATENCY: u64 = 24;
const BURST_STEP: u64 = 4;
const BURST_FLOOR: u64 = 8;

/// Whether a static page-interleaved address lands in the on-stack half
/// of flat memory.
#[inline]
fn on_stack_page(addr: u64) -> bool {
    (addr / STACKED_PAGE_BYTES).is_multiple_of(2)
}

/// One open-row stream of the burst-friendly device. Streams are keyed by
/// route, so LVAQ (stack-region) and LSQ traffic each keep their own open
/// row — the layout that rewards ARPT's region segregation. State changes
/// only on accesses (never with time), which keeps the event core's
/// fast-forward proof intact.
#[derive(Clone, Debug)]
struct RowStream {
    /// Currently open row (`u64::MAX` = none).
    open_row: u64,
    /// Same-row accesses since the open (0 right after opening).
    run: u64,
    /// `hits` = accesses served from the open row, `misses` = row opens.
    stats: CacheStats,
}

impl RowStream {
    fn new() -> RowStream {
        RowStream {
            open_row: u64::MAX,
            run: 0,
            stats: CacheStats::default(),
        }
    }

    /// Latency of one access, advancing the run-length state.
    fn access(&mut self, addr: u64) -> u64 {
        let row = addr / BURST_ROW_BYTES;
        if row == self.open_row {
            self.run += 1;
            self.stats.hits += 1;
            BURST_HIT_LATENCY
                .saturating_sub(BURST_STEP * (self.run - 1))
                .max(BURST_FLOOR)
        } else {
            self.open_row = row;
            self.run = 0;
            self.stats.misses += 1;
            BURST_OPEN_LATENCY
        }
    }

    fn write_state(&self, w: &mut StateWriter) {
        w.u64(self.open_row);
        w.u64(self.run);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
    }

    fn read_state(&mut self, r: &mut StateReader) -> Result<(), SourceError> {
        self.open_row = r.u64()?;
        self.run = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        Ok(())
    }
}

/// Everything beyond the first-level structures: the shared L2 plus the
/// [`BackendConfig`]-selected device behind it. [`Backend::beyond_l1`] is
/// the single seam the rest of [`MemSystem`] drives — both timing cores
/// and every port model compose with any backend unchanged.
#[derive(Clone, Debug)]
struct Backend {
    kind: BackendConfig,
    l2: Cache,
    memory_latency: u64,
    /// The die-stacked cache (stacked-cache and memcache modes).
    stacked: Option<Cache>,
    /// Per-route open-row streams (burst mode): `[DataCache, Lvc]`.
    streams: Option<[RowStream; 2]>,
}

impl Backend {
    fn new(config: &MachineConfig) -> Backend {
        let kind = config.backend;
        let stacked = match kind {
            BackendConfig::StackedCache | BackendConfig::StackedMemCache => {
                let size = if kind == BackendConfig::StackedMemCache {
                    STACKED_CACHE_BYTES / 2
                } else {
                    STACKED_CACHE_BYTES
                };
                Some(Cache::new(CacheConfig {
                    size_bytes: size,
                    assoc: STACKED_CACHE_ASSOC,
                    line_bytes: config.l2.line_bytes,
                    hit_latency: STACKED_LATENCY,
                    ports: usize::MAX,
                    port_model: PortModel::TruePorts(usize::MAX),
                }))
            }
            _ => None,
        };
        let streams = (kind == BackendConfig::Burst).then(|| [RowStream::new(), RowStream::new()]);
        Backend {
            kind,
            l2: Cache::new(config.l2.sanitized("l2")),
            memory_latency: config.memory_latency,
            stacked,
            streams,
        }
    }

    /// Latency beyond L1 for an access that missed the first level: the
    /// L2 lookup plus — on an L2 miss — whatever the configured device
    /// charges. The baseline arm reproduces the pre-backend chain exactly
    /// (`l2_hit + memory_latency` on a miss).
    fn beyond_l1(&mut self, route: Route, addr: u64) -> u64 {
        let l2_latency = self.l2.config().hit_latency;
        if self.l2.access(addr) {
            return l2_latency;
        }
        l2_latency
            + match self.kind {
                BackendConfig::Baseline => self.memory_latency,
                BackendConfig::StackedMemory => {
                    if on_stack_page(addr) {
                        STACKED_LATENCY
                    } else {
                        self.memory_latency
                    }
                }
                BackendConfig::StackedCache => STACKED_LATENCY + self.stacked_miss_extra(addr),
                BackendConfig::StackedMemCache => {
                    if on_stack_page(addr) {
                        STACKED_LATENCY
                    } else {
                        STACKED_LATENCY + self.stacked_miss_extra(addr)
                    }
                }
                BackendConfig::Burst => match &mut self.streams {
                    Some(streams) => streams[route_index(route)].access(addr),
                    None => self.memory_latency,
                },
            }
    }

    /// Off-chip penalty when the stacked cache misses (0 on a hit).
    fn stacked_miss_extra(&mut self, addr: u64) -> u64 {
        match &mut self.stacked {
            Some(cache) => {
                if cache.access(addr) {
                    0
                } else {
                    self.memory_latency
                }
            }
            None => self.memory_latency,
        }
    }

    fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Hit/miss counters of the backend device, when it has any: the
    /// stacked cache's fills, or the burst device's row hits vs opens
    /// (summed over both streams). `None` for the stateless backends.
    fn stacked_stats(&self) -> Option<CacheStats> {
        if let Some(cache) = &self.stacked {
            return Some(cache.stats());
        }
        self.streams.as_ref().map(|streams| CacheStats {
            hits: streams[0].stats.hits + streams[1].stats.hits,
            misses: streams[0].stats.misses + streams[1].stats.misses,
        })
    }

    /// Serializes the backend identity and device state. The identity tag
    /// comes first so a mismatched import fails with a clear error before
    /// any geometry-dependent field is touched.
    fn write_state(&self, w: &mut StateWriter) {
        w.u8(self.kind.tag());
        self.l2.write_state(w);
        if let Some(cache) = &self.stacked {
            cache.write_state(w);
        }
        if let Some(streams) = &self.streams {
            for stream in streams {
                stream.write_state(w);
            }
        }
    }

    fn read_state(&mut self, r: &mut StateReader) -> Result<(), SourceError> {
        let tag = r.u8()?;
        let exported = BackendConfig::from_tag(tag)
            .ok_or_else(|| corrupt(&format!("unknown memory backend tag {tag}")))?;
        if exported != self.kind {
            return Err(corrupt(&format!(
                "state blob was exported under backend '{}', this run uses '{}'",
                exported.label(),
                self.kind.label()
            )));
        }
        self.l2.read_state(r)?;
        if let Some(cache) = &mut self.stacked {
            cache.read_state(r)?;
        }
        if let Some(streams) = &mut self.streams {
            for stream in streams {
                stream.read_state(r)?;
            }
        }
        Ok(())
    }
}

/// Stream index of a route (burst-mode open-row tracking).
#[inline]
fn route_index(route: Route) -> usize {
    match route {
        Route::DataCache => 0,
        Route::Lvc => 1,
    }
}

/// The data-side memory hierarchy: L1 data cache (+ optional LVC), a
/// shared L2, and main memory, with per-cycle bandwidth accounting and
/// bounded MSHRs for the first-level structures.
#[derive(Clone, Debug)]
pub struct MemSystem {
    dcache: Cache,
    lvc: Option<Cache>,
    backend: Backend,
    dcache_bw: BandwidthState,
    lvc_bw: Option<BandwidthState>,
    mshr_cap: usize,
    /// Release cycles of in-flight misses per route (min-heaps, so the
    /// per-cycle release sweep and the next-event query are O(1) when
    /// nothing is due).
    dcache_mshrs: BinaryHeap<Reverse<u64>>,
    lvc_mshrs: BinaryHeap<Reverse<u64>>,
    /// LVC-routed accesses served by the data cache because the machine
    /// has no LVC (dispatch steering on a conventional config).
    steer_fallbacks: u64,
    /// Injected port-layer faults (blackouts, latency spikes), empty in
    /// normal simulation.
    port_faults: Vec<TimingFault>,
    /// Ids of port faults whose active window has been entered.
    faults_triggered: Vec<u32>,
    now: u64,
}

impl MemSystem {
    /// Builds the hierarchy described by `config`. Degenerate port/bank
    /// counts are clamped with a warning ([`CacheConfig::sanitized`])
    /// rather than silently aliasing banks.
    pub fn new(config: &MachineConfig) -> MemSystem {
        let dcache_cfg = config.dcache.sanitized("dcache");
        let lvc_cfg = config.lvc.map(|c| c.sanitized("lvc"));
        MemSystem {
            dcache: Cache::new(dcache_cfg),
            lvc: lvc_cfg.map(Cache::new),
            backend: Backend::new(config),
            dcache_bw: BandwidthState::new(&dcache_cfg),
            lvc_bw: lvc_cfg.as_ref().map(BandwidthState::new),
            mshr_cap: config.mshrs,
            dcache_mshrs: BinaryHeap::new(),
            lvc_mshrs: BinaryHeap::new(),
            steer_fallbacks: 0,
            port_faults: config
                .faults
                .iter()
                .filter(|f| f.is_port_fault())
                .copied()
                .collect(),
            faults_triggered: Vec::new(),
            now: 0,
        }
    }

    /// The structure that actually serves `route`: [`Route::Lvc`] degrades
    /// to the data cache on a machine without an LVC.
    fn effective_route(&self, route: Route) -> Route {
        match route {
            Route::Lvc if self.lvc.is_none() => Route::DataCache,
            r => r,
        }
    }

    /// Starts a new cycle: all per-cycle bandwidth becomes free and
    /// completed misses release their MSHRs.
    pub fn new_cycle(&mut self) {
        self.now += 1;
        let now = self.now;
        self.dcache_bw.new_cycle();
        if let Some(bw) = &mut self.lvc_bw {
            bw.new_cycle();
        }
        release_due(&mut self.dcache_mshrs, now);
        release_due(&mut self.lvc_mshrs, now);
        if !self.port_faults.is_empty() {
            for fault in &self.port_faults {
                let (start, len) = match fault.kind {
                    FaultKind::PortBlackout {
                        start_cycle,
                        cycles,
                        ..
                    }
                    | FaultKind::LatencySpike {
                        start_cycle,
                        cycles,
                        ..
                    } => (start_cycle, cycles),
                    FaultKind::ArptSoftError { .. } => continue,
                };
                let active = now >= start && now < start.saturating_add(len);
                if active && !self.faults_triggered.contains(&fault.id) {
                    self.faults_triggered.push(fault.id);
                }
            }
        }
    }

    /// Whether a [`FaultKind::PortBlackout`] on `route` (after LVC
    /// degradation) is active this cycle.
    fn blacked_out(&self, effective: Route) -> bool {
        self.port_faults.iter().any(|f| match f.kind {
            FaultKind::PortBlackout {
                route,
                start_cycle,
                cycles,
            } => {
                self.effective_route(route) == effective
                    && self.now >= start_cycle
                    && self.now < start_cycle.saturating_add(cycles)
            }
            _ => false,
        })
    }

    /// Summed [`FaultKind::LatencySpike`] extra latency on `route` (after
    /// LVC degradation) for an access started this cycle.
    fn spike_extra(&self, effective: Route) -> u64 {
        self.port_faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::LatencySpike {
                    route,
                    start_cycle,
                    cycles,
                    extra,
                } if self.effective_route(route) == effective
                    && self.now >= start_cycle
                    && self.now < start_cycle.saturating_add(cycles) =>
                {
                    extra
                }
                _ => 0,
            })
            .sum()
    }

    /// Ids of injected port faults whose active window was entered during
    /// the run (attribution for the fault campaign).
    pub fn faults_triggered(&self) -> &[u32] {
        &self.faults_triggered
    }

    /// The earliest cycle strictly after `now` at which this memory
    /// system's observable availability can change on its own: an MSHR
    /// release (miss return), or a fault window opening or closing. The
    /// event-driven core may fast-forward a provably idle span up to (but
    /// not past) this cycle; `None` means nothing is scheduled.
    pub fn next_event_after(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |at: u64| {
            if at > now {
                next = Some(next.map_or(at, |n| n.min(at)));
            }
        };
        // `new_cycle` releases slots due `<= now`, so the heap minimum (if
        // any) frees — and the miss data returns — during that cycle.
        for heap in [&self.dcache_mshrs, &self.lvc_mshrs] {
            if let Some(&Reverse(release)) = heap.peek() {
                consider(release);
            }
        }
        for fault in &self.port_faults {
            let (start, len) = match fault.kind {
                FaultKind::PortBlackout {
                    start_cycle,
                    cycles,
                    ..
                }
                | FaultKind::LatencySpike {
                    start_cycle,
                    cycles,
                    ..
                } => (start_cycle, cycles),
                FaultKind::ArptSoftError { .. } => continue,
            };
            consider(start);
            consider(start.saturating_add(len));
        }
        next
    }

    /// Jumps the memory system to cycle `to`, replicating the per-cycle
    /// effects of `to - now` idle [`MemSystem::new_cycle`] calls in one
    /// step. Only valid across spans with no accesses and no fault-window
    /// boundaries (the event-driven core guarantees both): bandwidth state
    /// is already idle, so only the clock and elapsed MSHR releases move.
    pub fn fast_forward(&mut self, to: u64) {
        debug_assert!(to >= self.now, "memory time never moves backwards");
        self.now = to;
        release_due(&mut self.dcache_mshrs, to);
        release_due(&mut self.lvc_mshrs, to);
    }

    /// Whether an access to `addr` could start on `route` this cycle
    /// (bandwidth only; MSHR availability is checked at access time, since
    /// it only matters for misses). [`Route::Lvc`] on a machine without an
    /// LVC is answered for the data cache, which serves such accesses.
    pub fn port_available(&self, route: Route, addr: u64) -> bool {
        if !self.port_faults.is_empty() && self.blacked_out(self.effective_route(route)) {
            return false;
        }
        match self.effective_route(route) {
            Route::DataCache => self.dcache_bw.available(addr, self.dcache.config().ports),
            // `effective_route` only answers `Lvc` when the machine has
            // one; the data-cache arm is an unreachable safety net.
            Route::Lvc => match (self.lvc.as_ref(), self.lvc_bw.as_ref()) {
                (Some(lvc), Some(bw)) => bw.available(addr, lvc.config().ports),
                _ => self.dcache_bw.available(addr, self.dcache.config().ports),
            },
        }
    }

    /// Whether an access to `addr` could be *rejected for lack of an MSHR*
    /// this cycle: it would miss and every MSHR is occupied. Read-only (no
    /// LRU update, no bandwidth claim) — used by the stall-attribution
    /// probe.
    pub fn mshr_would_block(&self, route: Route, addr: u64) -> bool {
        let (cache, mshrs) = match self.effective_route(route) {
            Route::DataCache => (&self.dcache, &self.dcache_mshrs),
            Route::Lvc => match self.lvc.as_ref() {
                Some(lvc) => (lvc, &self.lvc_mshrs),
                None => (&self.dcache, &self.dcache_mshrs),
            },
        };
        !cache.probe(addr) && mshrs.len() >= self.mshr_cap
    }

    /// Attempts the access; returns its total latency, or `None` if it
    /// would miss and no MSHR is free (the caller retries next cycle).
    ///
    /// [`Route::Lvc`] on a machine without an LVC falls back to the data
    /// cache (counted in [`Self::steer_fallbacks`]) — dispatch-stage
    /// steering may legitimately pick the LVC route on a config that never
    /// built one.
    ///
    /// Callers must check [`Self::port_available`] first; debug builds
    /// assert it (the release hot loop skips the duplicate probe).
    pub fn access(&mut self, route: Route, addr: u64) -> Option<u64> {
        debug_assert!(
            self.port_available(route, addr),
            "no bandwidth on {route:?}"
        );
        let route = match self.effective_route(route) {
            Route::DataCache if route == Route::Lvc => {
                self.steer_fallbacks += 1;
                Route::DataCache
            }
            r => r,
        };
        // MSHR pre-check: a miss needs a free slot.
        let (cache, mshrs) = match route {
            Route::DataCache => (&self.dcache, &self.dcache_mshrs),
            Route::Lvc => match self.lvc.as_ref() {
                Some(lvc) => (lvc, &self.lvc_mshrs),
                None => (&self.dcache, &self.dcache_mshrs),
            },
        };
        let will_hit = cache.probe(addr);
        if !will_hit && mshrs.len() >= self.mshr_cap {
            match route {
                Route::DataCache => self.dcache_bw.conflicts += 1,
                Route::Lvc => {
                    if let Some(bw) = &mut self.lvc_bw {
                        bw.conflicts += 1;
                    }
                }
            }
            return None;
        }

        let (l1_hit, l1_latency) = match route {
            Route::DataCache => {
                self.dcache_bw.claim(addr);
                (self.dcache.access(addr), self.dcache.config().hit_latency)
            }
            Route::Lvc => match (self.lvc.as_mut(), self.lvc_bw.as_mut()) {
                (Some(lvc), Some(bw)) => {
                    bw.claim(addr);
                    (lvc.access(addr), lvc.config().hit_latency)
                }
                _ => {
                    self.dcache_bw.claim(addr);
                    (self.dcache.access(addr), self.dcache.config().hit_latency)
                }
            },
        };
        let spike = if self.port_faults.is_empty() {
            0
        } else {
            self.spike_extra(route)
        };
        if l1_hit {
            return Some(l1_latency + spike);
        }
        let total = spike + l1_latency + self.backend.beyond_l1(route, addr);
        let release = self.now + total;
        match route {
            Route::DataCache => self.dcache_mshrs.push(Reverse(release)),
            Route::Lvc => self.lvc_mshrs.push(Reverse(release)),
        }
        Some(total)
    }

    /// L1 data-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// LVC statistics, if present.
    pub fn lvc_stats(&self) -> Option<CacheStats> {
        self.lvc.as_ref().map(Cache::stats)
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.backend.l2_stats()
    }

    /// Hit/miss counters of the configured backend device (stacked cache
    /// fills, or burst row hits vs row opens); `None` when the backend
    /// keeps no such state (baseline, stacked flat memory).
    pub fn stacked_stats(&self) -> Option<CacheStats> {
        self.backend.stacked_stats()
    }

    /// The memory backend this hierarchy was built with.
    pub fn backend_kind(&self) -> BackendConfig {
        self.backend.kind
    }

    /// Bandwidth-denied access starts on the data cache (bank conflicts,
    /// MSHR exhaustion).
    pub fn dcache_conflicts(&self) -> u64 {
        self.dcache_bw.conflicts
    }

    /// LVC-routed accesses served by the data cache because no LVC exists.
    pub fn steer_fallbacks(&self) -> u64 {
        self.steer_fallbacks
    }

    /// Bandwidth claims made so far this cycle, as `(dcache, lvc)`; the LVC
    /// count is 0 on a machine without one. Feeds the per-port utilization
    /// histograms of the observability probe.
    pub fn claims_this_cycle(&self) -> (usize, usize) {
        (
            self.dcache_bw.claims_this_cycle,
            self.lvc_bw.as_ref().map_or(0, |bw| bw.claims_this_cycle),
        )
    }

    /// Serializes the complete hierarchy state for sharded replay: the
    /// backend identity tag, clock, cache arrays, backend device state,
    /// bandwidth accounting (including the boundary cycle's claims — the
    /// cut is mid-cycle), MSHR release heaps in a canonical sorted form,
    /// and fault attribution. `port_faults`, latencies and MSHR capacity
    /// are configuration, rebuilt by [`MemSystem::new`]. The export is
    /// per-backend because device state *is* timing state: resuming a
    /// stacked-cache run without its fill map (or a burst run without its
    /// open rows) would silently change every post-resume latency.
    pub(crate) fn write_state(&self, w: &mut StateWriter) {
        w.u64(self.now);
        self.dcache.write_state(w);
        match &self.lvc {
            Some(lvc) => {
                w.u8(1);
                lvc.write_state(w);
            }
            None => w.u8(0),
        }
        self.backend.write_state(w);
        self.dcache_bw.write_state(w);
        match &self.lvc_bw {
            Some(bw) => {
                w.u8(1);
                bw.write_state(w);
            }
            None => w.u8(0),
        }
        w.u64_list(&heap_sorted(&self.dcache_mshrs));
        w.u64_list(&heap_sorted(&self.lvc_mshrs));
        w.u64(self.steer_fallbacks);
        w.u32(self.faults_triggered.len() as u32);
        for &id in &self.faults_triggered {
            w.u32(id);
        }
    }

    /// Restores state serialized by [`MemSystem::write_state`] into a
    /// hierarchy freshly built from the *same* configuration.
    pub(crate) fn read_state(&mut self, r: &mut StateReader) -> Result<(), SourceError> {
        self.now = r.u64()?;
        self.dcache.read_state(r)?;
        if r.bool()? != self.lvc.is_some() {
            return Err(corrupt("LVC presence mismatch"));
        }
        if let Some(lvc) = &mut self.lvc {
            lvc.read_state(r)?;
        }
        self.backend.read_state(r)?;
        self.dcache_bw.read_state(r)?;
        if r.bool()? != self.lvc_bw.is_some() {
            return Err(corrupt("LVC bandwidth presence mismatch"));
        }
        if let Some(bw) = &mut self.lvc_bw {
            bw.read_state(r)?;
        }
        self.dcache_mshrs = r.u64_list()?.into_iter().map(Reverse).collect();
        self.lvc_mshrs = r.u64_list()?.into_iter().map(Reverse).collect();
        self.steer_fallbacks = r.u64()?;
        let n = r.len32()?;
        self.faults_triggered.clear();
        for _ in 0..n {
            self.faults_triggered.push(r.u32()?);
        }
        Ok(())
    }
}

/// A min-heap's contents as an ascending vector (canonical MSHR form).
fn heap_sorted(heap: &BinaryHeap<Reverse<u64>>) -> Vec<u64> {
    let mut v: Vec<u64> = heap.iter().map(|&Reverse(at)| at).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn small_cache(assoc: usize) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc,
            line_bytes: 32,
            hit_latency: 1,
            ports: 1,
            port_model: PortModel::TruePorts(1),
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(2);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x101f), "same 32-byte line");
        assert!(!c.access(0x1020), "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_replacement() {
        // 128 B, 2-way, 32 B lines → 2 sets. Set 0 holds even blocks.
        let mut c = small_cache(2);
        c.access(0); // set 0, tag 0
        c.access(64); // set 0, tag 1
        assert!(c.probe(0));
        c.access(0); // touch tag 0 (now MRU)
        c.access(128); // third tag in set 0 → evicts tag 1
        assert!(c.probe(0), "MRU survives");
        assert!(!c.probe(64), "LRU evicted");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = small_cache(1); // 4 sets
        assert!(!c.access(0));
        assert!(!c.access(128)); // same set, different tag
        assert!(!c.access(0), "conflict evicted the first line");
    }

    #[test]
    fn hierarchy_latencies() {
        let config = MachineConfig::baseline_2_0();
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        // Cold: L1 miss + L2 miss → 2 + 12 + 50.
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(64));
        m.new_cycle();
        // Warm L1.
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(2));
        assert_eq!(m.dcache_stats().accesses(), 2);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let config = MachineConfig::baseline_2_0();
        let mut m = MemSystem::new(&config);
        // Lines that conflict in L1 (64KB 2-way, 32B lines → 1024 sets;
        // a 32KB stride maps to the same set) but coexist in L2 (4-way).
        let a = 0x2000_0000u64;
        let stride = 32 * 1024;
        m.new_cycle();
        m.access(Route::DataCache, a);
        m.access(Route::DataCache, a + stride);
        m.new_cycle();
        m.access(Route::DataCache, a + 2 * stride); // evicts `a` from L1
        m.new_cycle();
        assert_eq!(
            m.access(Route::DataCache, a),
            Some(2 + 12),
            "L1 miss, L2 hit"
        );
    }

    #[test]
    fn true_ports_are_consumed_per_cycle() {
        let config = MachineConfig::baseline_2_0(); // 2 ports
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        assert!(m.port_available(Route::DataCache, 0));
        m.access(Route::DataCache, 0);
        m.access(Route::DataCache, 64);
        assert!(!m.port_available(Route::DataCache, 128));
        // No LVC on a conventional machine: the LVC route degrades to the
        // data cache, whose ports are exhausted this cycle...
        assert!(!m.port_available(Route::Lvc, 0));
        m.new_cycle();
        assert!(m.port_available(Route::DataCache, 128));
        // ...and free again next cycle.
        assert!(m.port_available(Route::Lvc, 0));
    }

    #[test]
    fn lvc_route_without_lvc_falls_back_to_dcache() {
        // Dispatch steering can pick Route::Lvc on a machine that never
        // built an LVC; the access must be served by the data cache, not
        // panic.
        let config = MachineConfig::baseline_2_0();
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        let sp = 0x7fff_e000u64;
        assert!(m.port_available(Route::Lvc, sp));
        assert_eq!(m.access(Route::Lvc, sp), Some(2 + 12 + 50), "cold dcache");
        m.new_cycle();
        assert_eq!(m.access(Route::Lvc, sp), Some(2), "warm dcache hit");
        assert_eq!(m.steer_fallbacks(), 2);
        assert_eq!(m.dcache_stats().accesses(), 2);
        assert!(m.lvc_stats().is_none());
        assert!(!m.mshr_would_block(Route::Lvc, sp), "line is resident");
    }

    #[test]
    fn banked_cache_conflicts_on_same_bank() {
        let mut config = MachineConfig::baseline_2_0();
        config.dcache = config.dcache.with_banks(4);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        // Two addresses in the same bank (same line index mod 4).
        assert!(m.port_available(Route::DataCache, 0));
        m.access(Route::DataCache, 0);
        assert!(
            !m.port_available(Route::DataCache, 4 * 32),
            "bank 0 is busy"
        );
        // A different bank is fine; up to 4 distinct banks per cycle.
        assert!(m.port_available(Route::DataCache, 32));
        m.access(Route::DataCache, 32);
        m.access(Route::DataCache, 64);
        m.access(Route::DataCache, 96);
        assert!(!m.port_available(Route::DataCache, 128), "all banks busy");
    }

    #[test]
    fn line_buffer_serves_repeat_lines_for_free() {
        let mut config = MachineConfig::baseline_2_0();
        config.dcache = config.dcache.with_line_buffer();
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        m.access(Route::DataCache, 0x1000); // array port + installs line
        assert!(
            m.port_available(Route::DataCache, 0x1008),
            "same line → buffer"
        );
        m.access(Route::DataCache, 0x1008);
        assert!(
            !m.port_available(Route::DataCache, 0x1010),
            "buffer also used now"
        );
        assert!(
            !m.port_available(Route::DataCache, 0x2000),
            "array port used"
        );
        m.new_cycle();
        // Buffer persists across cycles.
        assert!(m.port_available(Route::DataCache, 0x1018));
    }

    #[test]
    fn mshrs_bound_outstanding_misses() {
        let mut config = MachineConfig::baseline_2_0();
        config.mshrs = 1;
        config.dcache.ports = 4;
        config.dcache.port_model = PortModel::TruePorts(4);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        assert!(m.access(Route::DataCache, 0x2000_0000).is_some()); // miss
        assert_eq!(
            m.access(Route::DataCache, 0x3000_0000),
            None,
            "second miss has no MSHR"
        );
        // A hit is still fine.
        assert_eq!(m.access(Route::DataCache, 0x2000_0010), Some(2));
        // After the miss resolves (64 cycles), the MSHR frees.
        for _ in 0..64 {
            m.new_cycle();
        }
        assert!(m.access(Route::DataCache, 0x3000_0000).is_some());
    }

    #[test]
    fn port_blackout_denies_the_window_and_is_attributed() {
        let mut config = MachineConfig::baseline_2_0();
        config.faults.push(TimingFault {
            id: 7,
            kind: FaultKind::PortBlackout {
                route: Route::DataCache,
                start_cycle: 2,
                cycles: 2,
            },
        });
        let mut m = MemSystem::new(&config);
        m.new_cycle(); // cycle 1: before the window
        assert!(m.port_available(Route::DataCache, 0));
        assert!(m.faults_triggered().is_empty());
        m.new_cycle(); // cycle 2: blacked out
        assert!(!m.port_available(Route::DataCache, 0));
        assert_eq!(m.faults_triggered(), &[7]);
        m.new_cycle(); // cycle 3: still blacked out
        assert!(!m.port_available(Route::DataCache, 0));
        m.new_cycle(); // cycle 4: window over
        assert!(m.port_available(Route::DataCache, 0));
        assert_eq!(m.faults_triggered(), &[7], "id recorded once");
    }

    #[test]
    fn latency_spike_charges_extra_inside_the_window() {
        let mut config = MachineConfig::baseline_2_0();
        config.faults.push(TimingFault {
            id: 3,
            kind: FaultKind::LatencySpike {
                route: Route::DataCache,
                start_cycle: 2,
                cycles: 1,
                extra: 10,
            },
        });
        let mut m = MemSystem::new(&config);
        m.new_cycle(); // cycle 1: normal cold miss
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(64));
        m.new_cycle(); // cycle 2: spiked hit
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(2 + 10));
        m.new_cycle(); // cycle 3: back to normal
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(2));
        assert_eq!(m.faults_triggered(), &[3]);
    }

    #[test]
    fn lvc_fault_degrades_to_dcache_without_lvc() {
        // A blackout planned for the LVC must land on the structure that
        // actually serves LVC-routed accesses on a conventional machine.
        let mut config = MachineConfig::baseline_2_0();
        config.faults.push(TimingFault {
            id: 1,
            kind: FaultKind::PortBlackout {
                route: Route::Lvc,
                start_cycle: 1,
                cycles: 1,
            },
        });
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        assert!(!m.port_available(Route::DataCache, 0));
        assert!(!m.port_available(Route::Lvc, 0));
        m.new_cycle();
        assert!(m.port_available(Route::DataCache, 0));
    }

    #[test]
    fn hit_rate_is_zero_without_traffic() {
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0, "zero traffic must not be 1.0 or NaN");
        assert!(empty.hit_rate().is_finite());
        let warm = CacheStats { hits: 3, misses: 1 };
        assert!((warm.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn baseline_backend_matches_the_paper_chain() {
        let config = MachineConfig::baseline_2_0().with_backend(BackendConfig::Baseline);
        let mut m = MemSystem::new(&config);
        assert_eq!(m.backend_kind(), BackendConfig::Baseline);
        m.new_cycle();
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(2 + 12 + 50));
        assert!(m.stacked_stats().is_none());
    }

    #[test]
    fn stacked_memory_splits_pages_statically() {
        let config = MachineConfig::baseline_2_0().with_backend(BackendConfig::StackedMemory);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        // 0x2000_0000 sits in an even 4 KB page: on-stack, half latency.
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(2 + 12 + 25));
        m.new_cycle();
        // The next page is odd: off-chip.
        assert_eq!(m.access(Route::DataCache, 0x2000_1000), Some(2 + 12 + 50));
        assert!(
            m.stacked_stats().is_none(),
            "flat split keeps no device state"
        );
    }

    #[test]
    fn stacked_cache_catches_l2_evictions() {
        let config = MachineConfig::baseline_2_0().with_backend(BackendConfig::StackedCache);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        // Cold: miss everywhere, pay the stacked lookup plus off-chip.
        assert_eq!(
            m.access(Route::DataCache, 0x100_0000),
            Some(2 + 12 + 25 + 50)
        );
        assert_eq!(m.stacked_stats(), Some(CacheStats { hits: 0, misses: 1 }));
        // L2 is 512 KB 4-way with 32 B lines (4096 sets): a 128 KB stride
        // stays in one set, so five lines evict the first from both L1
        // (2-way) and L2 (4-way) while the 16-way stacked cache keeps all.
        let stride = 128 * 1024u64;
        for i in 1..5u64 {
            m.new_cycle();
            m.access(Route::DataCache, 0x100_0000 + i * stride);
        }
        m.new_cycle();
        assert_eq!(
            m.access(Route::DataCache, 0x100_0000),
            Some(2 + 12 + 25),
            "L1 and L2 evicted the line; the stacked cache still holds it"
        );
        assert_eq!(m.stacked_stats(), Some(CacheStats { hits: 1, misses: 5 }));
    }

    #[test]
    fn memcache_serves_flat_pages_without_the_cache() {
        let config = MachineConfig::baseline_2_0().with_backend(BackendConfig::StackedMemCache);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        // Even page: the flat half of the stack, no cache involvement.
        assert_eq!(m.access(Route::DataCache, 0x2000_0000), Some(2 + 12 + 25));
        assert_eq!(m.stacked_stats(), Some(CacheStats::default()));
        m.new_cycle();
        // Odd page: goes through the (cold) stacked-cache partition.
        assert_eq!(
            m.access(Route::DataCache, 0x2000_1000),
            Some(2 + 12 + 25 + 50)
        );
        assert_eq!(m.stacked_stats(), Some(CacheStats { hits: 0, misses: 1 }));
    }

    #[test]
    fn burst_backend_rewards_same_row_runs_per_stream() {
        let config = MachineConfig::decoupled(2, 2).with_backend(BackendConfig::Burst);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        // Row open on the LSQ stream.
        assert_eq!(m.access(Route::DataCache, 0x1000), Some(2 + 12 + 50));
        m.new_cycle();
        // Consecutive same-row misses ramp down: 24, 20, ...
        assert_eq!(m.access(Route::DataCache, 0x1020), Some(2 + 12 + 24));
        m.new_cycle();
        assert_eq!(m.access(Route::DataCache, 0x1040), Some(2 + 12 + 20));
        m.new_cycle();
        // The LVAQ stream has its own open row: this does not disturb the
        // LSQ run, and itself pays a fresh open (LVC hit latency is 1).
        assert_eq!(m.access(Route::Lvc, 0x8_0000), Some(1 + 12 + 50));
        m.new_cycle();
        assert_eq!(
            m.access(Route::DataCache, 0x1060),
            Some(2 + 12 + 16),
            "the LSQ run survived the interleaved LVAQ access"
        );
        let rows = m.stacked_stats().expect("burst keeps row stats");
        assert_eq!(rows, CacheStats { hits: 3, misses: 2 });
        m.new_cycle();
        // Long runs bottom out at the floor.
        for i in 4..12u64 {
            m.access(Route::DataCache, 0x1000 + i * 32);
            m.new_cycle();
        }
        assert_eq!(
            m.access(Route::DataCache, 0x1000 + 12 * 32),
            Some(2 + 12 + 8)
        );
    }

    #[test]
    fn backend_state_round_trips_per_backend() {
        for backend in BackendConfig::ALL {
            let config = MachineConfig::decoupled(2, 2).with_backend(backend);
            let mut m = MemSystem::new(&config);
            for i in 0..20u64 {
                m.new_cycle();
                m.access(Route::DataCache, 0x100_0000 + i * 128 * 1024);
            }
            let mut w = StateWriter::new();
            m.write_state(&mut w);
            let blob = w.seal();
            let mut restored = MemSystem::new(&config);
            let mut r = StateReader::open(&blob).unwrap();
            restored
                .read_state(&mut r)
                .unwrap_or_else(|e| panic!("{}: state did not round-trip: {e}", backend.label()));
            r.finish().unwrap();
            assert_eq!(restored.l2_stats(), m.l2_stats(), "{}", backend.label());
            assert_eq!(
                restored.stacked_stats(),
                m.stacked_stats(),
                "{}",
                backend.label()
            );
            // The restored hierarchy must keep charging identical
            // latencies — device state (fills, open rows) came across.
            restored.new_cycle();
            m.new_cycle();
            assert_eq!(
                m.access(Route::DataCache, 0x100_0000),
                restored.access(Route::DataCache, 0x100_0000),
                "{}: post-resume latency diverged",
                backend.label()
            );
        }
    }

    #[test]
    fn cross_backend_state_is_rejected_with_a_clear_error() {
        let exporter = MemSystem::new(
            &MachineConfig::baseline_2_0().with_backend(BackendConfig::StackedCache),
        );
        let mut w = StateWriter::new();
        exporter.write_state(&mut w);
        let blob = w.seal();
        let mut importer = MemSystem::new(&MachineConfig::baseline_2_0());
        let mut r = StateReader::open(&blob).unwrap();
        let err = importer.read_state(&mut r).expect_err("must reject");
        let msg = err.to_string();
        assert!(
            msg.contains("stacked-cache") && msg.contains("baseline"),
            "error must name both backends, got: {msg}"
        );
    }

    #[test]
    fn degenerate_bank_counts_are_clamped_not_aliased() {
        // 6 banks would alias through the `1 << bank_of` u64 mask math;
        // the hierarchy clamps to 4 and behaves like a valid 4-bank cache.
        let mut config = MachineConfig::baseline_2_0();
        config.dcache.port_model = PortModel::Banked { banks: 6 };
        config.dcache.ports = 6;
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        m.access(Route::DataCache, 0);
        m.access(Route::DataCache, 32);
        m.access(Route::DataCache, 64);
        m.access(Route::DataCache, 96);
        assert!(
            !m.port_available(Route::DataCache, 128),
            "4 clamped banks busy"
        );
        // 80 banks would shift a u64 by >= 64: clamped to 64, no overflow.
        let mut wide = MachineConfig::baseline_2_0();
        wide.dcache.port_model = PortModel::Banked { banks: 80 };
        wide.dcache.ports = 80;
        let mut m = MemSystem::new(&wide);
        m.new_cycle();
        for i in 0..64u64 {
            assert!(m.port_available(Route::DataCache, i * 32));
            m.access(Route::DataCache, i * 32);
        }
        assert!(!m.port_available(Route::DataCache, 64 * 32));
    }

    #[test]
    fn lvc_is_fast_and_separate() {
        let config = MachineConfig::decoupled(2, 2);
        let mut m = MemSystem::new(&config);
        m.new_cycle();
        let sp = 0x7fff_e000u64;
        assert_eq!(m.access(Route::Lvc, sp), Some(1 + 12 + 50));
        m.new_cycle();
        assert_eq!(m.access(Route::Lvc, sp), Some(1));
        assert_eq!(m.lvc_stats().unwrap().accesses(), 2);
        assert_eq!(m.dcache_stats().accesses(), 0);
    }
}
