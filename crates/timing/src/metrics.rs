//! Simulation results.

use crate::cache::CacheStats;

/// Aggregate statistics for one timing-simulation run.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct SimStats {
    /// Machine configuration name (`"(3+3)"`, ...).
    pub config_name: String,
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Dynamic memory references committed.
    pub mem_refs: u64,
    /// References steered to the LVAQ (stack pipeline).
    pub lvaq_refs: u64,
    /// Region predictions verified in the memory stage.
    pub region_checks: u64,
    /// Region mispredictions (wrong queue, replayed).
    pub region_mispredicts: u64,
    /// Mispredicted references that completed the full recovery path:
    /// detected at the TLB check, re-dispatched to the correct queue, and
    /// committed. Always `<= region_mispredicts`; a shortfall would mean a
    /// wrongly-steered reference left the pipeline without recovery.
    pub recoveries: u64,
    /// Store-to-load forwardings performed in the LSQ.
    pub lsq_forwards: u64,
    /// Fast forwardings performed in the LVAQ.
    pub lvaq_forwards: u64,
    /// Cycles dispatch stalled because the ROB was full.
    pub rob_stall_cycles: u64,
    /// Cycles dispatch stalled because a memory queue was full.
    pub queue_stall_cycles: u64,
    /// LVC-routed accesses served by the data cache because the machine
    /// has no LVC (dispatch steering on a conventional config).
    pub steer_fallbacks: u64,
    /// Confident value predictions.
    pub value_predictions: u64,
    /// Correct confident value predictions.
    pub value_pred_correct: u64,
    /// Peak-RSS proxy for the simulated program: bytes resident in the
    /// functional machine's sparse memory image at the end of the run.
    /// Captured traces carry the value in their footer, so replayed runs
    /// report the same number as live execution (zero only for bare entry
    /// slices, which have no functional metrics).
    pub peak_rss_bytes: u64,
    /// L1 data-cache hit/miss counts.
    pub dcache: CacheStats,
    /// LVC hit/miss counts (decoupled machines only).
    pub lvc: Option<CacheStats>,
    /// L2 hit/miss counts.
    pub l2: CacheStats,
    /// Backend-device hit/miss counts (die-stacked cache fills, or burst
    /// row hits vs row opens); `None` when the configured backend keeps no
    /// device state (baseline chain, stacked flat memory).
    pub stacked: Option<CacheStats>,
    /// Ids of injected faults ([`crate::TimingFault`]) that actually fired
    /// during the run, in ascending order. Empty in normal simulation.
    pub faults_applied: Vec<u32>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// In-pipeline region-prediction accuracy.
    pub fn region_accuracy(&self) -> f64 {
        if self.region_checks == 0 {
            1.0
        } else {
            1.0 - self.region_mispredicts as f64 / self.region_checks as f64
        }
    }

    /// Value-prediction accuracy among confident predictions.
    pub fn value_pred_accuracy(&self) -> f64 {
        if self.value_predictions == 0 {
            1.0
        } else {
            self.value_pred_correct as f64 / self.value_predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let stats = SimStats {
            instructions: 1000,
            cycles: 250,
            region_checks: 200,
            region_mispredicts: 2,
            value_predictions: 100,
            value_pred_correct: 90,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 4.0).abs() < 1e-12);
        assert!((stats.region_accuracy() - 0.99).abs() < 1e-12);
        assert!((stats.value_pred_accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.region_accuracy(), 1.0);
        assert_eq!(stats.value_pred_accuracy(), 1.0);
    }
}
