//! Opt-in cycle-level observability for the timing pipeline.
//!
//! The pipeline is generic over a [`Probe`] and monomorphized per
//! implementation: with the default [`NullProbe`] the per-cycle hook is an
//! empty inlined call guarded by `Probe::ENABLED == false`, so the
//! un-instrumented simulator compiles to exactly the code it had before
//! the probe existed and its outputs stay byte-identical. A [`Recorder`]
//! turns the same hook into per-cycle histograms (ROB occupancy,
//! issue-width utilization, per-port claim counts, LVAQ/LSQ depths) plus a
//! stall-attribution breakdown that explains *where* every commit-blocked
//! cycle went — the cycle-granularity evidence behind the Figure 8
//! bandwidth-configuration gaps.
//!
//! The attribution is conservative by construction: each simulated cycle
//! is classified exactly once (useful, or one [`StallCause`]), so
//!
//! ```text
//! useful_cycles + sum(stall_cycles per cause) == cycles
//! ```
//!
//! holds for every run — asserted by the integration tests.
//!
//! ```
//! use arl_timing::{MachineConfig, Recorder, StallCause, TimingSim};
//!
//! let (stats, rec) =
//!     TimingSim::run_trace_probed(&[], &MachineConfig::baseline_2_0(), Recorder::new());
//! let attributed: u64 = StallCause::ALL.iter().map(|&c| rec.stall_cycles(c)).sum();
//! assert_eq!(rec.useful_cycles() + attributed, stats.cycles);
//! ```

use arl_stats::{Histogram, Json};

/// Why the commit stage retired nothing this cycle. Exactly one cause is
/// charged per commit-blocked cycle, determined by the state of the ROB
/// head (the unique instruction every later commit waits on).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallCause {
    /// The ROB is empty: the front end had nothing in flight.
    FetchDry,
    /// The head has not issued and the ROB has room — it is waiting for a
    /// functional unit or an operand produced by an FU-bound instruction.
    FuFull,
    /// The head has not issued and the ROB is at capacity.
    RobFull,
    /// The head issued and its (non-memory) result is still in the FU
    /// pipeline.
    ExecLatency,
    /// The head's memory access is in flight (or about to start) — pure
    /// cache/memory latency, no structural denial.
    MemLatency,
    /// The head is denied a first-level port, bank, line buffer, or MSHR,
    /// or a committed store cannot drain for the same reason.
    MemPort,
    /// The head is a store waiting for its data operand (or a load waiting
    /// behind a matching older store).
    StoreOrdering,
    /// The head is replaying after an ARPT region misprediction redirect.
    ArptRedirect,
}

impl StallCause {
    /// Every cause, in report order.
    pub const ALL: [StallCause; 8] = [
        StallCause::FetchDry,
        StallCause::FuFull,
        StallCause::RobFull,
        StallCause::ExecLatency,
        StallCause::MemLatency,
        StallCause::MemPort,
        StallCause::StoreOrdering,
        StallCause::ArptRedirect,
    ];

    /// Stable snake_case label (JSON keys, table headers).
    pub fn label(self) -> &'static str {
        match self {
            StallCause::FetchDry => "fetch_dry",
            StallCause::FuFull => "fu_full",
            StallCause::RobFull => "rob_full",
            StallCause::ExecLatency => "exec_latency",
            StallCause::MemLatency => "mem_latency",
            StallCause::MemPort => "mem_port",
            StallCause::StoreOrdering => "store_ordering",
            StallCause::ArptRedirect => "arpt_redirect",
        }
    }

    // `ALL` lists the causes in declaration order, so the discriminant
    // *is* the report index.
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Everything the pipeline exposes about one simulated cycle.
#[derive(Clone, Copy, Debug)]
pub struct CycleObs {
    /// ROB entries occupied at the end of the cycle.
    pub rob_occupancy: usize,
    /// Instructions issued to functional units this cycle.
    pub issued: usize,
    /// Instructions committed this cycle.
    pub committed: usize,
    /// LSQ (conventional "MAQ") entries occupied at the end of the cycle.
    pub lsq_depth: usize,
    /// LVAQ entries occupied at the end of the cycle (0 when conventional).
    pub lvaq_depth: usize,
    /// Data-cache bandwidth claims made this cycle.
    pub dcache_claims: usize,
    /// LVC bandwidth claims made this cycle (0 when no LVC).
    pub lvc_claims: usize,
    /// The attributed cause when nothing committed; `None` on useful
    /// cycles.
    pub stall: Option<StallCause>,
}

/// A per-cycle observer the pipeline is monomorphized over.
///
/// `ENABLED` gates every observation-gathering expression in the pipeline,
/// so an implementation with `ENABLED == false` (the [`NullProbe`])
/// compiles the whole layer away.
pub trait Probe {
    /// Whether the pipeline should gather observations at all.
    const ENABLED: bool;

    /// Called once per simulated cycle (only when `ENABLED`).
    fn record(&mut self, obs: &CycleObs);

    /// Called when the event-driven core fast-forwards over `span` cycles
    /// that are provably identical to the one described by `obs`. The
    /// default replays them one by one, so every probe stays correct; a
    /// probe with order-independent accumulators (the [`Recorder`]) can
    /// override this with an O(1) bulk update that is bit-identical to
    /// the sequential replay.
    fn record_span(&mut self, obs: &CycleObs, span: u64) {
        for _ in 0..span {
            self.record(obs);
        }
    }
}

/// The zero-cost default probe: nothing is gathered, nothing is recorded.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _obs: &CycleObs) {}
}

/// The collecting probe: histograms over every [`CycleObs`] field plus the
/// stall-attribution counters.
#[derive(Clone, Default, Debug)]
pub struct Recorder {
    cycles: u64,
    useful_cycles: u64,
    stalls: [u64; 8],
    rob_occupancy: Histogram,
    issue_util: Histogram,
    commit_util: Histogram,
    lsq_depth: Histogram,
    lvaq_depth: Histogram,
    dcache_claims: Histogram,
    lvc_claims: Histogram,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Cycles observed (equals `SimStats::cycles` for the same run).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles on which at least one instruction committed.
    pub fn useful_cycles(&self) -> u64 {
        self.useful_cycles
    }

    /// Commit-blocked cycles attributed to `cause`.
    pub fn stall_cycles(&self, cause: StallCause) -> u64 {
        self.stalls[cause.index()]
    }

    /// Total commit-blocked cycles across all causes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// ROB-occupancy histogram (one sample per cycle).
    pub fn rob_occupancy(&self) -> &Histogram {
        &self.rob_occupancy
    }

    /// Issue-width-utilization histogram (instructions issued per cycle).
    pub fn issue_util(&self) -> &Histogram {
        &self.issue_util
    }

    /// Commit-width-utilization histogram (instructions retired per cycle).
    pub fn commit_util(&self) -> &Histogram {
        &self.commit_util
    }

    /// LSQ-depth histogram (one sample per cycle).
    pub fn lsq_depth(&self) -> &Histogram {
        &self.lsq_depth
    }

    /// LVAQ-depth histogram (one sample per cycle).
    pub fn lvaq_depth(&self) -> &Histogram {
        &self.lvaq_depth
    }

    /// Data-cache claims-per-cycle histogram.
    pub fn dcache_claims(&self) -> &Histogram {
        &self.dcache_claims
    }

    /// LVC claims-per-cycle histogram.
    pub fn lvc_claims(&self) -> &Histogram {
        &self.lvc_claims
    }

    /// Folds another recorder into this one (aggregation across workloads).
    pub fn merge(&mut self, other: &Recorder) {
        self.cycles += other.cycles;
        self.useful_cycles += other.useful_cycles;
        for (a, b) in self.stalls.iter_mut().zip(&other.stalls) {
            *a += b;
        }
        self.rob_occupancy.merge(&other.rob_occupancy);
        self.issue_util.merge(&other.issue_util);
        self.commit_util.merge(&other.commit_util);
        self.lsq_depth.merge(&other.lsq_depth);
        self.lvaq_depth.merge(&other.lvaq_depth);
        self.dcache_claims.merge(&other.dcache_claims);
        self.lvc_claims.merge(&other.lvc_claims);
    }

    /// Renders the recorder as one JSON object (the per-cell payload of a
    /// `BENCH_<experiment>_probe.json` document).
    pub fn to_json(&self) -> Json {
        let stalls = Json::obj(
            StallCause::ALL
                .iter()
                .map(|&c| (c.label(), Json::from(self.stall_cycles(c)))),
        );
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("useful_cycles", Json::from(self.useful_cycles)),
            ("stall_cycles", stalls),
            ("rob_occupancy", self.rob_occupancy.to_json()),
            ("issue_util", self.issue_util.to_json()),
            ("commit_util", self.commit_util.to_json()),
            ("lsq_depth", self.lsq_depth.to_json()),
            ("lvaq_depth", self.lvaq_depth.to_json()),
            ("dcache_claims", self.dcache_claims.to_json()),
            ("lvc_claims", self.lvc_claims.to_json()),
        ])
    }
}

impl Probe for Recorder {
    const ENABLED: bool = true;

    fn record(&mut self, obs: &CycleObs) {
        self.record_span(obs, 1);
    }

    /// Every accumulator is an exact integer (the histograms compute their
    /// moments on demand from exact sums), so one bulk add of `span`
    /// identical cycles is bit-identical to `span` sequential records —
    /// the property the event-driven core's differential suite pins down.
    fn record_span(&mut self, obs: &CycleObs, span: u64) {
        self.cycles += span;
        match obs.stall {
            None => self.useful_cycles += span,
            Some(cause) => self.stalls[cause.index()] += span,
        }
        self.rob_occupancy.record_n(obs.rob_occupancy, span);
        self.issue_util.record_n(obs.issued, span);
        self.commit_util.record_n(obs.committed, span);
        self.lsq_depth.record_n(obs.lsq_depth, span);
        self.lvaq_depth.record_n(obs.lvaq_depth, span);
        self.dcache_claims.record_n(obs.dcache_claims, span);
        self.lvc_claims.record_n(obs.lvc_claims, span);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, &c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(seen.insert(c.label()));
        }
    }

    #[test]
    fn recorder_classifies_each_cycle_once() {
        let mut rec = Recorder::new();
        let obs = CycleObs {
            rob_occupancy: 3,
            issued: 2,
            committed: 1,
            lsq_depth: 1,
            lvaq_depth: 0,
            dcache_claims: 1,
            lvc_claims: 0,
            stall: None,
        };
        rec.record(&obs);
        rec.record(&CycleObs {
            committed: 0,
            stall: Some(StallCause::MemLatency),
            ..obs
        });
        assert_eq!(rec.cycles(), 2);
        assert_eq!(rec.useful_cycles(), 1);
        assert_eq!(rec.total_stall_cycles(), 1);
        assert_eq!(rec.stall_cycles(StallCause::MemLatency), 1);
        assert_eq!(rec.useful_cycles() + rec.total_stall_cycles(), rec.cycles());
        assert_eq!(rec.rob_occupancy().total(), 2);
    }

    #[test]
    fn merge_sums_everything() {
        let obs = CycleObs {
            rob_occupancy: 1,
            issued: 1,
            committed: 0,
            lsq_depth: 0,
            lvaq_depth: 0,
            dcache_claims: 0,
            lvc_claims: 0,
            stall: Some(StallCause::FuFull),
        };
        let mut a = Recorder::new();
        a.record(&obs);
        let mut b = Recorder::new();
        b.record(&obs);
        b.record(&obs);
        a.merge(&b);
        assert_eq!(a.cycles(), 3);
        assert_eq!(a.stall_cycles(StallCause::FuFull), 3);
        assert_eq!(a.issue_util().total(), 3);
    }

    #[test]
    fn json_has_every_cause() {
        let rec = Recorder::new();
        let j = rec.to_json();
        let stalls = j.get("stall_cycles").expect("stall_cycles key");
        for c in StallCause::ALL {
            assert_eq!(stalls.get(c.label()).and_then(Json::as_u64), Some(0));
        }
    }
}
