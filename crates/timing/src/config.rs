//! Machine configuration (the paper's Table 4).

use crate::fault::TimingFault;

/// How a cache provides its per-cycle access bandwidth.
///
/// The paper's evaluation assumes ideal multi-porting ("the studied models
/// in this paper assume perfect multi-porting") and explicitly flags the
/// cost question; the related work it builds on proposes the cheaper
/// alternatives modeled here:
///
/// * [`PortModel::TruePorts`] — ideal N-ported arrays (the paper's model).
/// * [`PortModel::Banked`] — Sohi & Franklin's interleaved banks: up to N
///   accesses per cycle, but two accesses to the same bank conflict.
/// * [`PortModel::LineBuffered`] — Wilson, Olukotun & Rosenblum's
///   single-ported array with a line buffer: an access to the
///   most-recently-touched line is served by the buffer without using the
///   array port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortModel {
    /// Ideal multi-porting: any `n` accesses per cycle.
    TruePorts(usize),
    /// `banks` single-ported banks, line-interleaved: one access per bank
    /// per cycle.
    Banked {
        /// Number of banks (power of two).
        banks: usize,
    },
    /// One array port plus a line buffer holding the last line touched.
    LineBuffered,
}

impl PortModel {
    /// Peak accesses that can start in one cycle under this model.
    pub fn peak_bandwidth(&self) -> usize {
        match *self {
            PortModel::TruePorts(n) => n,
            PortModel::Banked { banks } => banks,
            PortModel::LineBuffered => 2, // array port + buffer hit
        }
    }
}

/// Geometry and timing of one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Number of accesses that may *start* per cycle (under
    /// [`PortModel::TruePorts`]; see `port_model`).
    pub ports: usize,
    /// How the bandwidth is implemented.
    pub port_model: PortModel,
}

impl CacheConfig {
    /// Table 4's L1 data cache: 64 KB, 2-way, 32 B lines, 2-cycle hit,
    /// ideal multi-porting (the paper's assumption).
    pub fn l1_data(ports: usize, hit_latency: u64) -> CacheConfig {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            line_bytes: 32,
            hit_latency,
            ports,
            port_model: PortModel::TruePorts(ports),
        }
    }

    /// Table 4's L2 cache: 512 KB, 4-way, 12-cycle access.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            size_bytes: 512 * 1024,
            assoc: 4,
            line_bytes: 32,
            hit_latency: 12,
            ports: usize::MAX,
            port_model: PortModel::TruePorts(usize::MAX),
        }
    }

    /// Table 4's Local Variable Cache: 4 KB direct-mapped, 1-cycle hit.
    pub fn lvc(ports: usize) -> CacheConfig {
        CacheConfig {
            size_bytes: 4 * 1024,
            assoc: 1,
            line_bytes: 32,
            hit_latency: 1,
            ports,
            port_model: PortModel::TruePorts(ports),
        }
    }

    /// Switches this cache to Sohi & Franklin-style interleaved banks.
    pub fn with_banks(mut self, banks: usize) -> CacheConfig {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        self.port_model = PortModel::Banked { banks };
        self.ports = banks;
        self
    }

    /// Returns this geometry with out-of-range port/bank counts clamped to
    /// values the bandwidth model can represent, warning on stderr like the
    /// `ARL_SCALE` fallback does. The bank mask is a `u64` and banks are
    /// selected by `line % banks`, so a bank count that is zero, above 64,
    /// or not a power of two would silently alias banks; a zero port count
    /// would deny every access forever. Every constructor in this module
    /// produces valid values, so sanitizing them is a no-op.
    pub fn sanitized(mut self, what: &str) -> CacheConfig {
        if let PortModel::Banked { banks } = self.port_model {
            let clamped = if banks == 0 {
                1
            } else if banks > 64 {
                64
            } else if banks.is_power_of_two() {
                banks
            } else {
                banks.next_power_of_two() / 2
            };
            if clamped != banks {
                eprintln!(
                    "[arl-timing] clamping {what} bank count {banks} to {clamped} \
                     (must be a power of two, at most 64)"
                );
                self.port_model = PortModel::Banked { banks: clamped };
                self.ports = clamped;
            }
        }
        if self.ports == 0 {
            eprintln!("[arl-timing] clamping {what} port count 0 to 1");
            self.ports = 1;
            if self.port_model == PortModel::TruePorts(0) {
                self.port_model = PortModel::TruePorts(1);
            }
        }
        self
    }

    /// Switches this cache to a single array port plus a line buffer
    /// (Wilson et al.).
    pub fn with_line_buffer(mut self) -> CacheConfig {
        self.port_model = PortModel::LineBuffered;
        self.ports = 1;
        self
    }
}

/// How the pipeline recovers from an access-region misprediction
/// (Section 4.3 describes both options).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryMode {
    /// "only the dependent instructions begin to re-issue 1 cycle after
    /// the misprediction is detected" — the paper's assumed mode.
    SelectiveReissue,
    /// "the instructions from the mispredicted memory instruction in the
    /// program order should be squashed and re-issued", as on a branch
    /// misprediction: every younger in-flight instruction loses its issue
    /// and replays after the penalty.
    Squash,
}

/// Which main loop drives the timing simulation.
///
/// Both cores share every pipeline stage and produce bit-identical
/// `SimStats` and probe output (pinned by `tests/core_differential.rs`);
/// they differ only in how idle time passes. [`CoreMode::Event`] detects
/// cycles on which provably nothing can change and jumps straight to the
/// next scheduled event; [`CoreMode::Legacy`] ticks every cycle, and is
/// kept for one release as the differential reference (`ARL_CORE=legacy`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoreMode {
    /// Event-driven: fast-forward provably idle spans (the default).
    #[default]
    Event,
    /// Tick every cycle (the pre-event-wheel loop).
    Legacy,
}

impl CoreMode {
    /// Reads `ARL_CORE` from the environment: `legacy` (any case) selects
    /// [`CoreMode::Legacy`], anything else — including unset — selects
    /// [`CoreMode::Event`].
    pub fn from_env() -> CoreMode {
        match std::env::var("ARL_CORE") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => CoreMode::Legacy,
            _ => CoreMode::Event,
        }
    }
}

/// What serves references beyond the first-level structures (L1 + LVC).
///
/// The paper evaluates one fixed chain — a shared L2 backed by flat
/// off-chip memory. `BackendConfig` turns that chain into plain data a
/// sweep can iterate: the same front end (ports, queues, ARPT steering)
/// can be driven against die-stacked DRAM used as memory, as a giant
/// cache, or as a memcache hybrid (Bakhshalipour et al.), or against a
/// burst-friendly device whose latency falls with the run length of
/// same-row accesses within a region stream (Ferry et al.). Every
/// variant keeps the shared L2; they differ in what an L2 miss costs.
///
/// [`BackendConfig::Baseline`] is **bit-identical** to the pre-backend
/// hierarchy — the differential and golden suites pin this down.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackendConfig {
    /// The paper's chain: L2 misses pay the flat off-chip latency.
    #[default]
    Baseline,
    /// Die-stacked DRAM as part of flat memory: a static page-interleaved
    /// split maps half the address space on-stack at a fraction of the
    /// off-chip latency (hit-predictor-free, the v1 simplification).
    StackedMemory,
    /// Die-stacked DRAM as a giant memory-side cache behind the L2.
    StackedCache,
    /// MemCache hybrid: half the pages are flat stacked memory, the rest
    /// go through a half-capacity stacked cache.
    StackedMemCache,
    /// Burst-friendly device: an L2 miss that stays in the open row of its
    /// region stream (LSQ and LVAQ stream separately) gets cheaper the
    /// longer the run; switching rows pays the full open cost.
    Burst,
}

impl BackendConfig {
    /// Every backend, in report order.
    pub const ALL: [BackendConfig; 5] = [
        BackendConfig::Baseline,
        BackendConfig::StackedMemory,
        BackendConfig::StackedCache,
        BackendConfig::StackedMemCache,
        BackendConfig::Burst,
    ];

    /// Stable kebab-case label (`ARL_BACKEND` values, JSON rows, config
    /// name suffixes).
    pub fn label(self) -> &'static str {
        match self {
            BackendConfig::Baseline => "baseline",
            BackendConfig::StackedMemory => "stacked-memory",
            BackendConfig::StackedCache => "stacked-cache",
            BackendConfig::StackedMemCache => "stacked-memcache",
            BackendConfig::Burst => "burst",
        }
    }

    /// Parses a [`Self::label`] (case-insensitive); `None` on anything
    /// else.
    pub fn from_label(value: &str) -> Option<BackendConfig> {
        BackendConfig::ALL
            .into_iter()
            .find(|b| value.eq_ignore_ascii_case(b.label()))
    }

    /// The byte tag stored in the `"ARLS"` machine-state blob.
    pub(crate) fn tag(self) -> u8 {
        match self {
            BackendConfig::Baseline => 0,
            BackendConfig::StackedMemory => 1,
            BackendConfig::StackedCache => 2,
            BackendConfig::StackedMemCache => 3,
            BackendConfig::Burst => 4,
        }
    }

    /// Inverse of [`Self::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<BackendConfig> {
        BackendConfig::ALL.into_iter().find(|b| b.tag() == tag)
    }
}

/// The full machine model. [`MachineConfig::baseline_2_0`] reproduces Table 4;
/// the preset constructors produce the Figure 8 configurations.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// A human-readable tag, e.g. `"(3+3)"`.
    pub name: String,
    /// Issue (= decode = commit) width.
    pub issue_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load Store Queue entries.
    pub lsq_size: usize,
    /// Local Variable Access Queue entries (used when `lvc` is set).
    pub lvaq_size: usize,
    /// Integer ALUs.
    pub int_alus: usize,
    /// FP ALUs.
    pub fp_alus: usize,
    /// Integer multiply/divide units.
    pub int_mul_div: usize,
    /// FP multiply/divide units.
    pub fp_mul_div: usize,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// L2 cache (shared by D-cache and LVC misses).
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
    /// The Local Variable Cache; `None` = conventional memory design.
    pub lvc: Option<CacheConfig>,
    /// ARPT entries (log2), used when `lvc` is set. 15 → 32K 1-bit entries.
    pub arpt_log2_entries: u32,
    /// Enable the 16K-entry stride value predictor.
    pub value_prediction: bool,
    /// Cycles between region-misprediction detection and dependent
    /// re-issue.
    pub region_mispredict_penalty: u64,
    /// Recovery policy on a region misprediction.
    pub recovery: RecoveryMode,
    /// Outstanding-miss capacity per first-level structure (lock-up-free
    /// MSHRs); `usize::MAX` = unbounded, the paper's idealization.
    pub mshrs: usize,
    /// Store write-buffer entries: committed stores drain through cache
    /// ports in the background instead of stalling commit, up to this
    /// depth. `0` models write-through-at-commit (stores block commit on
    /// port contention).
    pub write_buffer: usize,
    /// Faults to inject during the run (empty for normal simulation; the
    /// fault campaign materializes seeded plans into this list).
    pub faults: Vec<TimingFault>,
    /// Which main loop drives the run (from `ARL_CORE`; results are
    /// bit-identical either way — this only trades simulation speed).
    pub core: CoreMode,
    /// What serves references beyond the first-level structures.
    pub backend: BackendConfig,
}

impl MachineConfig {
    /// Table 4's base machine with an `n`-ported data cache of the given
    /// hit latency and no LVC.
    pub fn conventional(ports: usize, hit_latency: u64) -> MachineConfig {
        MachineConfig {
            name: format!("({ports}+0)"),
            issue_width: 16,
            rob_size: 256,
            lsq_size: 128,
            lvaq_size: 0,
            int_alus: 16,
            fp_alus: 16,
            int_mul_div: 4,
            fp_mul_div: 4,
            dcache: CacheConfig::l1_data(ports, hit_latency),
            l2: CacheConfig::l2(),
            memory_latency: 50,
            lvc: None,
            arpt_log2_entries: 15,
            value_prediction: true,
            region_mispredict_penalty: 1,
            recovery: RecoveryMode::SelectiveReissue,
            mshrs: usize::MAX,
            write_buffer: 0,
            faults: Vec::new(),
            core: CoreMode::from_env(),
            backend: BackendConfig::Baseline,
        }
    }

    /// Returns this machine with the given memory backend. A non-baseline
    /// backend is appended to the name (`"(3+3)@stacked-cache"`) so swept
    /// cells stay distinguishable; [`BackendConfig::Baseline`] is a no-op,
    /// keeping every existing preset byte-identical.
    pub fn with_backend(mut self, backend: BackendConfig) -> MachineConfig {
        if backend != BackendConfig::Baseline {
            self.name = format!("{}@{}", self.name, backend.label());
        }
        self.backend = backend;
        self
    }

    /// The Figure 8 baseline: a 2-ported, 2-cycle data cache.
    pub fn baseline_2_0() -> MachineConfig {
        MachineConfig::conventional(2, 2)
    }

    /// A data-decoupled `(d+s)` configuration: `d` data-cache ports and `s`
    /// LVC ports, with the Table 4 split queues (LSQ/LVAQ 96/96).
    pub fn decoupled(dcache_ports: usize, lvc_ports: usize) -> MachineConfig {
        let mut c = MachineConfig::conventional(dcache_ports, 2);
        c.name = format!("({dcache_ports}+{lvc_ports})");
        c.lsq_size = 96;
        c.lvaq_size = 96;
        c.lvc = Some(CacheConfig::lvc(lvc_ports));
        c
    }

    /// The eight Figure 8 configurations, in the paper's presentation
    /// order: (2+0), (3+0) 2-cycle, (3+0) 3-cycle, (4+0) 3-cycle, (2+2),
    /// (2+3), (3+3), and the (16+0) bandwidth upper bound.
    pub fn figure8_suite() -> Vec<MachineConfig> {
        let mut three_slow = MachineConfig::conventional(3, 3);
        three_slow.name = "(3+0)3c".into();
        let mut four = MachineConfig::conventional(4, 3);
        four.name = "(4+0)3c".into();
        vec![
            MachineConfig::baseline_2_0(),
            MachineConfig::conventional(3, 2),
            three_slow,
            four,
            MachineConfig::decoupled(2, 2),
            MachineConfig::decoupled(2, 3),
            MachineConfig::decoupled(3, 3),
            MachineConfig::conventional(16, 2),
        ]
    }

    /// Whether this machine splits stack references into the LVAQ/LVC.
    pub fn is_decoupled(&self) -> bool {
        self.lvc.is_some()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn table4_base_values() {
        let c = MachineConfig::baseline_2_0();
        assert_eq!(c.issue_width, 16);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.lsq_size, 128);
        assert_eq!(c.dcache.size_bytes, 64 * 1024);
        assert_eq!(c.dcache.assoc, 2);
        assert_eq!(c.dcache.hit_latency, 2);
        assert_eq!(c.l2.hit_latency, 12);
        assert_eq!(c.memory_latency, 50);
        assert!(!c.is_decoupled());
    }

    #[test]
    fn decoupled_preset() {
        let c = MachineConfig::decoupled(3, 3);
        assert_eq!(c.name, "(3+3)");
        assert_eq!(c.lsq_size, 96);
        assert_eq!(c.lvaq_size, 96);
        let lvc = c.lvc.unwrap();
        assert_eq!(lvc.size_bytes, 4 * 1024);
        assert_eq!(lvc.assoc, 1);
        assert_eq!(lvc.hit_latency, 1);
        assert!(c.is_decoupled());
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in BackendConfig::ALL {
            assert_eq!(BackendConfig::from_label(backend.label()), Some(backend));
            assert_eq!(BackendConfig::from_tag(backend.tag()), Some(backend));
        }
        assert_eq!(
            BackendConfig::from_label("STACKED-CACHE"),
            Some(BackendConfig::StackedCache)
        );
        assert_eq!(BackendConfig::from_label("hbm"), None);
        assert_eq!(BackendConfig::from_tag(200), None);
    }

    #[test]
    fn with_backend_tags_the_name_except_baseline() {
        let base = MachineConfig::baseline_2_0();
        assert_eq!(base.backend, BackendConfig::Baseline);
        let same = base.clone().with_backend(BackendConfig::Baseline);
        assert_eq!(same.name, "(2+0)");
        let stacked = base.with_backend(BackendConfig::StackedCache);
        assert_eq!(stacked.name, "(2+0)@stacked-cache");
        assert_eq!(stacked.backend, BackendConfig::StackedCache);
    }

    #[test]
    fn sanitized_clamps_degenerate_port_geometry() {
        let valid = CacheConfig::l1_data(2, 2).with_banks(4);
        assert_eq!(
            valid.sanitized("dcache"),
            valid,
            "valid configs pass through"
        );

        let mut aliasing = CacheConfig::l1_data(2, 2);
        aliasing.port_model = PortModel::Banked { banks: 6 };
        aliasing.ports = 6;
        let fixed = aliasing.sanitized("dcache");
        assert_eq!(fixed.port_model, PortModel::Banked { banks: 4 });
        assert_eq!(fixed.ports, 4);

        let mut wide = CacheConfig::l1_data(2, 2);
        wide.port_model = PortModel::Banked { banks: 128 };
        wide.ports = 128;
        assert_eq!(
            wide.sanitized("dcache").port_model,
            PortModel::Banked { banks: 64 }
        );

        let mut zero_banks = CacheConfig::l1_data(2, 2);
        zero_banks.port_model = PortModel::Banked { banks: 0 };
        zero_banks.ports = 0;
        let fixed = zero_banks.sanitized("lvc");
        assert_eq!(fixed.port_model, PortModel::Banked { banks: 1 });
        assert_eq!(fixed.ports, 1);

        let mut portless = CacheConfig::l1_data(2, 2);
        portless.ports = 0;
        portless.port_model = PortModel::TruePorts(0);
        let fixed = portless.sanitized("dcache");
        assert_eq!(fixed.ports, 1);
        assert_eq!(fixed.port_model, PortModel::TruePorts(1));
    }

    #[test]
    fn figure8_suite_has_eight_configs() {
        let suite = MachineConfig::figure8_suite();
        assert_eq!(suite.len(), 8);
        assert_eq!(suite[0].name, "(2+0)");
        assert_eq!(suite[7].name, "(16+0)");
        assert_eq!(suite[3].dcache.hit_latency, 3);
    }
}
