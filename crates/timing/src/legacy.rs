//! The **legacy** cycle-ticking reference core (`ARL_CORE=legacy`).
//!
//! This is the pre-refactor pipeline, preserved verbatim as an escape
//! hatch and as the reference the event-driven SoA core in
//! [`crate::pipeline`] is differentially tested against: one array-of-
//! structs ROB slot per instruction, every stage walking the full ROB,
//! and the clock ticking through every cycle — idle or not. Its outputs
//! (`SimStats`, probe observations, experiment tables) define bit-exact
//! correctness; `tests/core_differential.rs` holds the event core to
//! them on every workload and configuration.
//!
use std::collections::VecDeque;

use arl_core::{classify_fu, static_hint, Arpt, FuClass, StaticHint};
use arl_isa::Inst;
use arl_sim::{ModelHints, SourceError, TraceEntry, TraceSource};

use crate::cache::{MemSystem, Route};
use crate::config::{MachineConfig, RecoveryMode};
use crate::fault::{FaultKind, TimingFault};
use crate::metrics::SimStats;
use crate::pipeline::SegmentRun;
use crate::probe::{CycleObs, NullProbe, Probe, StallCause};
use crate::state::{
    corrupt, read_arpt, read_stats, route_from, route_tag, write_arpt, write_stats, MidCycle,
    StateReader, StateWriter, CORE_LEGACY, STATE_MAGIC, STATE_VERSION,
};
use crate::valuepred::StridePredictor;

/// Functional-unit classes (Table 4: 16 int ALUs, 16 FP ALUs, 4 int
/// mul/div, 4 FP mul/div).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fu {
    IntAlu,
    FpAlu,
    IntMulDiv,
    FpMulDiv,
}

/// Execution latency and FU class per instruction (MIPS R10000-flavoured);
/// delegates to the shared [`arl_core::classify_fu`] table so the legacy
/// reference, the event core, and the trace-time compiler cannot drift.
fn classify(inst: &Inst) -> (Fu, u64) {
    let (class, latency) = classify_fu(inst);
    let fu = match class {
        FuClass::IntAlu => Fu::IntAlu,
        FuClass::FpAlu => Fu::FpAlu,
        FuClass::IntMulDiv => Fu::IntMulDiv,
        FuClass::FpMulDiv => Fu::FpMulDiv,
    };
    (fu, latency)
}

/// Serialization tag for a [`Fu`] (sharded-replay state blobs; the legacy
/// core has its own private `Fu` type, so it keeps its own codec).
fn fu_from(tag: u8) -> Result<Fu, SourceError> {
    match tag {
        0 => Ok(Fu::IntAlu),
        1 => Ok(Fu::FpAlu),
        2 => Ok(Fu::IntMulDiv),
        3 => Ok(Fu::FpMulDiv),
        _ => Err(corrupt("functional-unit class out of range")),
    }
}

/// Serialization tag for a [`MemPhase`] (sharded-replay state blobs).
fn phase_tag(phase: MemPhase) -> u8 {
    match phase {
        MemPhase::None => 0,
        MemPhase::WaitAgen => 1,
        MemPhase::Ready => 2,
        MemPhase::Accessed => 3,
    }
}

fn phase_from(tag: u8) -> Result<MemPhase, SourceError> {
    match tag {
        0 => Ok(MemPhase::None),
        1 => Ok(MemPhase::WaitAgen),
        2 => Ok(MemPhase::Ready),
        3 => Ok(MemPhase::Accessed),
        _ => Err(corrupt("memory phase out of range")),
    }
}

const NO_CYCLE: u64 = u64::MAX;
/// Serialized stand-in for `None` in the dependence and renamer fields.
const NO_DEP: u64 = u64::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MemPhase {
    /// Not a memory instruction.
    None,
    /// Waiting for address generation (i.e. for issue).
    WaitAgen,
    /// Address known; verification done; waiting to start the access
    /// (ordering, ports) or — for stores — waiting for commit.
    Ready,
    /// Access in flight or complete.
    Accessed,
}

struct Slot {
    seq: u64,
    dispatch_cycle: u64,
    /// Producer sequence numbers this instruction waits on to *issue*
    /// (for stores: the address operands only).
    deps: [Option<u64>; 3],
    /// For stores: the producer of the store *data*, tracked separately —
    /// the address is generated as soon as the base register is ready,
    /// exactly so younger loads are not serialized behind store data.
    data_dep: Option<u64>,
    fu: Fu,
    latency: u64,
    issued: bool,
    /// Cycle the result is available to consumers (`NO_CYCLE` until known).
    complete_at: u64,
    /// Whether a confident, *correct* value prediction covers this result.
    value_predicted: bool,
    // Memory fields.
    mem: MemPhase,
    is_load: bool,
    addr: u64,
    is_stack: bool,
    route: Route,
    /// Earliest cycle the memory stage may process it (after redirect).
    mem_ready_at: u64,
    /// Address-generation completion cycle.
    agen_done_at: u64,
    verified: bool,
    /// Whether the ARPT (not a static rule) made the steering decision.
    arpt_predicted: bool,
    /// Whether this reference was wrongly steered, detected, and
    /// re-dispatched on the correct path (counted at commit).
    recovered: bool,
    pc: u64,
    ghr: u64,
    ra: u64,
}

/// The preserved pre-refactor simulator. Only reachable through
/// [`crate::TimingSim`] with [`crate::CoreMode::Legacy`] selected; the
/// public entry points delegate here so callers never name this type.
///
/// The simulator is monomorphized over its [`Probe`] exactly like the
/// event core: the default [`NullProbe`] has `ENABLED == false`, so every
/// observation-gathering expression is statically dead.
pub(crate) struct LegacySim<P: Probe = NullProbe> {
    config: MachineConfig,
    mem: MemSystem,
    arpt: Arpt,
    vpred: Option<StridePredictor>,
    stats: SimStats,

    cycle: u64,
    rob: VecDeque<Slot>,
    head_seq: u64,
    next_seq: u64,
    /// Sequence numbers awaiting issue, in program order.
    waiting_issue: VecDeque<u64>,
    /// In-flight stores per queue, in program order (for ordering checks).
    lsq_stores: VecDeque<u64>,
    lvaq_stores: VecDeque<u64>,
    lsq_count: usize,
    lvaq_count: usize,
    /// Per-register producer tracking (32 GPR + 32 FPR).
    reg_producer: [Option<u64>; 64],
    // Per-cycle FU usage.
    fu_used: [usize; 4],
    /// Committed stores awaiting their background cache write.
    write_buffer: VecDeque<(Route, u64)>,
    /// Pending ARPT soft errors (removed once injected); port-layer faults
    /// live inside [`MemSystem`].
    arpt_faults: Vec<TimingFault>,
    /// Persistent scratch for the memory-stage action list — reused every
    /// cycle so the busy loop performs no per-cycle heap allocation.
    mem_scratch: Vec<u64>,
    probe: P,
}

impl<P: Probe> LegacySim<P> {
    fn new(config: &MachineConfig, probe: P) -> LegacySim<P> {
        LegacySim {
            mem: MemSystem::new(config),
            arpt: Arpt::new(
                arl_core::CounterScheme::OneBit,
                arl_core::Context::HYBRID_8_7,
                arl_core::Capacity::Entries(1 << config.arpt_log2_entries),
            ),
            vpred: config.value_prediction.then(StridePredictor::table4),
            stats: SimStats {
                config_name: config.name.clone(),
                ..SimStats::default()
            },
            cycle: 0,
            rob: VecDeque::with_capacity(config.rob_size),
            head_seq: 0,
            next_seq: 0,
            waiting_issue: VecDeque::new(),
            lsq_stores: VecDeque::new(),
            lvaq_stores: VecDeque::new(),
            lsq_count: 0,
            lvaq_count: 0,
            reg_producer: [None; 64],
            fu_used: [0; 4],
            write_buffer: VecDeque::new(),
            arpt_faults: config
                .faults
                .iter()
                .filter(|f| !f.is_port_fault())
                .copied()
                .collect(),
            mem_scratch: Vec::new(),
            config: config.clone(),
            probe,
        }
    }

    /// Runs one shard segment through the legacy model with an attached
    /// probe — the legacy counterpart of
    /// `TimingSim::run_segment_probed`, with the same mid-cycle cut
    /// semantics (an unsharded run passes `resume: None, final_segment:
    /// true`). The probe is pure observation — `SimStats` are identical
    /// with any probe attached.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SourceError`] from the source, and rejects a
    /// corrupt or mismatched `resume` blob as [`SourceError::Corrupt`].
    pub(crate) fn run_segment_probed<S: TraceSource>(
        source: &mut S,
        config: &MachineConfig,
        resume: Option<&[u8]>,
        final_segment: bool,
        probe: P,
    ) -> Result<SegmentRun<P>, SourceError> {
        let mut sim = LegacySim::new(config, probe);
        let mut carried = match resume {
            Some(blob) => Some(sim.import_state(blob)?),
            None => None,
        };
        let mut pending: Option<TraceEntry> = None;
        let mut exhausted = false;
        loop {
            // A carried mid-cycle resumes *inside* the cycle the previous
            // shard stopped in: commit, memory, stall attribution and
            // issue already ran there, so only the dispatch loop (and
            // everything after it) executes for that cycle.
            let mut mid = match carried.take() {
                Some(m) => m,
                None => {
                    sim.begin_cycle();
                    let committed = sim.commit_stage();
                    sim.memory_stage();
                    // Attribute the stall after the memory stage so
                    // port/MSHR denials reflect this cycle's actual
                    // bandwidth claims, but before issue mutates the
                    // head's issued state.
                    let stall = if P::ENABLED && committed == 0 {
                        Some(sim.stall_cause())
                    } else {
                        None
                    };
                    let issued = sim.issue_stage();
                    MidCycle {
                        committed,
                        issued,
                        dispatched: 0,
                        // The legacy core ticks every cycle; the event
                        // core's fast-forward guard never reads this.
                        mem_active: false,
                        stall,
                        rob_stalls_before: sim.stats.rob_stall_cycles,
                        queue_stalls_before: sim.stats.queue_stall_cycles,
                    }
                }
            };
            // Dispatch stage: pull from the source.
            while mid.dispatched < sim.config.issue_width {
                let entry = match pending.take() {
                    Some(e) => e,
                    None => match source.next_entry()? {
                        Some(e) => e,
                        None => {
                            exhausted = true;
                            break;
                        }
                    },
                };
                if sim.try_dispatch(&entry) {
                    mid.dispatched += 1;
                } else {
                    pending = Some(entry);
                    break;
                }
            }
            if exhausted && !final_segment {
                // The segment's span is spent: stop mid-cycle and hand the
                // machine to the next shard, which resumes inside this
                // very cycle with the next span's entries.
                debug_assert!(pending.is_none(), "a dry source cannot leave an entry");
                let state = sim.export_state(&mid);
                let mut stats = sim.stats_view();
                stats.peak_rss_bytes = source.metrics().peak_rss_bytes;
                return Ok(SegmentRun {
                    stats,
                    state: Some(state),
                    probe: sim.probe,
                });
            }
            if P::ENABLED {
                let (dcache_claims, lvc_claims) = sim.mem.claims_this_cycle();
                sim.probe.record(&CycleObs {
                    rob_occupancy: sim.rob.len(),
                    issued: mid.issued,
                    committed: mid.committed,
                    lsq_depth: sim.lsq_count,
                    lvaq_depth: sim.lvaq_count,
                    dcache_claims,
                    lvc_claims,
                    stall: mid.stall,
                });
            }
            if exhausted && pending.is_none() && sim.rob.is_empty() && sim.write_buffer.is_empty() {
                break;
            }
            debug_assert!(
                sim.cycle < 100 * sim.stats.instructions.max(1_000_000),
                "timing simulation is not making progress"
            );
        }
        let (mut stats, probe) = sim.finish();
        stats.peak_rss_bytes = source.metrics().peak_rss_bytes;
        Ok(SegmentRun {
            stats,
            state: None,
            probe,
        })
    }

    /// The statistics as they stand right now, presented finish-style
    /// (see `TimingSim::stats_view`).
    fn stats_view(&self) -> SimStats {
        let mut stats = self.stats.clone();
        stats.cycles = self.cycle;
        stats.dcache = self.mem.dcache_stats();
        stats.lvc = self.mem.lvc_stats();
        stats.l2 = self.mem.l2_stats();
        stats.stacked = self.mem.stacked_stats();
        stats.steer_fallbacks = self.mem.steer_fallbacks();
        if let Some(vp) = &self.vpred {
            stats.value_predictions = vp.predictions();
            stats.value_pred_correct = (vp.accuracy() * vp.predictions() as f64).round() as u64;
        }
        stats
            .faults_applied
            .extend_from_slice(self.mem.faults_triggered());
        stats.faults_applied.sort_unstable();
        stats.faults_applied.dedup();
        stats
    }

    fn finish(self) -> (SimStats, P) {
        (self.stats_view(), self.probe)
    }

    // ---- segment-boundary state (sharded replay) ----------------------------

    /// Serializes the complete legacy-core machine state at a mid-cycle
    /// segment boundary. The shared section mirrors the event core's blob
    /// field for field; the core-specific section is the array-of-structs
    /// ROB plus the waiting-issue queue.
    fn export_state(&self, mid: &MidCycle) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.bytes(&STATE_MAGIC);
        w.u8(STATE_VERSION);
        w.u8(CORE_LEGACY);
        let name = self.config.name.as_bytes();
        w.u32(name.len() as u32);
        w.bytes(name);
        mid.write(&mut w);
        // Shared section (same order in both cores).
        w.u64(self.cycle);
        write_stats(&mut w, &self.stats);
        for &p in &self.reg_producer {
            w.u64(p.unwrap_or(NO_DEP));
        }
        for &n in &self.fu_used {
            w.usize(n);
        }
        w.usize(self.lsq_count);
        w.usize(self.lvaq_count);
        w.u64_list(&self.lsq_stores.iter().copied().collect::<Vec<_>>());
        w.u64_list(&self.lvaq_stores.iter().copied().collect::<Vec<_>>());
        w.u32(self.write_buffer.len() as u32);
        for &(route, addr) in &self.write_buffer {
            w.u8(route_tag(route));
            w.u64(addr);
        }
        w.u32(self.arpt_faults.len() as u32);
        for f in &self.arpt_faults {
            w.u32(f.id);
        }
        match &self.vpred {
            Some(vp) => {
                w.u8(1);
                vp.write_state(&mut w);
            }
            None => w.u8(0),
        }
        write_arpt(&mut w, &self.arpt);
        self.mem.write_state(&mut w);
        // Legacy-core section: the ROB in order (slot seq is derived from
        // `head_seq` on import) and the issue wait queue.
        w.u64(self.head_seq);
        w.u64(self.next_seq);
        w.u32(self.rob.len() as u32);
        for s in &self.rob {
            w.u64(s.dispatch_cycle);
            for &d in &s.deps {
                w.u64(d.unwrap_or(NO_DEP));
            }
            w.u64(s.data_dep.unwrap_or(NO_DEP));
            w.u8(s.fu as u8);
            w.u64(s.latency);
            w.bool(s.issued);
            w.u64(s.complete_at);
            w.bool(s.value_predicted);
            w.u8(phase_tag(s.mem));
            w.bool(s.is_load);
            w.u64(s.addr);
            w.bool(s.is_stack);
            w.u8(route_tag(s.route));
            w.u64(s.mem_ready_at);
            w.u64(s.agen_done_at);
            w.bool(s.verified);
            w.bool(s.arpt_predicted);
            w.bool(s.recovered);
            w.u64(s.pc);
            w.u64(s.ghr);
            w.u64(s.ra);
        }
        w.u64_list(&self.waiting_issue.iter().copied().collect::<Vec<_>>());
        w.seal()
    }

    /// Restores a blob produced by [`LegacySim::export_state`] into this
    /// freshly constructed simulator; strict like the event core's import.
    fn import_state(&mut self, blob: &[u8]) -> Result<MidCycle, SourceError> {
        let mut r = StateReader::open(blob)?;
        if r.bytes(4)? != STATE_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if r.u8()? != STATE_VERSION {
            return Err(corrupt("unsupported version"));
        }
        if r.u8()? != CORE_LEGACY {
            return Err(corrupt("state was captured by a different core"));
        }
        let name_len = r.len32()?;
        if r.bytes(name_len)? != self.config.name.as_bytes() {
            return Err(corrupt("configuration mismatch"));
        }
        let mid = MidCycle::read(&mut r)?;
        // Shared section.
        self.cycle = r.u64()?;
        read_stats(&mut r, &mut self.stats)?;
        for p in &mut self.reg_producer {
            let v = r.u64()?;
            *p = (v != NO_DEP).then_some(v);
        }
        for n in &mut self.fu_used {
            *n = r.usize()?;
        }
        self.lsq_count = r.usize()?;
        self.lvaq_count = r.usize()?;
        self.lsq_stores = r.u64_list()?.into();
        self.lvaq_stores = r.u64_list()?.into();
        self.write_buffer.clear();
        for _ in 0..r.len32()? {
            let route = route_from(r.u8()?)?;
            let addr = r.u64()?;
            self.write_buffer.push_back((route, addr));
        }
        // Pending ARPT faults are stored as ids and rebuilt from the
        // configuration's fault plan, preserving its order.
        let n_faults = r.len32()?;
        let mut fault_ids = Vec::with_capacity(n_faults.min(1024));
        for _ in 0..n_faults {
            fault_ids.push(r.u32()?);
        }
        self.arpt_faults = self
            .config
            .faults
            .iter()
            .filter(|f| !f.is_port_fault() && fault_ids.contains(&f.id))
            .copied()
            .collect();
        if self.arpt_faults.len() != n_faults {
            return Err(corrupt("pending fault not in the configuration"));
        }
        if r.bool()? != self.vpred.is_some() {
            return Err(corrupt("value-predictor presence mismatch"));
        }
        if let Some(vp) = &mut self.vpred {
            vp.read_state(&mut r)?;
        }
        read_arpt(&mut r, &mut self.arpt)?;
        self.mem.read_state(&mut r)?;
        // Legacy-core section.
        let head_seq = r.u64()?;
        let next_seq = r.u64()?;
        let rob_len = r.len32()?;
        if rob_len > self.config.rob_size {
            return Err(corrupt("ROB length exceeds capacity"));
        }
        let expect_next = head_seq
            .checked_add(rob_len as u64)
            .ok_or_else(|| corrupt("sequence overflow"))?;
        if next_seq != expect_next {
            return Err(corrupt("sequence numbering is inconsistent"));
        }
        self.head_seq = head_seq;
        self.next_seq = next_seq;
        self.rob.clear();
        for k in 0..rob_len {
            let dispatch_cycle = r.u64()?;
            let mut deps = [None; 3];
            for d in &mut deps {
                let v = r.u64()?;
                *d = (v != NO_DEP).then_some(v);
            }
            let data_dep = {
                let v = r.u64()?;
                (v != NO_DEP).then_some(v)
            };
            self.rob.push_back(Slot {
                seq: head_seq + k as u64,
                dispatch_cycle,
                deps,
                data_dep,
                fu: fu_from(r.u8()?)?,
                latency: r.u64()?,
                issued: r.bool()?,
                complete_at: r.u64()?,
                value_predicted: r.bool()?,
                mem: phase_from(r.u8()?)?,
                is_load: r.bool()?,
                addr: r.u64()?,
                is_stack: r.bool()?,
                route: route_from(r.u8()?)?,
                mem_ready_at: r.u64()?,
                agen_done_at: r.u64()?,
                verified: r.bool()?,
                arpt_predicted: r.bool()?,
                recovered: r.bool()?,
                pc: r.u64()?,
                ghr: r.u64()?,
                ra: r.u64()?,
            });
        }
        self.waiting_issue.clear();
        for seq in r.u64_list()? {
            if seq < head_seq || seq >= next_seq {
                return Err(corrupt("waiting-issue entry not in flight"));
            }
            self.waiting_issue.push_back(seq);
        }
        r.finish()?;
        Ok(mid)
    }

    fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.mem.new_cycle();
        self.fu_used = [0; 4];
    }

    fn slot(&self, seq: u64) -> &Slot {
        &self.rob[(seq - self.head_seq) as usize]
    }

    fn slot_mut(&mut self, seq: u64) -> &mut Slot {
        let idx = (seq - self.head_seq) as usize;
        &mut self.rob[idx]
    }

    /// When (if ever yet known) the value produced by `seq` is usable.
    fn producer_ready_at(&self, seq: u64) -> u64 {
        if seq < self.head_seq {
            return 0; // already committed
        }
        let s = self.slot(seq);
        if s.value_predicted {
            // Consumers may use the predicted value the cycle after the
            // producer dispatched.
            return s.dispatch_cycle + 1;
        }
        s.complete_at // NO_CYCLE until issued
    }

    fn deps_ready(&self, slot: &Slot) -> bool {
        slot.deps.iter().flatten().all(|&dep| {
            let ready = self.producer_ready_at(dep);
            ready != NO_CYCLE && ready <= self.cycle
        })
    }

    // ---- dispatch ---------------------------------------------------------

    fn try_dispatch(&mut self, entry: &TraceEntry) -> bool {
        if self.rob.len() >= self.config.rob_size {
            self.stats.rob_stall_cycles += 1;
            return false;
        }
        // Memory instructions need a queue entry; pick the queue now (the
        // paper's dispatch-stage steering). Compiled traces (v3) carry the
        // steering class and folded ARPT key precomputed; either path
        // consults and counts the same table lookup, so the prediction
        // stream is bit-identical.
        let hints = &entry.model;
        let mut route = Route::DataCache;
        let mut predicted_stack = false;
        let mut arpt_predicted = false;
        let is_mem = entry.mem.is_some();
        if is_mem {
            if self.config.is_decoupled() {
                let hint = if hints.present {
                    match hints.steer {
                        ModelHints::STEER_STACK => StaticHint::Stack,
                        ModelHints::STEER_NONSTACK => StaticHint::NonStack,
                        _ => StaticHint::Dynamic,
                    }
                } else {
                    let Some(info) = entry.inst.mem_op() else {
                        unreachable!("memory entry carries no mem_op");
                    };
                    static_hint(&info)
                };
                predicted_stack = match hint {
                    StaticHint::Stack => true,
                    StaticHint::NonStack => false,
                    StaticHint::Dynamic => {
                        arpt_predicted = true;
                        if !self.arpt_faults.is_empty() {
                            self.apply_arpt_faults();
                        }
                        if hints.present {
                            self.arpt.predict_counted_key(hints.arpt_key)
                        } else {
                            self.arpt.predict_counted(entry.pc, entry.ghr, entry.ra)
                        }
                    }
                };
                route = if predicted_stack {
                    Route::Lvc
                } else {
                    Route::DataCache
                };
                let (count, cap) = match route {
                    Route::Lvc => (self.lvaq_count, self.config.lvaq_size),
                    Route::DataCache => (self.lsq_count, self.config.lsq_size),
                };
                if count >= cap {
                    self.stats.queue_stall_cycles += 1;
                    return false;
                }
            } else if self.lsq_count >= self.config.lsq_size {
                self.stats.queue_stall_cycles += 1;
                return false;
            }
        }

        let seq = self.next_seq;
        self.next_seq += 1;

        // Resolve sources against the renamer state. Store-data operands
        // are tracked separately from address operands.
        let mut deps: [Option<u64>; 3] = [None; 3];
        let mut data_dep: Option<u64> = None;
        let mut n = 0;
        match entry.inst {
            arl_isa::Inst::Store { rs, base, .. } => {
                if base != arl_isa::Gpr::ZERO {
                    deps[0] = self.reg_producer[base.index()];
                }
                if rs != arl_isa::Gpr::ZERO {
                    data_dep = self.reg_producer[rs.index()];
                }
            }
            arl_isa::Inst::FStore { fs, base, .. } => {
                if base != arl_isa::Gpr::ZERO {
                    deps[0] = self.reg_producer[base.index()];
                }
                data_dep = self.reg_producer[32 + fs.index()];
            }
            _ => {
                let mut gprs = [arl_isa::Gpr::ZERO; 2];
                let ng = entry.inst.gpr_sources_into(&mut gprs);
                for &r in &gprs[..ng] {
                    deps[n] = self.reg_producer[r.index()];
                    n += 1;
                }
                let mut fprs = [arl_isa::Fpr::F0; 2];
                let nf = entry.inst.fpr_sources_into(&mut fprs);
                for &r in &fprs[..nf] {
                    if n < 3 {
                        deps[n] = self.reg_producer[32 + r.index()];
                        n += 1;
                    }
                }
            }
        }

        // Value prediction on the destination register.
        let mut value_predicted = false;
        if let (Some(vp), Some((_, actual))) = (self.vpred.as_mut(), entry.gpr_write) {
            value_predicted = vp.update(entry.pc, actual);
        }

        // Claim the renamer for the destination.
        if let Some((rd, _)) = entry.gpr_write {
            self.reg_producer[rd.index()] = Some(seq);
        }
        if let Some(fd) = entry.inst.fpr_dest() {
            self.reg_producer[32 + fd.index()] = Some(seq);
        }

        let (fu, latency) = classify(&entry.inst);
        let (is_load, addr, is_stack) = match entry.mem {
            Some(m) => (m.is_load, m.addr, m.is_stack()),
            None => (false, 0, false),
        };
        if is_mem {
            match route {
                Route::Lvc => {
                    self.lvaq_count += 1;
                    self.stats.lvaq_refs += 1;
                    if !is_load {
                        self.lvaq_stores.push_back(seq);
                    }
                }
                Route::DataCache => {
                    self.lsq_count += 1;
                    if !is_load {
                        self.lsq_stores.push_back(seq);
                    }
                }
            }
            self.stats.mem_refs += 1;
        }
        self.stats.instructions += 1;

        self.rob.push_back(Slot {
            seq,
            dispatch_cycle: self.cycle,
            deps,
            data_dep,
            fu,
            latency,
            issued: false,
            complete_at: NO_CYCLE,
            value_predicted,
            mem: if is_mem {
                MemPhase::WaitAgen
            } else {
                MemPhase::None
            },
            is_load,
            addr,
            is_stack,
            route,
            mem_ready_at: 0,
            agen_done_at: NO_CYCLE,
            verified: false,
            arpt_predicted,
            recovered: false,
            pc: entry.pc,
            ghr: entry.ghr,
            ra: entry.ra,
        });
        self.waiting_issue.push_back(seq);
        let _ = predicted_stack;
        true
    }

    /// Injects any pending ARPT soft errors whose trigger lookup has been
    /// reached (called just before a counted lookup, so `at_lookup == n`
    /// corrupts the table the `n`-th lookup reads).
    fn apply_arpt_faults(&mut self) {
        let next_lookup = self.arpt.lookups() + 1;
        let mut i = 0;
        while i < self.arpt_faults.len() {
            let fault = self.arpt_faults[i];
            match fault.kind {
                FaultKind::ArptSoftError {
                    slot,
                    mask,
                    at_lookup,
                } if at_lookup <= next_lookup => {
                    self.arpt.inject_soft_error(slot, mask);
                    self.stats.faults_applied.push(fault.id);
                    self.arpt_faults.remove(i);
                }
                _ => i += 1,
            }
        }
    }

    // ---- issue ------------------------------------------------------------

    fn issue_stage(&mut self) -> usize {
        let mut issued = 0;
        let width = self.config.issue_width;
        let mut i = 0;
        while i < self.waiting_issue.len() && issued < width {
            let seq = self.waiting_issue[i];
            let (ready, fu) = {
                let s = self.slot(seq);
                (s.dispatch_cycle < self.cycle && self.deps_ready(s), s.fu)
            };
            let fu_idx = fu as usize;
            let fu_cap = match fu {
                Fu::IntAlu => self.config.int_alus,
                Fu::FpAlu => self.config.fp_alus,
                Fu::IntMulDiv => self.config.int_mul_div,
                Fu::FpMulDiv => self.config.fp_mul_div,
            };
            if ready && self.fu_used[fu_idx] < fu_cap {
                self.fu_used[fu_idx] += 1;
                issued += 1;
                let now = self.cycle;
                let s = self.slot_mut(seq);
                s.issued = true;
                if s.mem == MemPhase::WaitAgen {
                    // Address generation completes next cycle; the memory
                    // stage takes over.
                    s.agen_done_at = now + s.latency;
                    s.complete_at = NO_CYCLE;
                } else {
                    s.complete_at = now + s.latency;
                }
                self.waiting_issue.remove(i);
                continue;
            }
            i += 1;
        }
        issued
    }

    // ---- memory stage -------------------------------------------------------

    fn memory_stage(&mut self) {
        // Drain the write buffer: committed stores write the cache in the
        // background as bandwidth allows.
        while let Some(&(route, addr)) = self.write_buffer.front() {
            if !self.mem.port_available(route, addr) {
                break;
            }
            if self.mem.access(route, addr).is_none() {
                break; // no MSHR for the write miss; retry next cycle
            }
            self.write_buffer.pop_front();
        }
        // Walk the ROB oldest-first; handle verification, redirects, and
        // load access starts. (Stores access the cache at commit.) The
        // action list lives in a persistent scratch buffer: once warmed it
        // never reallocates, and its capacity stays bounded by the window
        // (it holds at most one entry per in-flight slot).
        let mut actions = std::mem::take(&mut self.mem_scratch);
        actions.clear();
        for s in &self.rob {
            let actionable = (s.mem == MemPhase::WaitAgen && s.agen_done_at <= self.cycle)
                || (s.mem == MemPhase::Ready && s.mem_ready_at <= self.cycle);
            if actionable {
                actions.push(s.seq);
            }
        }
        debug_assert!(
            actions.capacity() <= self.config.rob_size.max(1).next_power_of_two(),
            "memory-stage scratch must stay bounded by the in-flight window"
        );
        for &seq in &actions {
            // 1. Verification (TLB stack-bit check) the cycle address
            //    generation finishes.
            let needs_verify = {
                let s = self.slot(seq);
                // (A squash may have reset a later action candidate back to
                // pre-agen state mid-walk; re-check the agen time.)
                s.mem == MemPhase::WaitAgen
                    && !s.verified
                    && s.agen_done_at != NO_CYCLE
                    && s.agen_done_at <= self.cycle
            };
            if needs_verify {
                self.verify_region(seq);
                continue; // access may start next cycle at the earliest
            }
            let (is_load, ready_at, complete, phase) = {
                let s = self.slot(seq);
                (s.is_load, s.mem_ready_at, s.complete_at, s.mem)
            };
            // A squash earlier in this same pass may have reset this
            // action candidate; only Ready slots proceed.
            if phase != MemPhase::Ready || ready_at > self.cycle {
                continue;
            }
            if is_load {
                self.try_start_load(seq);
            } else if complete == NO_CYCLE {
                // Store: becomes commit-eligible once its data arrives.
                let data_ready = match self.slot(seq).data_dep {
                    None => 0,
                    Some(dep) => self.producer_ready_at(dep),
                };
                if data_ready != NO_CYCLE && data_ready <= self.cycle {
                    let now = self.cycle;
                    self.slot_mut(seq).complete_at = now;
                }
            }
        }
        self.mem_scratch = actions;
    }

    /// The TLB region check: reroute and retrain on a wrong prediction.
    fn verify_region(&mut self, seq: u64) {
        let (route, is_stack, is_load, arpt_predicted, pc, ghr, ra) = {
            let s = self.slot(seq);
            (
                s.route,
                s.is_stack,
                s.is_load,
                s.arpt_predicted,
                s.pc,
                s.ghr,
                s.ra,
            )
        };
        let decoupled = self.config.is_decoupled();
        let correct_route = if decoupled && is_stack {
            Route::Lvc
        } else {
            Route::DataCache
        };
        let penalty = self.config.region_mispredict_penalty;
        let now = self.cycle;
        if decoupled && route != correct_route {
            // Misprediction: move the entry to the right queue (space
            // permitting — if the target queue is full we retry by staying
            // in WaitAgen with verified=false? Instead: wait for space).
            let space = match correct_route {
                Route::Lvc => self.lvaq_count < self.config.lvaq_size,
                Route::DataCache => self.lsq_count < self.config.lsq_size,
            };
            if !space {
                // Target queue full; retry verification next cycle.
                return;
            }
            self.stats.region_checks += 1;
            self.stats.region_mispredicts += 1;
            match route {
                Route::Lvc => self.lvaq_count -= 1,
                Route::DataCache => self.lsq_count -= 1,
            }
            match correct_route {
                Route::Lvc => self.lvaq_count += 1,
                Route::DataCache => self.lsq_count += 1,
            }
            if !is_load {
                // Move the store between the ordering queues.
                let (from, to) = match route {
                    Route::Lvc => (&mut self.lvaq_stores, &mut self.lsq_stores),
                    Route::DataCache => (&mut self.lsq_stores, &mut self.lvaq_stores),
                };
                if let Some(pos) = from.iter().position(|&s| s == seq) {
                    from.remove(pos);
                }
                let insert_at = to.iter().position(|&s| s > seq).unwrap_or(to.len());
                to.insert(insert_at, seq);
            }
            let s = self.slot_mut(seq);
            s.route = correct_route;
            s.verified = true;
            s.mem = MemPhase::Ready;
            // Detected and re-dispatched on the correct path; commit
            // counts the completed recovery.
            s.recovered = true;
            // Detection this cycle; re-issue `penalty` cycles later.
            s.mem_ready_at = now + 1 + penalty;
            if self.config.recovery == RecoveryMode::Squash {
                self.squash_younger(seq, now + 1 + penalty);
            }
        } else {
            if decoupled {
                self.stats.region_checks += 1;
            }
            let s = self.slot_mut(seq);
            s.verified = true;
            s.mem = MemPhase::Ready;
            s.mem_ready_at = now;
        }
        // Train the ARPT on dynamic (unrevealed) instructions only; the
        // statically revealed ones are never recorded in it.
        if decoupled && arpt_predicted {
            self.arpt.update(pc, ghr, ra, is_stack);
        }
    }

    /// Attempts to begin a load's cache access (ordering + forwarding +
    /// ports).
    fn try_start_load(&mut self, seq: u64) {
        let (route, addr, _now) = {
            let s = self.slot(seq);
            (s.route, s.addr, self.cycle)
        };
        let block = addr & !7;
        // Ordering against older stores in the same queue.
        let stores = match route {
            Route::Lvc => &self.lvaq_stores,
            Route::DataCache => &self.lsq_stores,
        };
        let mut forward_ready: Option<u64> = None;
        for &st_seq in stores.iter() {
            if st_seq >= seq {
                break;
            }
            let st = self.slot(st_seq);
            let addr_known = st.agen_done_at != NO_CYCLE && st.agen_done_at <= self.cycle;
            let data_ready = st.complete_at != NO_CYCLE && st.complete_at <= self.cycle;
            match route {
                Route::DataCache => {
                    // Conservative LSQ: every older store's address must be
                    // known before a load may proceed.
                    if !addr_known {
                        return;
                    }
                    if st.addr & !7 == block {
                        if !data_ready {
                            return; // matching store's data not produced yet
                        }
                        forward_ready = Some(st.complete_at);
                    }
                }
                Route::Lvc => {
                    // Fast forwarding: frame offsets identify the match
                    // before address generation; unknown stores do not
                    // block unless they match.
                    if st.addr & !7 == block {
                        if !data_ready {
                            return; // matching store's data not ready yet
                        }
                        forward_ready = Some(st.complete_at);
                    }
                }
            }
        }
        if let Some(_ready) = forward_ready {
            // Store-to-load forwarding: 1 cycle, no cache port.
            match route {
                Route::Lvc => self.stats.lvaq_forwards += 1,
                Route::DataCache => self.stats.lsq_forwards += 1,
            }
            let now = self.cycle;
            let s = self.slot_mut(seq);
            s.mem = MemPhase::Accessed;
            s.complete_at = now + 1;
            return;
        }
        if !self.mem.port_available(route, addr) {
            return; // bandwidth contention — retry next cycle
        }
        let Some(latency) = self.mem.access(route, addr) else {
            return; // miss with no free MSHR — retry next cycle
        };
        let now = self.cycle;
        let s = self.slot_mut(seq);
        s.mem = MemPhase::Accessed;
        s.complete_at = now + latency;
    }

    /// Branch-style recovery: every instruction younger than `seq` loses
    /// its issue and replays no earlier than `reissue_at` (its memory
    /// access, if any, restarts from address generation).
    fn squash_younger(&mut self, seq: u64, reissue_at: u64) {
        let mut requeue: Vec<u64> = Vec::new();
        for s in self.rob.iter_mut().filter(|s| s.seq > seq) {
            // Model the replay by pushing the apparent dispatch time out:
            // issue requires dispatch_cycle < cycle.
            s.dispatch_cycle = s.dispatch_cycle.max(reissue_at);
            if s.issued {
                s.issued = false;
                requeue.push(s.seq);
            }
            s.complete_at = NO_CYCLE;
            if s.mem != MemPhase::None {
                s.mem = MemPhase::WaitAgen;
                s.agen_done_at = NO_CYCLE;
                s.verified = false;
                s.mem_ready_at = 0;
            }
        }
        if !requeue.is_empty() {
            self.waiting_issue.extend(requeue);
            self.waiting_issue.make_contiguous().sort_unstable();
        }
    }

    // ---- commit -------------------------------------------------------------

    fn commit_stage(&mut self) -> usize {
        let mut committed = 0;
        while committed < self.config.issue_width {
            let Some(head) = self.rob.front() else { break };
            let is_mem = head.mem != MemPhase::None;
            let is_load = head.is_load;
            let route = head.route;
            let addr = head.addr;
            let seq = head.seq;
            let recovered = head.recovered;
            let done = match head.mem {
                MemPhase::None | MemPhase::Accessed => {
                    head.complete_at != NO_CYCLE && head.complete_at <= self.cycle
                }
                MemPhase::Ready if !is_load => {
                    head.complete_at != NO_CYCLE && head.complete_at <= self.cycle
                }
                _ => false,
            };
            if !done {
                break;
            }
            if is_mem && !is_load {
                // Stores write the cache at commit: into the write buffer
                // when one is configured and has space, else directly
                // through a port (stalling commit if none is free).
                if self.write_buffer.len() < self.config.write_buffer {
                    self.write_buffer.push_back((route, addr));
                } else {
                    if !self.mem.port_available(route, addr) {
                        break;
                    }
                    if self.mem.access(route, addr).is_none() {
                        break; // write miss with no MSHR
                    }
                }
            }
            // Release queue entries and renamer claims.
            if is_mem {
                match route {
                    Route::Lvc => {
                        self.lvaq_count -= 1;
                        if !is_load && self.lvaq_stores.front() == Some(&seq) {
                            self.lvaq_stores.pop_front();
                        }
                    }
                    Route::DataCache => {
                        self.lsq_count -= 1;
                        if !is_load && self.lsq_stores.front() == Some(&seq) {
                            self.lsq_stores.pop_front();
                        }
                    }
                }
            }
            for r in self.reg_producer.iter_mut() {
                if *r == Some(seq) {
                    *r = None;
                }
            }
            if recovered {
                self.stats.recoveries += 1;
            }
            self.rob.pop_front();
            self.head_seq += 1;
            committed += 1;
        }
        committed
    }

    // ---- stall attribution (probe support) ----------------------------------

    /// Attributes a commit-blocked cycle to exactly one [`StallCause`] by
    /// inspecting the ROB head — the unique instruction every later commit
    /// waits on. Called after [`Self::memory_stage`] (so bandwidth denials
    /// reflect this cycle's claims) and before [`Self::issue_stage`];
    /// purely observational.
    fn stall_cause(&self) -> StallCause {
        let Some(head) = self.rob.front() else {
            // Nothing in flight at all: the source ran dry (end of program
            // drain, or the first cycle before anything dispatched).
            return StallCause::FetchDry;
        };
        match head.mem {
            MemPhase::None | MemPhase::WaitAgen => {
                if head.issued {
                    // Result (or address generation) still in the FU
                    // pipeline.
                    StallCause::ExecLatency
                } else if self.rob.len() >= self.config.rob_size {
                    StallCause::RobFull
                } else {
                    // The head's deps are committed by construction, so an
                    // unissued head lost FU arbitration (or just
                    // dispatched).
                    StallCause::FuFull
                }
            }
            MemPhase::Accessed => StallCause::MemLatency,
            MemPhase::Ready => {
                if head.mem_ready_at > self.cycle {
                    // Serving the region-misprediction redirect penalty.
                    StallCause::ArptRedirect
                } else if head.is_load {
                    self.load_block_cause(head)
                } else if head.complete_at != NO_CYCLE && head.complete_at <= self.cycle {
                    // Store is done but commit_stage broke on it: the write
                    // buffer is full and the cache denied the write (port
                    // or MSHR).
                    StallCause::MemPort
                } else {
                    // Store waiting for its data operand.
                    StallCause::StoreOrdering
                }
            }
        }
    }

    /// Why a Ready head load has not started its access: mirrors the
    /// checks of [`Self::try_start_load`] read-only, in the same order.
    fn load_block_cause(&self, head: &Slot) -> StallCause {
        let block = head.addr & !7;
        let stores = match head.route {
            Route::Lvc => &self.lvaq_stores,
            Route::DataCache => &self.lsq_stores,
        };
        let mut forwards = false;
        for &st_seq in stores.iter() {
            if st_seq >= head.seq {
                break;
            }
            let st = self.slot(st_seq);
            let addr_known = st.agen_done_at != NO_CYCLE && st.agen_done_at <= self.cycle;
            let data_ready = st.complete_at != NO_CYCLE && st.complete_at <= self.cycle;
            if head.route == Route::DataCache && !addr_known {
                return StallCause::StoreOrdering;
            }
            if st.addr & !7 == block {
                if !data_ready {
                    return StallCause::StoreOrdering;
                }
                forwards = true;
            }
        }
        if forwards {
            // Forwarding needs no port; the load completes next cycle.
            return StallCause::MemLatency;
        }
        if !self.mem.port_available(head.route, head.addr)
            || self.mem.mshr_would_block(head.route, head.addr)
        {
            return StallCause::MemPort;
        }
        // The access starts this cycle; what remains is pure latency.
        StallCause::MemLatency
    }
}
