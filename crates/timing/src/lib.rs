//! # arl-timing — cycle-level data-decoupled superscalar model
//!
//! The timing simulator behind the paper's Section 4: a 16-wide
//! out-of-order processor (Table 4) whose memory system can be either
//! *conventional* (one Load Store Queue feeding an N-ported data cache) or
//! *data-decoupled* (LSQ + Local Variable Access Queue feeding a data cache
//! and a small 1-cycle Local Variable Cache, steered by the ARPT).
//!
//! ## Fidelity and substitutions
//!
//! The paper's machine uses a **perfect I-cache and perfect branch
//! prediction** precisely so that the data-memory system is the bottleneck
//! under study. With a perfect front end there is no wrong-path work, so
//! this model is driven by the functional trace (`arl-sim`) — equivalent
//! to execution-driven simulation under the paper's front-end assumptions,
//! not an approximation of them. The two speculative mechanisms that *do*
//! remain are modeled explicitly:
//!
//! * **ARPT region mispredictions** are detected when the address is
//!   generated (the TLB stack-bit check) and recovered by re-routing the
//!   access to the correct queue, with dependent re-issue one cycle after
//!   detection (Section 4.3).
//! * **Stride value prediction** (16K entries) lets consumers of a
//!   correctly predicted register value issue without waiting for the
//!   producer.
//!
//! ```
//! use arl_asm::{FunctionBuilder, ProgramBuilder};
//! use arl_isa::Gpr;
//! use arl_timing::{MachineConfig, TimingSim};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main");
//! let x = f.local(8);
//! f.li(Gpr::T0, 7);
//! f.store_local(Gpr::T0, x, 0);
//! f.load_local(Gpr::T1, x, 0);
//! pb.add_function(f);
//! let program = pb.link("main")?;
//!
//! let base = TimingSim::run_program(&program, &MachineConfig::baseline_2_0());
//! let split = TimingSim::run_program(&program, &MachineConfig::decoupled(3, 3));
//! assert!(base.instructions == split.instructions);
//! # Ok::<(), arl_asm::LinkError>(())
//! ```

mod cache;
mod config;
mod fault;
mod legacy;
mod metrics;
mod pipeline;
mod probe;
mod state;
mod valuepred;
mod wheel;

pub use cache::{Cache, CacheStats, MemSystem, Route};
pub use config::{BackendConfig, CacheConfig, CoreMode, MachineConfig, PortModel, RecoveryMode};
pub use fault::{FaultKind, TimingFault};
pub use metrics::SimStats;
pub use pipeline::{SegmentRun, TimingSim};
pub use probe::{CycleObs, NullProbe, Probe, Recorder, StallCause};
pub use valuepred::StridePredictor;
pub use wheel::EventWheel;
